//! Convenient re-exports of the types most programs need.
//!
//! ```
//! use mlscore::prelude::*;
//! ```

pub use mlscore_backend::{ScoringBackend, ScoringRequest};
pub use mlscore_data::{
    Dataset, DatasetSpec, FrameScanner, NormParams, NormalizeStream, RecordStream, TabularFrame,
    DEFAULT_CHUNK_ROWS,
};
pub use mlscore_exec::{ExecPool, RunConfig, RunReport};
pub use mlscore_forest::{ForestConfig, ModelStats, RandomForest, Task, TrainedModel};
pub use mlscore_serve::{
    ArrivalProcess, ModelCatalog, ServeConfig, ServeEngine, ServingReport, WorkloadSpec,
};
pub use mlscore_sim::{SimDuration, SimInstant, Stage, TimingBreakdown};
pub use mlscore_telemetry::{MetricsRegistry, Scope, Trace, Tracer};
