//! # mlscore
//!
//! Facade crate for the `mlscore` workspace — an end-to-end characterization
//! library for DBMS machine learning scoring pipelines with CPU, GPU, and
//! FPGA backends, reproducing *"Hardware Acceleration for DBMS Machine
//! Learning Scoring: Is It Worth the Overheads?"* (ISPASS 2021).
//!
//! See [`prelude`] for the most common imports, and the member crates for the
//! full API:
//!
//! * [`mlscore_forest`] — random forest models, training, flat node layout.
//! * [`mlscore_data`] — tabular frames and synthetic IRIS/HIGGS generators.
//! * [`mlscore_backend`] — the [`ScoringBackend`](mlscore_backend::ScoringBackend)
//!   trait and CPU backends.
//! * [`mlscore_exec`] — persistent work-stealing batch executor and blocked
//!   scoring kernels.
//! * [`mlscore_gpu`] / [`mlscore_fpga`] — accelerator models.
//! * [`mlscore_offload`] — PCIe and offload-overhead models.
//! * [`mlscore_pipeline`] — the end-to-end T-SQL query pipeline.
//! * [`mlscore_sched`] — backend-selection policies.
//! * [`mlscore_serve`] — discrete-event serving engine: arrival processes,
//!   admission control, micro-batch coalescing, device contention.
//! * [`mlscore_telemetry`] — span tracing, metrics, Perfetto trace export.
//! * [`mlscore_core`] — experiment harness and paper figure generators.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mlscore_backend as backend;
pub use mlscore_core as core;
pub use mlscore_data as data;
pub use mlscore_exec as exec;
pub use mlscore_forest as forest;
pub use mlscore_fpga as fpga;
pub use mlscore_gpu as gpu;
pub use mlscore_offload as offload;
pub use mlscore_pipeline as pipeline;
pub use mlscore_sched as sched;
pub use mlscore_serve as serve;
pub use mlscore_sim as sim;
pub use mlscore_telemetry as telemetry;

pub mod prelude;
