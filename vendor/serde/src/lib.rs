//! Minimal offline stand-in for the `serde` crate.
//!
//! The workspace derives `Serialize`/`Deserialize` on its model types for
//! downstream consumers, but never serializes through serde itself (exports
//! are hand-rolled CSV/JSON). This stub keeps those derives compiling in an
//! environment with no crates.io access: the derive macros expand to
//! nothing, and the marker traits exist so explicit bounds would still
//! resolve.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}
