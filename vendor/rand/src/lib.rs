//! Minimal offline stand-in for the `rand` crate (0.8 API surface).
//!
//! Implements exactly what this workspace uses: a seedable deterministic
//! [`rngs::StdRng`] (xoshiro256++ seeded via splitmix64), the [`Rng`]
//! extension methods `gen`, `gen_range`, and `gen_bool`, and
//! [`seq::SliceRandom`] shuffling. Stream values differ from upstream rand —
//! everything downstream treats the generator as an arbitrary deterministic
//! source, so only determinism and uniformity matter.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A uniform f64 in `[0, 1)` from 53 random bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Values samplable uniformly over their whole domain (the `gen()` family).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (self.end - self.start) * unit_f64(rng) as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value over the type's whole domain (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for rand's `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice shuffling and selection.
pub mod seq {
    use super::RngCore;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_distinct_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(5u8..=9);
            assert!((5..=9).contains(&i));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
        assert!([1, 2, 3].choose(&mut rng).is_some());
        assert!(Vec::<u8>::new().choose(&mut rng).is_none());
    }
}
