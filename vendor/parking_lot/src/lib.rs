//! Minimal offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives with parking_lot's poison-free API: `lock()`
//! returns the guard directly, and a poisoned lock (a panic while held) is
//! transparently recovered rather than surfaced as an error.

use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose acquisitions never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;

/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}
