//! Minimal offline stand-in for the `criterion` crate.
//!
//! Provides the harness surface the workspace's `benches/` use —
//! `criterion_group!` / `criterion_main!`, [`Criterion`], benchmark groups
//! with throughput annotations, and [`Bencher::iter`] — backed by a simple
//! fixed-sample wall-clock timer instead of criterion's statistical engine.
//! Each benchmark prints its mean iteration time (and derived throughput
//! when annotated) to stdout.

use std::time::{Duration, Instant};

/// Re-exported so `b.iter(|| black_box(...))` call sites keep working.
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: Option<usize>,
}

impl Criterion {
    /// Accepts (and ignores) CLI arguments; present for API parity.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Overrides the default per-benchmark sample count.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_benchmark(id, self.sample_size.unwrap_or(20), None, |b| f(b));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 20,
            throughput: None,
        }
    }

    /// Prints the closing summary; no-op beyond a trailing newline.
    pub fn final_summary(&mut self) {
        println!();
    }
}

/// Units for derived-throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Identifier combining a function name and a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id of the form `name/parameter`.
    pub fn new<P: std::fmt::Display>(name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A set of benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Annotates subsequent benchmarks with work-per-iteration.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, self.sample_size, self.throughput, |b| f(b));
        self
    }

    /// Runs a parameterized benchmark within this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        run_benchmark(&full, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine` over the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.total += start.elapsed();
            self.iters += 1;
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    id: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // One untimed warm-up pass, then the timed samples.
    let mut warmup = Bencher {
        samples: 1,
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut warmup);

    let mut b = Bencher {
        samples,
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);

    if b.iters == 0 {
        println!("{id:<40} (no iterations)");
        return;
    }
    let mean = b.total.as_secs_f64() / b.iters as f64;
    match throughput {
        Some(Throughput::Elements(n)) if mean > 0.0 => {
            println!(
                "{id:<40} {:>12.3} us/iter {:>14.0} elem/s",
                mean * 1e6,
                n as f64 / mean
            );
        }
        Some(Throughput::Bytes(n)) if mean > 0.0 => {
            println!(
                "{id:<40} {:>12.3} us/iter {:>14.0} B/s",
                mean * 1e6,
                n as f64 / mean
            );
        }
        _ => println!("{id:<40} {:>12.3} us/iter", mean * 1e6),
    }
}

/// Declares a benchmark group function that runs each target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Declares a `main` that runs the given groups and prints the summary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::Criterion::default().configure_from_args().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("demo");
        g.sample_size(3);
        g.throughput(Throughput::Elements(100));
        g.bench_function("sum", |b| b.iter(|| (0u64..100).sum::<u64>()));
        g.bench_with_input(BenchmarkId::from_parameter(7u32), &7u32, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
    }

    criterion_group!(benches, sum_bench);

    #[test]
    fn harness_runs() {
        benches();
        Criterion::default().configure_from_args().final_summary();
    }
}
