//! Minimal offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`] (a cheaply-cloneable, advanceable view over shared
//! immutable bytes), [`BytesMut`] (a growable buffer), and the subset of the
//! [`Buf`]/[`BufMut`] trait methods the forest serializer uses.

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable view over shared immutable bytes.
///
/// Cloning shares the underlying allocation; [`Buf`] reads advance the
/// view's start without copying.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty `Bytes`.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Wraps a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

/// Read-side cursor operations (the `bytes::Buf` subset in use).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Returns `true` if any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Advances the cursor by `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `cnt` exceeds [`Buf::remaining`].
    fn advance(&mut self, cnt: usize);

    /// Splits off and returns the next `len` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds [`Buf::remaining`].
    fn copy_to_bytes(&mut self, len: usize) -> Bytes;

    /// Reads one byte.
    fn get_u8(&mut self) -> u8;

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16;

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32;
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.end - self.start
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "advance past end of Bytes");
        self.start += cnt;
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(len <= self.remaining(), "copy_to_bytes past end of Bytes");
        let out = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + len,
        };
        self.start += len;
        out
    }

    fn get_u8(&mut self) -> u8 {
        let b = self[0];
        self.start += 1;
        b
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        raw.copy_from_slice(&self[..2]);
        self.start += 2;
        u16::from_le_bytes(raw)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self[..4]);
        self.start += 4;
        u32::from_le_bytes(raw)
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }
}

/// A growable byte buffer (the `bytes::BytesMut` subset in use).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if no bytes have been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Write-side operations (the `bytes::BufMut` subset in use).
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8);

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32);
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_slice(b"HDR");
        buf.put_u8(7);
        buf.put_u16_le(0xBEEF);
        buf.put_u32_le(0xDEAD_CAFE);
        buf.put_f32_le(1.5);
        let mut b = buf.freeze();
        assert_eq!(b.remaining(), 3 + 1 + 2 + 4 + 4);
        assert_eq!(&b.copy_to_bytes(3)[..], b"HDR");
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16_le(), 0xBEEF);
        assert_eq!(b.get_u32_le(), 0xDEAD_CAFE);
        assert_eq!(b.get_f32_le(), 1.5);
        assert!(!b.has_remaining());
    }

    #[test]
    fn clones_share_and_compare_by_content() {
        let a = Bytes::from(vec![1, 2, 3, 4]);
        let mut b = a.clone();
        b.advance(1);
        assert_eq!(&a[..], &[1, 2, 3, 4]);
        assert_eq!(&b[..], &[2, 3, 4]);
        assert_eq!(a, Bytes::from(vec![1, 2, 3, 4]));
        assert_ne!(a, b);
        assert_eq!(Bytes::from_static(b"xy").len(), 2);
    }
}
