//! Minimal offline stand-in for the `crossbeam` crate.
//!
//! Only [`thread::scope`] is provided, implemented on top of
//! `std::thread::scope` (stable since Rust 1.63, which made crossbeam's
//! scoped threads largely redundant). One behavioral difference: a panicking
//! child thread panics the scope call itself rather than surfacing as
//! `Err`, so the `Ok` arm is the only one that returns.

/// Scoped threads.
pub mod thread {
    /// The value passed to every spawned closure (crossbeam passes the scope
    /// itself; the workspace's closures ignore it, so a marker suffices).
    pub struct SpawnArg;

    static SPAWN_ARG: SpawnArg = SpawnArg;

    /// Wrapper over `std::thread::Scope` mirroring crossbeam's spawn shape.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives a [`SpawnArg`]
        /// placeholder in the position crossbeam passes the scope.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&SpawnArg) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            self.inner.spawn(move || f(&SPAWN_ARG))
        }
    }

    /// Runs `f` with a scope that joins all spawned threads before
    /// returning, mirroring `crossbeam::thread::scope`.
    ///
    /// # Errors
    ///
    /// Never returns `Err` — a panicking child re-raises the panic from the
    /// scope itself (std semantics) instead of returning it as a value.
    #[allow(clippy::type_complexity)]
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_fill_disjoint_chunks() {
        let mut out = vec![0usize; 10];
        super::thread::scope(|scope| {
            for (c, chunk) in out.chunks_mut(3).enumerate() {
                scope.spawn(move |_| {
                    for (i, slot) in chunk.iter_mut().enumerate() {
                        *slot = c * 3 + i;
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(out, (0..10).collect::<Vec<_>>());
    }
}
