//! Minimal offline stand-in for the `proptest` crate.
//!
//! Implements the strategy combinators and macros this workspace's property
//! tests use: range and `any` strategies, `Just`, tuples, `prop_map` /
//! `prop_flat_map`, `collection::vec`, `prop_oneof!`, and the `proptest!`
//! test macro with `ProptestConfig::with_cases`. Sampling is deterministic
//! (seeded per test run) and there is **no shrinking** — a failing case
//! reports the assertion as-is.

use rand::rngs::StdRng;
use rand::Rng;

/// Marker returned (via `Err`) by [`prop_assume!`] to skip a generated case.
#[derive(Debug, Clone, Copy)]
pub struct CaseRejected;

/// The RNG handed to strategies during generation.
pub type TestRng = StdRng;

/// Run configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` iterations.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing `f`.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe strategy used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (built by `prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Wraps the alternatives; panics if empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union(options)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.0.len());
        self.0[i].generate(rng)
    }
}

/// Types with a canonical whole-domain strategy (the `any::<T>()` family).
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<u64>() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<f32>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<f64>()
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Sizes accepted by [`vec`]: a fixed length or a (half-open or
    /// inclusive) range of lengths.
    pub trait SizeRange {
        /// Picks a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// Generates vectors of `element` values with lengths in `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+)
    };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+)
    };
}

/// Skips the current generated case when the assumption does not hold.
///
/// Expands to an early `Err(CaseRejected)` return from the case closure
/// that `proptest!` wraps each body in; the runner moves on to the next
/// generated case without counting a failure.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::CaseRejected);
        }
    };
}

/// Uniform choice between strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(#[$attr:meta])* fn $name:ident($($pat:pat_param in $strategy:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            // Seed from the test name so distinct tests explore distinct
            // streams, deterministically across runs.
            let seed = stringify!($name)
                .bytes()
                .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                    (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
                });
            for case in 0..config.cases {
                let mut rng = <$crate::TestRng as ::rand::SeedableRng>::seed_from_u64(
                    seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                let ($($pat,)+) = (
                    $($crate::Strategy::generate(&$strategy, &mut rng),)+
                );
                // The closure lets `prop_assume!` reject this case via an
                // early `Err` return without aborting the whole test.
                let _rejected: ::std::result::Result<(), $crate::CaseRejected> = (move || {
                    $body
                    ::std::result::Result::Ok(())
                })();
            }
        }
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    (($cfg:expr);) => {};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Tag {
        A,
        B,
    }

    fn arb_tag() -> impl Strategy<Value = Tag> {
        prop_oneof![Just(Tag::A), Just(Tag::B)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_any(x in 1usize..10, y in any::<u64>(), f in 0.0f64..1.0) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&f));
            prop_assert_eq!(y, y);
        }

        #[test]
        fn combinators_compose(
            v in crate::collection::vec(0u32..5, 3..=6),
            t in arb_tag(),
            (a, b) in (0u8..4, 10u8..20),
            s in (1usize..4).prop_flat_map(|n| crate::collection::vec(0u32..10, n)),
            m in (0u32..3).prop_map(|x| x * 2),
        ) {
            prop_assert!((3..=6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
            prop_assert!(t == Tag::A || t == Tag::B);
            prop_assert!(a < 4 && (10..20).contains(&b));
            prop_assert!(!s.is_empty() && s.len() < 4);
            prop_assert_ne!(m, 7);
        }
    }

    #[test]
    fn runs_the_macro_generated_tests() {
        ranges_and_any();
        combinators_compose();
    }
}
