//! No-op derive macros backing the vendored `serde` stub.
//!
//! `#[derive(Serialize, Deserialize)]` is accepted on any item and expands
//! to nothing — the workspace never serializes through serde, it only keeps
//! the annotations for source compatibility.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and emits no code.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and emits no code.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
