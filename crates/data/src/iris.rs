//! Synthetic IRIS-like data.
//!
//! The original IRIS dataset has 150 samples over 4 features (sepal
//! length/width, petal length/width in cm) and 3 balanced classes; the paper
//! replicated it to 1M records. We generate Gaussian clusters around the
//! published per-class means and standard deviations, producing a dataset
//! with the same feature width, class count, and broadly the same class
//! separability — everything the characterization depends on.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::dataset::Dataset;
use crate::frame::TabularFrame;
use crate::gauss::Gauss;

/// Per-class feature means for (setosa, versicolor, virginica), from the
/// published UCI IRIS summary statistics.
const MEANS: [[f32; 4]; 3] = [
    [5.006, 3.428, 1.462, 0.246],
    [5.936, 2.770, 4.260, 1.326],
    [6.588, 2.974, 5.552, 2.026],
];

/// Per-class feature standard deviations, same source.
const STDS: [[f32; 4]; 3] = [
    [0.352, 0.379, 0.174, 0.105],
    [0.516, 0.314, 0.470, 0.198],
    [0.636, 0.322, 0.552, 0.275],
];

/// Generates `n_records` IRIS-like rows, classes cycling 0,1,2 (balanced
/// like the original).
pub fn generate(n_records: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4952_4953); // "IRIS"
    let mut gauss = Gauss::new();
    let mut data = Vec::with_capacity(n_records * 4);
    let mut labels = Vec::with_capacity(n_records);
    for i in 0..n_records {
        let class = i % 3;
        for j in 0..4 {
            let v = MEANS[class][j] + STDS[class][j] * gauss.sample(&mut rng);
            data.push(v.max(0.0)); // measurements are non-negative
        }
        labels.push(class as u32);
    }
    let frame = TabularFrame::from_rows(data, 4).expect("generated shape is consistent");
    Dataset::new("IRIS", frame, labels, 3).expect("labels match rows")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_balance() {
        let d = generate(300, 5);
        assert_eq!(d.frame().n_rows(), 300);
        assert_eq!(d.frame().n_features(), 4);
        let counts = d.labels().iter().fold([0usize; 3], |mut acc, &c| {
            acc[c as usize] += 1;
            acc
        });
        assert_eq!(counts, [100, 100, 100]);
    }

    #[test]
    fn class_means_are_roughly_published() {
        let d = generate(3000, 11);
        // Mean petal length (feature 2) of class 0 should be near 1.462.
        let mut sum = 0.0f64;
        let mut count = 0usize;
        for (row, &label) in d.frame().rows().zip(d.labels()) {
            if label == 0 {
                sum += row[2] as f64;
                count += 1;
            }
        }
        let mean = sum / count as f64;
        assert!((mean - 1.462).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(generate(64, 2), generate(64, 2));
        assert_ne!(generate(64, 2), generate(64, 3));
    }

    #[test]
    fn classes_are_separable_by_petal_length() {
        let d = generate(600, 9);
        // Setosa petal length is far below virginica's; a simple threshold
        // should separate them nearly perfectly, as in the real data.
        let mut misclassified = 0;
        for (row, &label) in d.frame().rows().zip(d.labels()) {
            let predicted = if row[2] < 2.5 {
                0
            } else if row[2] < 4.9 {
                1
            } else {
                2
            };
            if predicted != label {
                misclassified += 1;
            }
        }
        assert!(
            (misclassified as f64) < 0.15 * 600.0,
            "{misclassified} misclassified"
        );
    }
}
