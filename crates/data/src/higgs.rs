//! Synthetic HIGGS-like data.
//!
//! The real HIGGS dataset (Baldi et al., 2014) has 11M rows of 28 features:
//! 21 low-level kinematic measurements (lepton/jet momenta, angles, b-tags)
//! and 7 derived high-level invariant masses, labeled signal vs. background.
//! We generate the same shape: 21 base features with heavy-ish tails (momenta
//! are exponential-like, angles uniform) plus 7 features derived nonlinearly
//! from the base ones, and a binary label from a noisy nonlinear rule over
//! the derived features — giving models real structure to learn.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dataset::Dataset;
use crate::frame::TabularFrame;
use crate::gauss::Gauss;

/// Number of low-level kinematic features.
pub const N_LOW_LEVEL: usize = 21;

/// Number of derived high-level features.
pub const N_HIGH_LEVEL: usize = 7;

/// Total feature count (matches the real HIGGS).
pub const N_FEATURES: usize = N_LOW_LEVEL + N_HIGH_LEVEL;

/// Generates `n_records` HIGGS-like rows with a binary label.
pub fn generate(n_records: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4849_4747); // "HIGG"
    let mut gauss = Gauss::new();
    let mut data = Vec::with_capacity(n_records * N_FEATURES);
    let mut labels = Vec::with_capacity(n_records);
    for _ in 0..n_records {
        let mut row = [0f32; N_FEATURES];
        // Low-level: momenta (exponential-like), pseudorapidities (gaussian),
        // azimuthal angles (uniform), b-tag flags (bimodal).
        for (j, slot) in row.iter_mut().enumerate().take(N_LOW_LEVEL) {
            *slot = match j % 4 {
                0 => -rng.gen::<f32>().max(1e-6).ln(), // momentum magnitude
                1 => gauss.sample(&mut rng) * 1.2,     // eta
                2 => rng.gen_range(-std::f32::consts::PI..std::f32::consts::PI), // phi
                _ => {
                    if rng.gen_bool(0.3) {
                        2.17
                    } else {
                        rng.gen_range(0.0..1.1)
                    }
                } // b-tag-like
            };
        }
        // High-level: nonlinear combinations mimicking invariant masses.
        for k in 0..N_HIGH_LEVEL {
            let a = row[(3 * k) % N_LOW_LEVEL];
            let b = row[(3 * k + 5) % N_LOW_LEVEL];
            let c = row[(3 * k + 11) % N_LOW_LEVEL];
            row[N_LOW_LEVEL + k] =
                (a * a + b * b).sqrt() + 0.25 * (c * a).tanh() + 0.05 * gauss.sample(&mut rng);
        }
        // Label: noisy rule over two derived masses — signal when the
        // combined "mass" exceeds a threshold.
        let score = row[N_LOW_LEVEL] + 0.8 * row[N_LOW_LEVEL + 3] - 0.3 * row[1].abs()
            + 0.4 * gauss.sample(&mut rng);
        let label = u32::from(score > 1.9);
        data.extend_from_slice(&row);
        labels.push(label);
    }
    let frame = TabularFrame::from_rows(data, N_FEATURES).expect("generated shape is consistent");
    Dataset::new("HIGGS", frame, labels, 2).expect("labels match rows")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_real_higgs() {
        let d = generate(200, 1);
        assert_eq!(d.frame().n_features(), 28);
        assert_eq!(d.frame().n_rows(), 200);
        assert_eq!(d.n_classes(), 2);
    }

    #[test]
    fn labels_are_binary_and_mixed() {
        let d = generate(2000, 2);
        let ones = d.labels().iter().filter(|&&c| c == 1).count();
        assert!(d.labels().iter().all(|&c| c < 2));
        // Both classes occur with non-trivial frequency.
        assert!(ones > 200, "only {ones} positive labels");
        assert!(ones < 1800, "{ones} positive labels");
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(generate(128, 7), generate(128, 7));
        assert_ne!(generate(128, 7), generate(128, 8));
    }

    #[test]
    fn high_level_features_correlate_with_label() {
        // The labeling rule uses derived feature 21 positively; its mean must
        // differ between classes (i.e. the data is learnable).
        let d = generate(4000, 3);
        let (mut sum1, mut n1, mut sum0, mut n0) = (0f64, 0usize, 0f64, 0usize);
        for (row, &label) in d.frame().rows().zip(d.labels()) {
            if label == 1 {
                sum1 += row[N_LOW_LEVEL] as f64;
                n1 += 1;
            } else {
                sum0 += row[N_LOW_LEVEL] as f64;
                n0 += 1;
            }
        }
        assert!(sum1 / n1 as f64 > sum0 / n0 as f64 + 0.3);
    }

    #[test]
    fn momenta_are_non_negative() {
        let d = generate(500, 4);
        for row in d.frame().rows() {
            assert!(row[0] >= 0.0);
            assert!(row[4] >= 0.0);
        }
    }
}
