//! Column-major frames.
//!
//! DBMS analytics engines and GPU dataframes (cuDF) are columnar, while the
//! scoring path hands backends row-major batches. The paper's GPU-RAPIDS
//! path pays a real conversion ("a separate data pre-processing step to
//! convert the Numpy array to a cuDF data frame") — this module implements
//! that conversion functionally, so the RAPIDS backend's pre-processing
//! stage corresponds to actual executed work in tests.

use serde::{Deserialize, Serialize};

use crate::error::DataError;
use crate::frame::TabularFrame;

/// A dense column-major matrix of `f32` features.
///
/// # Example
///
/// ```
/// use mlscore_data::{ColumnarFrame, TabularFrame};
///
/// let rows = TabularFrame::from_rows(vec![1.0, 2.0, 3.0, 4.0], 2)?;
/// let cols = ColumnarFrame::from_rows(&rows);
/// assert_eq!(cols.column(0), &[1.0, 3.0]);
/// assert_eq!(cols.column(1), &[2.0, 4.0]);
/// assert_eq!(cols.to_rows(), rows);
/// # Ok::<(), mlscore_data::DataError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnarFrame {
    columns: Vec<Vec<f32>>,
    n_rows: usize,
}

impl ColumnarFrame {
    /// Transposes a row-major frame into columns (the cuDF conversion).
    pub fn from_rows(frame: &TabularFrame) -> Self {
        let f = frame.n_features();
        let n = frame.n_rows();
        let mut columns = vec![Vec::with_capacity(n); f];
        for row in frame.rows() {
            for (j, &v) in row.iter().enumerate() {
                columns[j].push(v);
            }
        }
        Self { columns, n_rows: n }
    }

    /// Builds directly from column vectors.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::ZeroFeatures`] for an empty column set and
    /// [`DataError::ShapeMismatch`] when columns have unequal lengths.
    pub fn from_columns(columns: Vec<Vec<f32>>) -> Result<Self, DataError> {
        let Some(first) = columns.first() else {
            return Err(DataError::ZeroFeatures);
        };
        let n_rows = first.len();
        if let Some(bad) = columns.iter().find(|c| c.len() != n_rows) {
            return Err(DataError::ShapeMismatch {
                len: bad.len(),
                n_features: columns.len(),
            });
        }
        Ok(Self { columns, n_rows })
    }

    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.columns.len()
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// One column's values.
    ///
    /// # Panics
    ///
    /// Panics if `j >= n_features()`.
    pub fn column(&self, j: usize) -> &[f32] {
        &self.columns[j]
    }

    /// Gathers row `i` into a caller-provided buffer (how a columnar kernel
    /// reads one sample).
    ///
    /// # Panics
    ///
    /// Panics if `i >= n_rows()` or `out.len() != n_features()`.
    pub fn gather_row(&self, i: usize, out: &mut [f32]) {
        assert_eq!(out.len(), self.columns.len(), "buffer width mismatch");
        for (slot, column) in out.iter_mut().zip(&self.columns) {
            *slot = column[i];
        }
    }

    /// Transposes back to a row-major frame.
    pub fn to_rows(&self) -> TabularFrame {
        let f = self.columns.len();
        let mut data = Vec::with_capacity(self.n_rows * f);
        for i in 0..self.n_rows {
            for column in &self.columns {
                data.push(column[i]);
            }
        }
        TabularFrame::from_rows(data, f).expect("transpose preserves shape")
    }

    /// Payload size in bytes.
    pub fn bytes(&self) -> u64 {
        (self.n_rows * self.columns.len() * 4) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transpose_roundtrip() {
        let rows = TabularFrame::from_rows((0..24).map(|i| i as f32).collect(), 4).unwrap();
        let cols = ColumnarFrame::from_rows(&rows);
        assert_eq!(cols.n_rows(), 6);
        assert_eq!(cols.n_features(), 4);
        assert_eq!(cols.to_rows(), rows);
        assert_eq!(cols.bytes(), rows.bytes());
    }

    #[test]
    fn gather_row_matches_row_major() {
        let rows = TabularFrame::from_rows(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 3).unwrap();
        let cols = ColumnarFrame::from_rows(&rows);
        let mut buf = [0f32; 3];
        cols.gather_row(1, &mut buf);
        assert_eq!(&buf, rows.row(1));
    }

    #[test]
    fn from_columns_validates() {
        assert!(matches!(
            ColumnarFrame::from_columns(vec![]),
            Err(DataError::ZeroFeatures)
        ));
        assert!(matches!(
            ColumnarFrame::from_columns(vec![vec![1.0], vec![1.0, 2.0]]),
            Err(DataError::ShapeMismatch { .. })
        ));
        let ok = ColumnarFrame::from_columns(vec![vec![1.0, 3.0], vec![2.0, 4.0]]).unwrap();
        assert_eq!(ok.column(1), &[2.0, 4.0]);
    }

    #[test]
    fn empty_rows_are_fine() {
        let rows = TabularFrame::from_rows(vec![], 3).unwrap();
        let cols = ColumnarFrame::from_rows(&rows);
        assert_eq!(cols.n_rows(), 0);
        assert_eq!(cols.to_rows(), rows);
    }
}
