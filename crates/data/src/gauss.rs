//! Box–Muller standard-normal sampling (keeps the dependency set to `rand`
//! alone; `rand_distr` is not part of the sanctioned crate list).

use rand::Rng;

/// A standard-normal sampler using the Box–Muller transform, caching the
/// second variate of each pair.
#[derive(Debug, Default, Clone)]
pub(crate) struct Gauss {
    spare: Option<f32>,
}

impl Gauss {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Draws one standard-normal sample.
    pub(crate) fn sample<R: Rng>(&mut self, rng: &mut R) -> f32 {
        if let Some(s) = self.spare.take() {
            return s;
        }
        // u1 in (0, 1] so ln(u1) is finite.
        let u1: f32 = 1.0 - rng.gen::<f32>();
        let u2: f32 = rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mean_and_variance_are_standard() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut g = Gauss::new();
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| g.sample(&mut rng)).collect();
        let mean: f64 = samples.iter().map(|&v| v as f64).sum::<f64>() / n as f64;
        let var: f64 = samples
            .iter()
            .map(|&v| (v as f64 - mean).powi(2))
            .sum::<f64>()
            / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn samples_are_finite() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut g = Gauss::new();
        for _ in 0..1000 {
            assert!(g.sample(&mut rng).is_finite());
        }
    }
}
