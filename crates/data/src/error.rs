//! Error types for tabular data handling.

use std::error::Error;
use std::fmt;

/// Errors produced while constructing or splitting tabular data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum DataError {
    /// The flat buffer length is not a multiple of the feature count.
    ShapeMismatch {
        /// Buffer length.
        len: usize,
        /// Declared feature count.
        n_features: usize,
    },
    /// A frame cannot have zero feature columns.
    ZeroFeatures,
    /// Two frames that must agree on column count do not.
    WidthMismatch {
        /// Expected feature count.
        expected: usize,
        /// Actual feature count.
        got: usize,
    },
    /// Labels and rows differ in count.
    LabelMismatch {
        /// Number of rows.
        rows: usize,
        /// Number of labels.
        labels: usize,
    },
    /// A split fraction must lie strictly between 0 and 1.
    BadSplitFraction(
        /// The offending fraction (stored as bits for `Eq`).
        u64,
    ),
}

impl DataError {
    /// Builds the split-fraction error from an `f64`.
    pub fn bad_split_fraction(frac: f64) -> Self {
        DataError::BadSplitFraction(frac.to_bits())
    }
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::ShapeMismatch { len, n_features } => write!(
                f,
                "buffer of {len} values is not a multiple of {n_features} features"
            ),
            DataError::ZeroFeatures => write!(f, "frame must have at least one feature"),
            DataError::WidthMismatch { expected, got } => {
                write!(f, "expected {expected} feature columns, got {got}")
            }
            DataError::LabelMismatch { rows, labels } => {
                write!(f, "{rows} rows but {labels} labels")
            }
            DataError::BadSplitFraction(bits) => {
                write!(
                    f,
                    "split fraction {} must be in (0, 1)",
                    f64::from_bits(*bits)
                )
            }
        }
    }
}

impl Error for DataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_parameters() {
        let e = DataError::LabelMismatch {
            rows: 10,
            labels: 9,
        };
        assert!(format!("{e}").contains("10"));
        let e = DataError::bad_split_fraction(1.5);
        assert!(format!("{e}").contains("1.5"));
    }
}
