//! Row-major tabular feature storage.

use serde::{Deserialize, Serialize};

use crate::error::DataError;
use crate::stream::NormParams;

/// A dense, row-major matrix of `f32` features — the scoring input every
/// backend consumes (the stand-in for the Pandas DataFrame handed to the
/// Python script).
///
/// # Example
///
/// ```
/// use mlscore_data::TabularFrame;
///
/// let frame = TabularFrame::from_rows(vec![1.0, 2.0, 3.0, 4.0], 2)?;
/// assert_eq!(frame.n_rows(), 2);
/// assert_eq!(frame.row(1), &[3.0, 4.0]);
/// assert_eq!(frame.bytes(), 16);
/// # Ok::<(), mlscore_data::DataError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TabularFrame {
    data: Vec<f32>,
    n_features: usize,
}

impl TabularFrame {
    /// Wraps row-major data with `n_features` columns.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::ShapeMismatch`] if `data.len()` is not a
    /// multiple of `n_features`, or [`DataError::ZeroFeatures`] when
    /// `n_features == 0`.
    pub fn from_rows(data: Vec<f32>, n_features: usize) -> Result<Self, DataError> {
        if n_features == 0 {
            return Err(DataError::ZeroFeatures);
        }
        if !data.len().is_multiple_of(n_features) {
            return Err(DataError::ShapeMismatch {
                len: data.len(),
                n_features,
            });
        }
        Ok(Self { data, n_features })
    }

    /// An empty frame with room for `rows` rows reserved up front — the
    /// scratch shape every [`RecordStream`](crate::RecordStream) scanner
    /// reuses across chunks (refills within capacity never reallocate).
    ///
    /// # Panics
    ///
    /// Panics if `n_features == 0`.
    pub fn with_capacity(rows: usize, n_features: usize) -> Self {
        assert!(n_features > 0, "a frame needs at least one feature column");
        Self {
            data: Vec::with_capacity(rows * n_features),
            n_features,
        }
    }

    /// Drops all rows, keeping the allocation (and the column count).
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Appends whole row-major rows to the frame. Within the reserved
    /// capacity this is a plain copy — no allocation.
    ///
    /// # Panics
    ///
    /// Panics if `rows.len()` is not a multiple of the column count.
    pub fn extend_rows(&mut self, rows: &[f32]) {
        assert!(
            rows.len().is_multiple_of(self.n_features),
            "row data length {} is not a multiple of {} columns",
            rows.len(),
            self.n_features
        );
        self.data.extend_from_slice(rows);
    }

    /// Resizes to exactly `rows` rows (new rows zero-filled). Within the
    /// reserved capacity this never reallocates.
    pub fn resize_rows(&mut self, rows: usize) {
        self.data.resize(rows * self.n_features, 0.0);
    }

    /// The raw row-major buffer, mutably — for featurizers that transform
    /// a chunk in place into reusable scratch.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.data.len() / self.n_features
    }

    /// Returns `true` if the frame has no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// One row as a feature slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n_rows()`.
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.n_features..(i + 1) * self.n_features]
    }

    /// Iterates over rows.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[f32]> + '_ {
        self.data.chunks_exact(self.n_features)
    }

    /// The raw row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// In-memory payload size in bytes — the quantity every transfer model
    /// (PCIe DMA, SQL↔Python marshaling) charges for.
    pub fn bytes(&self) -> u64 {
        (self.data.len() * 4) as u64
    }

    /// A new frame holding the first `n` rows (clamped to the row count).
    pub fn head(&self, n: usize) -> TabularFrame {
        let rows = n.min(self.n_rows());
        TabularFrame {
            data: self.data[..rows * self.n_features].to_vec(),
            n_features: self.n_features,
        }
    }

    /// A new frame with exactly `n` rows, cycling existing rows as needed —
    /// how the paper turned 150 IRIS samples into 1M records.
    ///
    /// # Panics
    ///
    /// Panics if the frame is empty and `n > 0`.
    pub fn replicate_to(&self, n: usize) -> TabularFrame {
        assert!(
            n == 0 || !self.is_empty(),
            "cannot replicate an empty frame"
        );
        let mut data = Vec::with_capacity(n * self.n_features);
        let n_rows = self.n_rows();
        for i in 0..n {
            data.extend_from_slice(self.row(i % n_rows));
        }
        TabularFrame {
            data,
            n_features: self.n_features,
        }
    }

    /// Min-max normalizes every column into `[0, 1]` (constant columns map
    /// to 0.5). Returns the normalized frame.
    ///
    /// Fits [`NormParams`] over the whole frame and applies them — exactly
    /// the arithmetic the chunked
    /// [`NormalizeStream`](crate::NormalizeStream) featurizer runs, so the
    /// fused scan→featurize path is bit-exact with this staged
    /// materialization.
    pub fn normalized(&self) -> TabularFrame {
        if self.is_empty() {
            return self.clone();
        }
        let params = NormParams::fit(self);
        let mut out = TabularFrame::with_capacity(self.n_rows(), self.n_features);
        out.resize_rows(self.n_rows());
        params.apply_slice(&self.data, &mut out.data);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_validation() {
        assert!(matches!(
            TabularFrame::from_rows(vec![1.0; 5], 2),
            Err(DataError::ShapeMismatch {
                len: 5,
                n_features: 2
            })
        ));
        assert!(matches!(
            TabularFrame::from_rows(vec![], 0),
            Err(DataError::ZeroFeatures)
        ));
        assert!(TabularFrame::from_rows(vec![], 3).unwrap().is_empty());
    }

    #[test]
    fn rows_and_bytes() {
        let f = TabularFrame::from_rows(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 3).unwrap();
        assert_eq!(f.n_rows(), 2);
        assert_eq!(f.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(f.rows().count(), 2);
        assert_eq!(f.bytes(), 24);
        assert_eq!(f.as_slice().len(), 6);
    }

    #[test]
    fn head_clamps() {
        let f = TabularFrame::from_rows(vec![0.0; 8], 2).unwrap();
        assert_eq!(f.head(2).n_rows(), 2);
        assert_eq!(f.head(99).n_rows(), 4);
    }

    #[test]
    fn replicate_cycles_rows() {
        let f = TabularFrame::from_rows(vec![1.0, 2.0], 1).unwrap();
        let r = f.replicate_to(5);
        assert_eq!(r.as_slice(), &[1.0, 2.0, 1.0, 2.0, 1.0]);
        assert_eq!(f.replicate_to(0).n_rows(), 0);
    }

    #[test]
    #[should_panic(expected = "empty frame")]
    fn replicate_empty_panics() {
        TabularFrame::from_rows(vec![], 2).unwrap().replicate_to(3);
    }

    #[test]
    fn normalization_maps_to_unit_interval() {
        let f = TabularFrame::from_rows(vec![0.0, 5.0, 10.0, 5.0, 20.0, 5.0], 2).unwrap();
        let n = f.normalized();
        assert_eq!(n.row(0), &[0.0, 0.5]); // constant column -> 0.5
        assert_eq!(n.row(1), &[0.5, 0.5]);
        assert_eq!(n.row(2), &[1.0, 0.5]);
    }

    #[test]
    fn head_edge_cases() {
        let f = TabularFrame::from_rows(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2).unwrap();
        // n = 0 is a valid empty frame that keeps its width.
        let empty = f.head(0);
        assert!(empty.is_empty());
        assert_eq!(empty.n_features(), 2);
        // A single-row head is exactly the first row.
        assert_eq!(f.head(1).as_slice(), &[1.0, 2.0]);
        // n > rows clamps to a copy of the whole frame.
        assert_eq!(f.head(usize::MAX).as_slice(), f.as_slice());
        // head of an already-empty frame stays empty.
        let e = TabularFrame::from_rows(vec![], 3).unwrap();
        assert!(e.head(5).is_empty());
    }

    #[test]
    fn replicate_edge_cases() {
        let f = TabularFrame::from_rows(vec![1.0, 2.0, 3.0, 4.0], 2).unwrap();
        // n smaller than the row count truncates.
        assert_eq!(f.replicate_to(1).as_slice(), &[1.0, 2.0]);
        // n equal to the row count is an exact copy.
        assert_eq!(f.replicate_to(2).as_slice(), f.as_slice());
        // A single-row frame tiles that row.
        let one = TabularFrame::from_rows(vec![7.0, 8.0], 2).unwrap();
        assert_eq!(
            one.replicate_to(3).as_slice(),
            &[7.0, 8.0, 7.0, 8.0, 7.0, 8.0]
        );
        // Replicating an empty frame to zero rows is allowed.
        let e = TabularFrame::from_rows(vec![], 2).unwrap();
        assert!(e.replicate_to(0).is_empty());
    }

    #[test]
    fn normalization_edge_cases() {
        // An empty frame normalizes to itself (no NormParams fit).
        let e = TabularFrame::from_rows(vec![], 4).unwrap();
        assert!(e.normalized().is_empty());
        assert_eq!(e.normalized().n_features(), 4);
        // A single-row frame has min == max in every column -> all 0.5.
        let one = TabularFrame::from_rows(vec![3.0, -9.0, 0.0], 3).unwrap();
        assert_eq!(one.normalized().as_slice(), &[0.5, 0.5, 0.5]);
        // An all-NaN column never satisfies max > min, so it maps to the
        // constant-column fallback instead of propagating NaN.
        let f = TabularFrame::from_rows(vec![0.0, f32::NAN, 10.0, f32::NAN, 20.0, f32::NAN], 2)
            .unwrap();
        let n = f.normalized();
        assert_eq!(n.row(0), &[0.0, 0.5]);
        assert_eq!(n.row(1), &[0.5, 0.5]);
        assert_eq!(n.row(2), &[1.0, 0.5]);
    }
}
