//! Row-major tabular feature storage.

use serde::{Deserialize, Serialize};

use crate::error::DataError;

/// A dense, row-major matrix of `f32` features — the scoring input every
/// backend consumes (the stand-in for the Pandas DataFrame handed to the
/// Python script).
///
/// # Example
///
/// ```
/// use mlscore_data::TabularFrame;
///
/// let frame = TabularFrame::from_rows(vec![1.0, 2.0, 3.0, 4.0], 2)?;
/// assert_eq!(frame.n_rows(), 2);
/// assert_eq!(frame.row(1), &[3.0, 4.0]);
/// assert_eq!(frame.bytes(), 16);
/// # Ok::<(), mlscore_data::DataError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TabularFrame {
    data: Vec<f32>,
    n_features: usize,
}

impl TabularFrame {
    /// Wraps row-major data with `n_features` columns.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::ShapeMismatch`] if `data.len()` is not a
    /// multiple of `n_features`, or [`DataError::ZeroFeatures`] when
    /// `n_features == 0`.
    pub fn from_rows(data: Vec<f32>, n_features: usize) -> Result<Self, DataError> {
        if n_features == 0 {
            return Err(DataError::ZeroFeatures);
        }
        if !data.len().is_multiple_of(n_features) {
            return Err(DataError::ShapeMismatch {
                len: data.len(),
                n_features,
            });
        }
        Ok(Self { data, n_features })
    }

    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.data.len() / self.n_features
    }

    /// Returns `true` if the frame has no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// One row as a feature slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n_rows()`.
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.n_features..(i + 1) * self.n_features]
    }

    /// Iterates over rows.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[f32]> + '_ {
        self.data.chunks_exact(self.n_features)
    }

    /// The raw row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// In-memory payload size in bytes — the quantity every transfer model
    /// (PCIe DMA, SQL↔Python marshaling) charges for.
    pub fn bytes(&self) -> u64 {
        (self.data.len() * 4) as u64
    }

    /// A new frame holding the first `n` rows (clamped to the row count).
    pub fn head(&self, n: usize) -> TabularFrame {
        let rows = n.min(self.n_rows());
        TabularFrame {
            data: self.data[..rows * self.n_features].to_vec(),
            n_features: self.n_features,
        }
    }

    /// A new frame with exactly `n` rows, cycling existing rows as needed —
    /// how the paper turned 150 IRIS samples into 1M records.
    ///
    /// # Panics
    ///
    /// Panics if the frame is empty and `n > 0`.
    pub fn replicate_to(&self, n: usize) -> TabularFrame {
        assert!(
            n == 0 || !self.is_empty(),
            "cannot replicate an empty frame"
        );
        let mut data = Vec::with_capacity(n * self.n_features);
        let n_rows = self.n_rows();
        for i in 0..n {
            data.extend_from_slice(self.row(i % n_rows));
        }
        TabularFrame {
            data,
            n_features: self.n_features,
        }
    }

    /// Min-max normalizes every column into `[0, 1]` (constant columns map
    /// to 0.5). Returns the normalized frame.
    pub fn normalized(&self) -> TabularFrame {
        if self.is_empty() {
            return self.clone();
        }
        let f = self.n_features;
        let mut min = vec![f32::INFINITY; f];
        let mut max = vec![f32::NEG_INFINITY; f];
        for row in self.rows() {
            for (j, &v) in row.iter().enumerate() {
                min[j] = min[j].min(v);
                max[j] = max[j].max(v);
            }
        }
        let data = self
            .data
            .iter()
            .enumerate()
            .map(|(k, &v)| {
                let j = k % f;
                if max[j] > min[j] {
                    (v - min[j]) / (max[j] - min[j])
                } else {
                    0.5
                }
            })
            .collect();
        TabularFrame {
            data,
            n_features: f,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_validation() {
        assert!(matches!(
            TabularFrame::from_rows(vec![1.0; 5], 2),
            Err(DataError::ShapeMismatch {
                len: 5,
                n_features: 2
            })
        ));
        assert!(matches!(
            TabularFrame::from_rows(vec![], 0),
            Err(DataError::ZeroFeatures)
        ));
        assert!(TabularFrame::from_rows(vec![], 3).unwrap().is_empty());
    }

    #[test]
    fn rows_and_bytes() {
        let f = TabularFrame::from_rows(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 3).unwrap();
        assert_eq!(f.n_rows(), 2);
        assert_eq!(f.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(f.rows().count(), 2);
        assert_eq!(f.bytes(), 24);
        assert_eq!(f.as_slice().len(), 6);
    }

    #[test]
    fn head_clamps() {
        let f = TabularFrame::from_rows(vec![0.0; 8], 2).unwrap();
        assert_eq!(f.head(2).n_rows(), 2);
        assert_eq!(f.head(99).n_rows(), 4);
    }

    #[test]
    fn replicate_cycles_rows() {
        let f = TabularFrame::from_rows(vec![1.0, 2.0], 1).unwrap();
        let r = f.replicate_to(5);
        assert_eq!(r.as_slice(), &[1.0, 2.0, 1.0, 2.0, 1.0]);
        assert_eq!(f.replicate_to(0).n_rows(), 0);
    }

    #[test]
    #[should_panic(expected = "empty frame")]
    fn replicate_empty_panics() {
        TabularFrame::from_rows(vec![], 2).unwrap().replicate_to(3);
    }

    #[test]
    fn normalization_maps_to_unit_interval() {
        let f = TabularFrame::from_rows(vec![0.0, 5.0, 10.0, 5.0, 20.0, 5.0], 2).unwrap();
        let n = f.normalized();
        assert_eq!(n.row(0), &[0.0, 0.5]); // constant column -> 0.5
        assert_eq!(n.row(1), &[0.5, 0.5]);
        assert_eq!(n.row(2), &[1.0, 0.5]);
    }
}
