//! Pull-based record streaming: the fused scan→featurize→score input path.
//!
//! The paper's core finding is that handing a scoring batch across the
//! SQL↔Python boundary (invocation, marshaling, data pre-processing)
//! dominates end-to-end latency. [`RecordStream`] is the abstraction that
//! *eliminates* those stages in-process instead of simulating them: a
//! pull-based lending iterator yielding cache-sized chunks of feature rows
//! from reusable scratch, so a scanner can walk storage (a frame, a
//! columnar projection, a CSV reader) straight into the executor without
//! ever materializing a full marshaled copy.
//!
//! Scanners allocate their scratch once at construction; refilling a chunk
//! is a plain copy (or gather) into that scratch — the hot regions carry
//! `// analyze: hot` markers so the workspace H001 lint keeps them
//! allocation-free.
//!
//! # Example
//!
//! ```
//! use mlscore_data::{FrameScanner, RecordStream, TabularFrame};
//!
//! let frame = TabularFrame::from_rows((0..12).map(|i| i as f32).collect(), 3)?;
//! let mut scanner = FrameScanner::new(&frame, 2);
//! let mut rows = 0;
//! while let Some(chunk) = scanner.next_chunk() {
//!     assert!(chunk.n_rows() <= 2);
//!     rows += chunk.n_rows();
//! }
//! assert_eq!(rows, 4);
//! # Ok::<(), mlscore_data::DataError>(())
//! ```

use std::io::BufRead;

use crate::columnar::ColumnarFrame;
use crate::csv::CsvError;
use crate::error::DataError;
use crate::frame::TabularFrame;

/// Default chunk size in rows. 512 rows × 28 HIGGS features × 4 bytes is
/// ~57 KiB — the chunk plus the scoring scratch stays L2-resident on the
/// reference host while still amortizing per-chunk dispatch overhead.
pub const DEFAULT_CHUNK_ROWS: usize = 512;

/// A pull-based stream of feature-row chunks.
///
/// `next_chunk` lends a reference into the stream's own reusable scratch:
/// the chunk is valid until the next `next_chunk` call, and no full copy
/// of the underlying records is ever materialized. Every yielded chunk is
/// non-empty and carries exactly [`n_features`](RecordStream::n_features)
/// columns; records are yielded in source order and each record belongs to
/// exactly one chunk — which is why per-chunk scoring concatenated in
/// chunk order is bit-exact with scoring the whole input at once.
pub trait RecordStream {
    /// Number of feature columns every chunk carries.
    fn n_features(&self) -> usize;

    /// Bounds on the number of *rows* remaining, `(lower, upper)` — same
    /// contract as [`Iterator::size_hint`].
    fn size_hint(&self) -> (usize, Option<usize>);

    /// Yields the next chunk, or `None` when the stream is exhausted (or,
    /// for fallible sources, stopped on an error the scanner exposes
    /// separately).
    fn next_chunk(&mut self) -> Option<&TabularFrame>;
}

/// Streams an in-memory [`TabularFrame`] in row-order chunks.
///
/// Each refill copies one cache-sized row range into the scanner's
/// reusable scratch — the stand-in for a storage engine handing over one
/// page worth of rows.
#[derive(Debug)]
pub struct FrameScanner<'a> {
    frame: &'a TabularFrame,
    chunk_rows: usize,
    cursor: usize,
    scratch: TabularFrame,
}

impl<'a> FrameScanner<'a> {
    /// A scanner over `frame` yielding up to `chunk_rows` rows per chunk.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_rows == 0`.
    pub fn new(frame: &'a TabularFrame, chunk_rows: usize) -> Self {
        assert!(chunk_rows > 0, "chunks must hold at least one row");
        Self {
            frame,
            chunk_rows,
            cursor: 0,
            scratch: TabularFrame::with_capacity(chunk_rows, frame.n_features()),
        }
    }
}

impl RecordStream for FrameScanner<'_> {
    fn n_features(&self) -> usize {
        self.frame.n_features()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.frame.n_rows() - self.cursor;
        (left, Some(left))
    }

    fn next_chunk(&mut self) -> Option<&TabularFrame> {
        if self.cursor >= self.frame.n_rows() {
            return None;
        }
        let end = (self.cursor + self.chunk_rows).min(self.frame.n_rows());
        let f = self.frame.n_features();
        self.scratch.clear();
        // analyze: hot
        {
            self.scratch
                .extend_rows(&self.frame.as_slice()[self.cursor * f..end * f]);
        }
        self.cursor = end;
        Some(&self.scratch)
    }
}

/// Streams several same-width frames back to back — the coalescing path's
/// scanner: `k` queued requests score as one fused pass without ever
/// concatenating their frames. Chunks never span a frame boundary, so
/// splitting the predictions back per request is a plain row count walk.
#[derive(Debug)]
pub struct ChainScanner<'a> {
    frames: Vec<&'a TabularFrame>,
    n_features: usize,
    frame_idx: usize,
    cursor: usize,
    chunk_rows: usize,
    scratch: TabularFrame,
}

impl<'a> ChainScanner<'a> {
    /// A scanner chaining `frames` in order.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::ZeroFeatures`] for an empty frame list and
    /// [`DataError::WidthMismatch`] when the frames disagree on column
    /// count.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_rows == 0`.
    pub fn new(frames: Vec<&'a TabularFrame>, chunk_rows: usize) -> Result<Self, DataError> {
        assert!(chunk_rows > 0, "chunks must hold at least one row");
        let n_features = frames.first().ok_or(DataError::ZeroFeatures)?.n_features();
        for frame in &frames {
            if frame.n_features() != n_features {
                return Err(DataError::WidthMismatch {
                    expected: n_features,
                    got: frame.n_features(),
                });
            }
        }
        Ok(Self {
            frames,
            n_features,
            frame_idx: 0,
            cursor: 0,
            chunk_rows,
            scratch: TabularFrame::with_capacity(chunk_rows, n_features),
        })
    }
}

impl RecordStream for ChainScanner<'_> {
    fn n_features(&self) -> usize {
        self.n_features
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left: usize = self.frames[self.frame_idx..]
            .iter()
            .map(|f| f.n_rows())
            .sum::<usize>()
            - self.cursor;
        (left, Some(left))
    }

    fn next_chunk(&mut self) -> Option<&TabularFrame> {
        // Skip exhausted (or empty) frames.
        while self.frame_idx < self.frames.len()
            && self.cursor >= self.frames[self.frame_idx].n_rows()
        {
            self.frame_idx += 1;
            self.cursor = 0;
        }
        if self.frame_idx >= self.frames.len() {
            return None;
        }
        let frame = self.frames[self.frame_idx];
        let end = (self.cursor + self.chunk_rows).min(frame.n_rows());
        let f = self.n_features;
        self.scratch.clear();
        // analyze: hot
        {
            self.scratch
                .extend_rows(&frame.as_slice()[self.cursor * f..end * f]);
        }
        self.cursor = end;
        Some(&self.scratch)
    }
}

/// Streams a [`ColumnarFrame`] in row-order chunks, gathering each row from
/// the column arrays through one caller-owned scratch row (the
/// [`ColumnarFrame::gather_row`] reuse contract).
#[derive(Debug)]
pub struct ColumnarScanner<'a> {
    frame: &'a ColumnarFrame,
    chunk_rows: usize,
    cursor: usize,
    row: Vec<f32>,
    scratch: TabularFrame,
}

impl<'a> ColumnarScanner<'a> {
    /// A scanner over `frame` yielding up to `chunk_rows` rows per chunk.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_rows == 0` or the frame has no columns.
    pub fn new(frame: &'a ColumnarFrame, chunk_rows: usize) -> Self {
        assert!(chunk_rows > 0, "chunks must hold at least one row");
        let f = frame.n_features();
        Self {
            frame,
            chunk_rows,
            cursor: 0,
            row: vec![0.0; f],
            scratch: TabularFrame::with_capacity(chunk_rows, f),
        }
    }
}

impl RecordStream for ColumnarScanner<'_> {
    fn n_features(&self) -> usize {
        self.frame.n_features()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.frame.n_rows() - self.cursor;
        (left, Some(left))
    }

    fn next_chunk(&mut self) -> Option<&TabularFrame> {
        if self.cursor >= self.frame.n_rows() {
            return None;
        }
        let end = (self.cursor + self.chunk_rows).min(self.frame.n_rows());
        self.scratch.clear();
        // analyze: hot
        {
            for i in self.cursor..end {
                self.frame.gather_row(i, &mut self.row);
                self.scratch.extend_rows(&self.row);
            }
        }
        self.cursor = end;
        Some(&self.scratch)
    }
}

/// Streams rows straight off a CSV reader (the [`crate::csv`] dialect:
/// comma-separated numeric fields, optional header, blank lines skipped)
/// without ever holding more than one chunk of parsed rows.
///
/// The column width is learned from the first data row at construction.
/// Parse or I/O errors *during* streaming end the stream (`next_chunk`
/// returns `None`, dropping the partial chunk); [`CsvScanner::error`]
/// tells a truncated scan from a clean one.
#[derive(Debug)]
pub struct CsvScanner<R: BufRead> {
    reader: R,
    line_no: usize,
    n_features: usize,
    chunk_rows: usize,
    pending: Vec<f32>,
    line: String,
    scratch: TabularFrame,
    error: Option<CsvError>,
    done: bool,
}

impl<R: BufRead> CsvScanner<R> {
    /// Opens a streaming scanner, reading (and validating) the first data
    /// row eagerly so the column width is known up front.
    ///
    /// # Errors
    ///
    /// Returns [`CsvError::Empty`] when there are no data rows, plus any
    /// parse/I/O error of the first row.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_rows == 0`.
    pub fn new(reader: R, has_header: bool, chunk_rows: usize) -> Result<Self, CsvError> {
        assert!(chunk_rows > 0, "chunks must hold at least one row");
        let mut scanner = Self {
            reader,
            line_no: 0,
            n_features: 0,
            chunk_rows,
            pending: Vec::new(),
            line: String::new(),
            scratch: TabularFrame::with_capacity(0, 1),
            error: None,
            done: false,
        };
        if has_header {
            // Consume the header line; the width comes from the first
            // data row, exactly as in [`crate::csv::read_frame`].
            let _ = scanner.read_line()?;
        }
        let first = loop {
            match scanner.read_line()? {
                None => return Err(CsvError::Empty),
                Some(()) if scanner.trimmed().is_empty() => continue,
                Some(()) => break scanner.parse_row(None)?,
            }
        };
        scanner.n_features = first;
        scanner.scratch = TabularFrame::with_capacity(chunk_rows, first);
        Ok(scanner)
    }

    /// The error that truncated the stream, if any.
    pub fn error(&self) -> Option<&CsvError> {
        self.error.as_ref()
    }

    /// Reads one raw line into the line buffer. `Ok(None)` at EOF.
    fn read_line(&mut self) -> Result<Option<()>, CsvError> {
        self.line.clear();
        let n = self.reader.read_line(&mut self.line)?;
        if n == 0 {
            return Ok(None);
        }
        self.line_no += 1;
        Ok(Some(()))
    }

    /// The current line without the trailing newline / carriage return.
    fn trimmed(&self) -> &str {
        self.line.trim_end_matches(['\n', '\r'])
    }

    /// Parses the current line into `pending`, checking the field count
    /// against `expected` (None on the width-defining first row). Returns
    /// the field count.
    fn parse_row(&mut self, expected: Option<usize>) -> Result<usize, CsvError> {
        self.pending.clear();
        let line_no = self.line_no;
        let trimmed = self.line.trim_end_matches(['\n', '\r']);
        let mut count = 0usize;
        for (column, field) in trimmed.split(',').enumerate() {
            let value: f32 = field.trim().parse().map_err(|_| CsvError::BadField {
                line: line_no,
                column,
                text: field.to_string(),
            })?;
            self.pending.push(value);
            count += 1;
        }
        if let Some(expected) = expected {
            if count != expected {
                return Err(CsvError::RaggedRow {
                    line: line_no,
                    got: count,
                    expected,
                });
            }
        }
        Ok(count)
    }
}

impl<R: BufRead> RecordStream for CsvScanner<R> {
    fn n_features(&self) -> usize {
        self.n_features
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        if self.done {
            (0, Some(0))
        } else {
            (usize::from(!self.pending.is_empty()), None)
        }
    }

    fn next_chunk(&mut self) -> Option<&TabularFrame> {
        if self.done {
            return None;
        }
        self.scratch.clear();
        if !self.pending.is_empty() {
            self.scratch.extend_rows(&self.pending);
            self.pending.clear();
        }
        while self.scratch.n_rows() < self.chunk_rows {
            match self.read_line() {
                Ok(None) => {
                    self.done = true;
                    break;
                }
                Ok(Some(())) => {
                    if self.trimmed().is_empty() {
                        continue;
                    }
                    match self.parse_row(Some(self.n_features)) {
                        Ok(_) => {
                            self.scratch.extend_rows(&self.pending);
                            self.pending.clear();
                        }
                        Err(e) => {
                            self.error = Some(e);
                            self.done = true;
                            return None;
                        }
                    }
                }
                Err(e) => {
                    self.error = Some(e);
                    self.done = true;
                    return None;
                }
            }
        }
        if self.scratch.is_empty() {
            self.done = true;
            None
        } else {
            Some(&self.scratch)
        }
    }
}

/// Per-column min-max normalization parameters — the featurization the
/// staged pipeline's "data preprocessing" stage stands for, factored out
/// so the chunked [`NormalizeStream`] and the staged
/// [`TabularFrame::normalized`] materialization share one arithmetic
/// (and are therefore bit-exact with each other).
#[derive(Debug, Clone, PartialEq)]
pub struct NormParams {
    min: Vec<f32>,
    max: Vec<f32>,
}

impl NormParams {
    /// Fits per-column min/max over a whole frame (one read pass — the
    /// fused path's only look at the data before streaming begins).
    ///
    /// # Panics
    ///
    /// Panics if the frame is empty.
    pub fn fit(frame: &TabularFrame) -> Self {
        assert!(!frame.is_empty(), "cannot fit NormParams on an empty frame");
        let f = frame.n_features();
        let mut min = vec![f32::INFINITY; f];
        let mut max = vec![f32::NEG_INFINITY; f];
        for row in frame.rows() {
            for (j, &v) in row.iter().enumerate() {
                min[j] = min[j].min(v);
                max[j] = max[j].max(v);
            }
        }
        Self { min, max }
    }

    /// Identity parameters (every column maps to the constant-column 0.5
    /// only if touched — with `min == max == NaN` comparisons are false,
    /// so instead this uses `[0, 1]` bounds, which pass values through).
    pub fn identity(n_features: usize) -> Self {
        Self {
            min: vec![0.0; n_features],
            max: vec![1.0; n_features],
        }
    }

    /// Number of feature columns the parameters cover.
    pub fn n_features(&self) -> usize {
        self.min.len()
    }

    /// Normalizes one value from column `j`: `(v - min) / (max - min)`
    /// into `[0, 1]`, constant columns (and all-NaN columns, whose fitted
    /// bounds never satisfy `max > min`) mapping to 0.5.
    #[inline]
    pub fn apply(&self, j: usize, v: f32) -> f32 {
        if self.max[j] > self.min[j] {
            (v - self.min[j]) / (self.max[j] - self.min[j])
        } else {
            0.5
        }
    }

    /// Normalizes a row-major block `src` into `dst` (equal lengths, both
    /// a whole number of rows). This is the chunked featurizer's kernel.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths differ or are not a multiple of the
    /// column count.
    pub fn apply_slice(&self, src: &[f32], dst: &mut [f32]) {
        let f = self.n_features();
        assert_eq!(src.len(), dst.len(), "src/dst length mismatch");
        assert!(
            src.len().is_multiple_of(f),
            "block of {} values is not a multiple of {} columns",
            src.len(),
            f
        );
        // analyze: hot
        {
            for (srow, drow) in src.chunks_exact(f).zip(dst.chunks_exact_mut(f)) {
                for j in 0..f {
                    drow[j] = self.apply(j, srow[j]);
                }
            }
        }
    }
}

/// A chunked featurizer: normalizes every chunk of an inner stream into
/// its own reusable scratch — the fused replacement for the staged
/// pipeline's materialize-then-preprocess step.
#[derive(Debug)]
pub struct NormalizeStream<S> {
    inner: S,
    params: NormParams,
    scratch: TabularFrame,
}

impl<S: RecordStream> NormalizeStream<S> {
    /// Wraps `inner`, normalizing with `params`.
    ///
    /// # Panics
    ///
    /// Panics if `params` and the inner stream disagree on column count.
    pub fn new(inner: S, params: NormParams) -> Self {
        assert_eq!(
            params.n_features(),
            inner.n_features(),
            "NormParams width must match the stream"
        );
        let f = inner.n_features();
        Self {
            inner,
            params,
            scratch: TabularFrame::with_capacity(0, f),
        }
    }
}

impl<S: RecordStream> RecordStream for NormalizeStream<S> {
    fn n_features(&self) -> usize {
        self.inner.n_features()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }

    fn next_chunk(&mut self) -> Option<&TabularFrame> {
        let chunk = self.inner.next_chunk()?;
        // First refill grows the scratch to the inner chunk size; steady
        // state resizes within capacity (no allocation).
        self.scratch.resize_rows(chunk.n_rows());
        self.params
            .apply_slice(chunk.as_slice(), self.scratch.as_mut_slice());
        Some(&self.scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(rows: usize, f: usize) -> TabularFrame {
        TabularFrame::from_rows((0..rows * f).map(|i| (i as f32).sin() * 100.0).collect(), f)
            .unwrap()
    }

    /// Drains a stream into one owned frame (test helper — the real fused
    /// consumers never do this).
    fn drain(stream: &mut dyn RecordStream) -> TabularFrame {
        let mut out = TabularFrame::with_capacity(0, stream.n_features());
        while let Some(chunk) = stream.next_chunk() {
            assert!(!chunk.is_empty(), "streams never yield empty chunks");
            out.extend_rows(chunk.as_slice());
        }
        out
    }

    #[test]
    fn frame_scanner_reassembles_exactly() {
        for chunk_rows in [1, 3, 7, 64] {
            let f = frame(23, 4);
            let mut s = FrameScanner::new(&f, chunk_rows);
            assert_eq!(s.size_hint(), (23, Some(23)));
            assert_eq!(drain(&mut s), f);
            assert_eq!(s.size_hint(), (0, Some(0)));
        }
    }

    #[test]
    fn frame_scanner_on_empty_frame_yields_nothing() {
        let f = TabularFrame::from_rows(vec![], 3).unwrap();
        let mut s = FrameScanner::new(&f, 8);
        assert!(s.next_chunk().is_none());
    }

    #[test]
    fn chain_scanner_concatenates_in_order() {
        let a = frame(5, 3);
        let b = frame(1, 3);
        let c = frame(9, 3);
        let mut s = ChainScanner::new(vec![&a, &b, &c], 4).unwrap();
        assert_eq!(s.size_hint(), (15, Some(15)));
        let got = drain(&mut s);
        let mut want = TabularFrame::with_capacity(15, 3);
        for f in [&a, &b, &c] {
            want.extend_rows(f.as_slice());
        }
        assert_eq!(got, want);
    }

    #[test]
    fn chain_scanner_chunks_never_span_frames() {
        let a = frame(3, 2);
        let b = frame(3, 2);
        let mut s = ChainScanner::new(vec![&a, &b], 4).unwrap();
        // 3-row frames under a 4-row cap: each frame yields one chunk.
        assert_eq!(s.next_chunk().unwrap().n_rows(), 3);
        assert_eq!(s.next_chunk().unwrap().n_rows(), 3);
        assert!(s.next_chunk().is_none());
    }

    #[test]
    fn chain_scanner_rejects_mixed_widths_and_empty_lists() {
        let a = frame(2, 2);
        let b = frame(2, 3);
        assert_eq!(
            ChainScanner::new(vec![&a, &b], 4).unwrap_err(),
            DataError::WidthMismatch {
                expected: 2,
                got: 3
            }
        );
        assert_eq!(
            ChainScanner::new(vec![], 4).unwrap_err(),
            DataError::ZeroFeatures
        );
    }

    #[test]
    fn columnar_scanner_matches_row_order() {
        let f = frame(37, 5);
        let columnar = ColumnarFrame::from_rows(&f);
        for chunk_rows in [1, 8, 100] {
            let mut s = ColumnarScanner::new(&columnar, chunk_rows);
            assert_eq!(drain(&mut s), f);
        }
    }

    #[test]
    fn csv_scanner_streams_the_read_frame_dialect() {
        let text = "h1,h2\n1,2\r\n\r\n3,4\n5,6\n";
        let mut s = CsvScanner::new(text.as_bytes(), true, 2).unwrap();
        assert_eq!(s.n_features(), 2);
        let got = drain(&mut s);
        assert!(s.error().is_none());
        let want = crate::csv::read_frame(text.as_bytes(), true).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn csv_scanner_surfaces_errors_and_truncates() {
        let text = "1,2\n3,4\nx,6\n7,8\n";
        let mut s = CsvScanner::new(text.as_bytes(), false, 10).unwrap();
        assert!(s.next_chunk().is_none());
        assert!(matches!(
            s.error(),
            Some(CsvError::BadField { line: 3, .. })
        ));
        // The stream stays ended.
        assert!(s.next_chunk().is_none());
    }

    #[test]
    fn csv_scanner_ragged_rows_truncate_too() {
        let text = "1,2\n3\n";
        let mut s = CsvScanner::new(text.as_bytes(), false, 10).unwrap();
        assert!(s.next_chunk().is_none());
        assert_eq!(
            s.error(),
            Some(&CsvError::RaggedRow {
                line: 2,
                got: 1,
                expected: 2
            })
        );
    }

    #[test]
    fn csv_scanner_empty_input_errors_like_read_frame() {
        assert_eq!(
            CsvScanner::new("".as_bytes(), false, 4).unwrap_err(),
            CsvError::Empty
        );
        assert_eq!(
            CsvScanner::new("h1,h2\n".as_bytes(), true, 4).unwrap_err(),
            CsvError::Empty
        );
    }

    #[test]
    fn normalize_stream_matches_staged_normalized_bit_exactly() {
        let f = frame(100, 4);
        let staged = f.normalized();
        let params = NormParams::fit(&f);
        for chunk_rows in [1, 7, 64, 4096] {
            let mut s = NormalizeStream::new(FrameScanner::new(&f, chunk_rows), params.clone());
            let fused = drain(&mut s);
            assert_eq!(fused.as_slice(), staged.as_slice());
        }
    }

    #[test]
    fn identity_params_pass_values_through() {
        let p = NormParams::identity(3);
        let mut dst = [0.0f32; 3];
        p.apply_slice(&[0.25, 0.5, 1.0], &mut dst);
        assert_eq!(dst, [0.25, 0.5, 1.0]);
    }

    #[test]
    fn nan_columns_normalize_to_half() {
        // A column that is all-NaN never satisfies `max > min`, so every
        // value (including the NaNs) maps to the constant-column 0.5.
        let f = TabularFrame::from_rows(vec![f32::NAN, 1.0, f32::NAN, 3.0], 2).unwrap();
        let n = f.normalized();
        assert_eq!(n.row(0), &[0.5, 0.0]);
        assert_eq!(n.row(1), &[0.5, 1.0]);
    }
}
