//! Tabular data and synthetic dataset generators.
//!
//! The paper evaluates on IRIS (4 features, 3 classes, replicated to 1M
//! rows) and HIGGS (28 features, binary, 11M rows). We cannot ship those
//! datasets, so this crate provides faithful synthetic stand-ins: the study
//! depends only on record count, feature width, and class count — not on
//! the provenance of the feature values (see DESIGN.md §2).
//!
//! # Example
//!
//! ```
//! use mlscore_data::Dataset;
//!
//! let iris = Dataset::iris(1_000, 42);
//! assert_eq!(iris.frame().n_features(), 4);
//! assert_eq!(iris.frame().n_rows(), 1_000);
//! assert_eq!(iris.n_classes(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod columnar;
pub mod csv;
pub mod dataset;
pub mod error;
pub mod frame;
pub(crate) mod gauss;
pub mod higgs;
pub mod iris;
pub mod split;
pub mod stream;

pub use columnar::ColumnarFrame;
pub use dataset::{Dataset, DatasetSpec};
pub use error::DataError;
pub use frame::TabularFrame;
pub use split::train_test_split;
pub use stream::{
    ChainScanner, ColumnarScanner, CsvScanner, FrameScanner, NormParams, NormalizeStream,
    RecordStream, DEFAULT_CHUNK_ROWS,
};
