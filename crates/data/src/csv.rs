//! Minimal CSV reading/writing for frames and labeled datasets.
//!
//! A deliberately small, dependency-free dialect: comma-separated numeric
//! fields, optional single header line, `\n` or `\r\n` line endings, no
//! quoting (the data is purely numeric). Enough to round-trip any
//! [`TabularFrame`] and to import externally prepared scoring batches.

use std::io::{BufRead, Write};

use crate::dataset::Dataset;
use crate::error::DataError;
use crate::frame::TabularFrame;

/// Errors from CSV parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CsvError {
    /// A line had a different number of fields than the first line.
    RaggedRow {
        /// 1-based line number.
        line: usize,
        /// Fields found.
        got: usize,
        /// Fields expected.
        expected: usize,
    },
    /// A field failed to parse as a number.
    BadField {
        /// 1-based line number.
        line: usize,
        /// 0-based column.
        column: usize,
        /// The offending text.
        text: String,
    },
    /// The input had no data rows.
    Empty,
    /// An I/O error (stored as its message for `Eq`).
    Io(String),
    /// The parsed shape was rejected by the frame constructor.
    Shape(DataError),
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::RaggedRow {
                line,
                got,
                expected,
            } => {
                write!(f, "line {line}: {got} fields, expected {expected}")
            }
            CsvError::BadField { line, column, text } => {
                write!(f, "line {line}, column {column}: cannot parse {text:?}")
            }
            CsvError::Empty => write!(f, "no data rows"),
            CsvError::Io(msg) => write!(f, "i/o error: {msg}"),
            CsvError::Shape(e) => write!(f, "bad shape: {e}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e.to_string())
    }
}

impl From<DataError> for CsvError {
    fn from(e: DataError) -> Self {
        CsvError::Shape(e)
    }
}

/// Reads a frame from CSV. When `has_header` is set the first line is
/// skipped.
///
/// # Errors
///
/// Returns [`CsvError`] for ragged rows, unparseable fields, or empty
/// input.
///
/// # Example
///
/// ```
/// use mlscore_data::csv::read_frame;
///
/// let frame = read_frame("a,b\n1.0,2.0\n3.0,4.0\n".as_bytes(), true)?;
/// assert_eq!(frame.n_rows(), 2);
/// assert_eq!(frame.row(1), &[3.0, 4.0]);
/// # Ok::<(), mlscore_data::csv::CsvError>(())
/// ```
pub fn read_frame<R: BufRead>(reader: R, has_header: bool) -> Result<TabularFrame, CsvError> {
    let mut data = Vec::new();
    let mut n_features = None;
    let mut line_no = 0usize;
    for line in reader.lines() {
        let line = line?;
        line_no += 1;
        if line_no == 1 && has_header {
            continue;
        }
        let trimmed = line.trim_end_matches('\r');
        if trimmed.is_empty() {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').collect();
        let expected = *n_features.get_or_insert(fields.len());
        if fields.len() != expected {
            return Err(CsvError::RaggedRow {
                line: line_no,
                got: fields.len(),
                expected,
            });
        }
        for (column, field) in fields.iter().enumerate() {
            let value: f32 = field.trim().parse().map_err(|_| CsvError::BadField {
                line: line_no,
                column,
                text: (*field).to_string(),
            })?;
            data.push(value);
        }
    }
    let n_features = n_features.ok_or(CsvError::Empty)?;
    if data.is_empty() {
        return Err(CsvError::Empty);
    }
    Ok(TabularFrame::from_rows(data, n_features)?)
}

/// Reads a labeled dataset: the **last** column is the integer class label.
///
/// # Errors
///
/// Same as [`read_frame`], plus [`CsvError::BadField`] for non-integer or
/// negative labels.
pub fn read_dataset<R: BufRead>(
    reader: R,
    has_header: bool,
    name: &str,
) -> Result<Dataset, CsvError> {
    let wide = read_frame(reader, has_header)?;
    let f = wide.n_features();
    if f < 2 {
        return Err(CsvError::Shape(DataError::ZeroFeatures));
    }
    let mut data = Vec::with_capacity(wide.n_rows() * (f - 1));
    let mut labels = Vec::with_capacity(wide.n_rows());
    let mut n_classes = 0u32;
    for (i, row) in wide.rows().enumerate() {
        let (features, label) = row.split_at(f - 1);
        data.extend_from_slice(features);
        let raw = label[0];
        if raw < 0.0 || raw.fract() != 0.0 {
            return Err(CsvError::BadField {
                line: i + 1 + usize::from(has_header),
                column: f - 1,
                text: raw.to_string(),
            });
        }
        let class = raw as u32;
        n_classes = n_classes.max(class + 1);
        labels.push(class);
    }
    let frame = TabularFrame::from_rows(data, f - 1)?;
    Ok(Dataset::new(name, frame, labels, n_classes)?)
}

/// Writes a frame as CSV with generated `f0..fN` headers.
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_frame<W: Write>(frame: &TabularFrame, mut writer: W) -> Result<(), CsvError> {
    let headers: Vec<String> = (0..frame.n_features()).map(|i| format!("f{i}")).collect();
    writeln!(writer, "{}", headers.join(","))?;
    for row in frame.rows() {
        let fields: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
        writeln!(writer, "{}", fields.join(","))?;
    }
    Ok(())
}

/// Writes a labeled dataset as CSV, label in the last column.
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_dataset<W: Write>(dataset: &Dataset, mut writer: W) -> Result<(), CsvError> {
    let headers: Vec<String> = (0..dataset.frame().n_features())
        .map(|i| format!("f{i}"))
        .collect();
    writeln!(writer, "{},label", headers.join(","))?;
    for (row, label) in dataset.frame().rows().zip(dataset.labels()) {
        let fields: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
        writeln!(writer, "{},{label}", fields.join(","))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let frame = TabularFrame::from_rows(vec![1.5, -2.0, 0.25, 4.0], 2).unwrap();
        let mut buf = Vec::new();
        write_frame(&frame, &mut buf).unwrap();
        let back = read_frame(buf.as_slice(), true).unwrap();
        assert_eq!(back, frame);
    }

    #[test]
    fn dataset_roundtrip() {
        let d = Dataset::iris(30, 4);
        let mut buf = Vec::new();
        write_dataset(&d, &mut buf).unwrap();
        let back = read_dataset(buf.as_slice(), true, "IRIS").unwrap();
        assert_eq!(back.frame(), d.frame());
        assert_eq!(back.labels(), d.labels());
        assert_eq!(back.n_classes(), d.n_classes());
    }

    #[test]
    fn headerless_and_crlf_and_blank_lines() {
        let frame = read_frame("1,2\r\n\r\n3,4\n".as_bytes(), false).unwrap();
        assert_eq!(frame.n_rows(), 2);
        assert_eq!(frame.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn ragged_rows_rejected_with_location() {
        let err = read_frame("1,2\n3\n".as_bytes(), false).unwrap_err();
        assert_eq!(
            err,
            CsvError::RaggedRow {
                line: 2,
                got: 1,
                expected: 2
            }
        );
    }

    #[test]
    fn bad_fields_rejected_with_location() {
        let err = read_frame("1,x\n".as_bytes(), false).unwrap_err();
        assert!(matches!(
            err,
            CsvError::BadField {
                line: 1,
                column: 1,
                ..
            }
        ));
    }

    #[test]
    fn empty_inputs_rejected() {
        assert_eq!(
            read_frame("".as_bytes(), false).unwrap_err(),
            CsvError::Empty
        );
        assert_eq!(
            read_frame("h1,h2\n".as_bytes(), true).unwrap_err(),
            CsvError::Empty
        );
    }

    #[test]
    fn dataset_rejects_fractional_or_negative_labels() {
        assert!(matches!(
            read_dataset("1,0.5\n".as_bytes(), false, "x").unwrap_err(),
            CsvError::BadField { .. }
        ));
        assert!(matches!(
            read_dataset("1,-1\n".as_bytes(), false, "x").unwrap_err(),
            CsvError::BadField { .. }
        ));
    }

    #[test]
    fn dataset_needs_at_least_one_feature_and_a_label() {
        assert!(matches!(
            read_dataset("1\n2\n".as_bytes(), false, "x").unwrap_err(),
            CsvError::Shape(_)
        ));
    }

    #[test]
    fn class_count_is_max_label_plus_one() {
        let d = read_dataset("0.1,0\n0.2,3\n".as_bytes(), false, "x").unwrap();
        assert_eq!(d.n_classes(), 4);
    }
}
