//! Labeled datasets and the paper's two dataset specifications.

use serde::{Deserialize, Serialize};

use crate::error::DataError;
use crate::frame::TabularFrame;
use crate::higgs;
use crate::iris;

/// Static description of a dataset family — the two the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DatasetSpec {
    /// IRIS-like: 4 features, 3 classes (§IV-A). Not supported by
    /// GPU-RAPIDS in the paper (multi-class).
    Iris,
    /// HIGGS-like: 28 features, 2 classes (§IV-A).
    Higgs,
}

impl DatasetSpec {
    /// Human-readable name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            DatasetSpec::Iris => "IRIS",
            DatasetSpec::Higgs => "HIGGS",
        }
    }

    /// Feature count.
    pub fn n_features(self) -> usize {
        match self {
            DatasetSpec::Iris => 4,
            DatasetSpec::Higgs => 28,
        }
    }

    /// Class count.
    pub fn n_classes(self) -> u32 {
        match self {
            DatasetSpec::Iris => 3,
            DatasetSpec::Higgs => 2,
        }
    }

    /// Generates `n_records` rows of this dataset with the given seed.
    pub fn generate(self, n_records: usize, seed: u64) -> Dataset {
        match self {
            DatasetSpec::Iris => Dataset::iris(n_records, seed),
            DatasetSpec::Higgs => Dataset::higgs(n_records, seed),
        }
    }

    /// Both paper datasets, in figure order.
    pub fn all() -> [DatasetSpec; 2] {
        [DatasetSpec::Iris, DatasetSpec::Higgs]
    }
}

/// A labeled classification dataset: a feature frame plus class labels.
///
/// # Example
///
/// ```
/// use mlscore_data::Dataset;
///
/// let higgs = Dataset::higgs(500, 7);
/// assert_eq!(higgs.frame().n_features(), 28);
/// assert!(higgs.labels().iter().all(|&c| c < 2));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    name: String,
    frame: TabularFrame,
    labels: Vec<u32>,
    n_classes: u32,
}

impl Dataset {
    /// Builds a dataset from parts.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::LabelMismatch`] if labels and rows disagree.
    pub fn new(
        name: impl Into<String>,
        frame: TabularFrame,
        labels: Vec<u32>,
        n_classes: u32,
    ) -> Result<Self, DataError> {
        if frame.n_rows() != labels.len() {
            return Err(DataError::LabelMismatch {
                rows: frame.n_rows(),
                labels: labels.len(),
            });
        }
        Ok(Self {
            name: name.into(),
            frame,
            labels,
            n_classes,
        })
    }

    /// Synthetic IRIS-like data: Gaussian clusters per class around the
    /// published per-class feature means, replicated/cycled to `n_records`
    /// the way the paper replicated the 150-sample original to 1M.
    pub fn iris(n_records: usize, seed: u64) -> Dataset {
        iris::generate(n_records, seed)
    }

    /// Synthetic HIGGS-like data: 21 low-level kinematic features plus 7
    /// derived high-level features, labeled by a noisy nonlinear rule.
    pub fn higgs(n_records: usize, seed: u64) -> Dataset {
        higgs::generate(n_records, seed)
    }

    /// Dataset name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The feature frame.
    pub fn frame(&self) -> &TabularFrame {
        &self.frame
    }

    /// Class labels, one per row.
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Number of classes.
    pub fn n_classes(&self) -> u32 {
        self.n_classes
    }

    /// A dataset of the first `n` rows.
    pub fn head(&self, n: usize) -> Dataset {
        let rows = n.min(self.frame.n_rows());
        Dataset {
            name: self.name.clone(),
            frame: self.frame.head(rows),
            labels: self.labels[..rows].to_vec(),
            n_classes: self.n_classes,
        }
    }

    /// Replaces the frame with its min-max normalized version (labels are
    /// unchanged). Normalized features line up with the `[0, 1)` thresholds
    /// of `RandomForest::synthetic_full` (in `mlscore-forest`)
    /// so synthetic models exercise diverse paths.
    pub fn normalized(&self) -> Dataset {
        Dataset {
            name: self.name.clone(),
            frame: self.frame.normalized(),
            labels: self.labels.clone(),
            n_classes: self.n_classes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_metadata_matches_paper() {
        assert_eq!(DatasetSpec::Iris.n_features(), 4);
        assert_eq!(DatasetSpec::Iris.n_classes(), 3);
        assert_eq!(DatasetSpec::Higgs.n_features(), 28);
        assert_eq!(DatasetSpec::Higgs.n_classes(), 2);
        assert_eq!(DatasetSpec::Iris.name(), "IRIS");
        assert_eq!(DatasetSpec::all().len(), 2);
    }

    #[test]
    fn spec_generate_dispatches() {
        let d = DatasetSpec::Higgs.generate(10, 3);
        assert_eq!(d.frame().n_features(), 28);
        assert_eq!(d.name(), "HIGGS");
    }

    #[test]
    fn new_validates_labels() {
        let frame = TabularFrame::from_rows(vec![0.0; 6], 3).unwrap();
        assert!(matches!(
            Dataset::new("x", frame, vec![0], 2),
            Err(DataError::LabelMismatch { rows: 2, labels: 1 })
        ));
    }

    #[test]
    fn head_truncates_labels_too() {
        let d = Dataset::iris(50, 1);
        let h = d.head(10);
        assert_eq!(h.frame().n_rows(), 10);
        assert_eq!(h.labels().len(), 10);
    }

    #[test]
    fn normalized_preserves_shape() {
        let d = Dataset::iris(20, 1).normalized();
        assert_eq!(d.frame().n_rows(), 20);
        for row in d.frame().rows() {
            for &v in row {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }
}
