//! Train/test splitting.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::dataset::Dataset;
use crate::error::DataError;
use crate::frame::TabularFrame;

/// Splits a dataset into shuffled (train, test) parts, with `train_fraction`
/// of rows in the training set.
///
/// # Errors
///
/// Returns [`DataError::BadSplitFraction`] unless `0 < train_fraction < 1`.
///
/// # Example
///
/// ```
/// use mlscore_data::{train_test_split, Dataset};
///
/// let d = Dataset::iris(100, 3);
/// let (train, test) = train_test_split(&d, 0.8, 42)?;
/// assert_eq!(train.frame().n_rows(), 80);
/// assert_eq!(test.frame().n_rows(), 20);
/// # Ok::<(), mlscore_data::DataError>(())
/// ```
pub fn train_test_split(
    dataset: &Dataset,
    train_fraction: f64,
    seed: u64,
) -> Result<(Dataset, Dataset), DataError> {
    if !(train_fraction > 0.0 && train_fraction < 1.0) {
        return Err(DataError::bad_split_fraction(train_fraction));
    }
    let n = dataset.frame().n_rows();
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut StdRng::seed_from_u64(seed));
    let n_train = ((n as f64) * train_fraction).round() as usize;
    let build = |indices: &[usize]| -> Dataset {
        let f = dataset.frame().n_features();
        let mut data = Vec::with_capacity(indices.len() * f);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            data.extend_from_slice(dataset.frame().row(i));
            labels.push(dataset.labels()[i]);
        }
        let frame = TabularFrame::from_rows(data, f).expect("shape preserved");
        Dataset::new(dataset.name(), frame, labels, dataset.n_classes()).expect("labels match rows")
    };
    Ok((build(&order[..n_train]), build(&order[n_train..])))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_partitions_rows() {
        let d = Dataset::higgs(50, 5);
        let (train, test) = train_test_split(&d, 0.7, 1).unwrap();
        assert_eq!(train.frame().n_rows(), 35);
        assert_eq!(test.frame().n_rows(), 15);
        assert_eq!(train.n_classes(), 2);
    }

    #[test]
    fn split_is_deterministic() {
        let d = Dataset::iris(30, 2);
        let (a, _) = train_test_split(&d, 0.5, 9).unwrap();
        let (b, _) = train_test_split(&d, 0.5, 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_degenerate_fractions() {
        let d = Dataset::iris(10, 2);
        for bad in [0.0, 1.0, -0.5, 1.5, f64::NAN] {
            assert!(train_test_split(&d, bad, 0).is_err(), "fraction {bad}");
        }
    }

    #[test]
    fn split_rows_come_from_source() {
        let d = Dataset::iris(20, 8);
        let (train, test) = train_test_split(&d, 0.5, 3).unwrap();
        let source: Vec<&[f32]> = d.frame().rows().collect();
        for row in train.frame().rows().chain(test.frame().rows()) {
            assert!(source.contains(&row));
        }
    }
}
