//! DBMS↔ML integration modes (§IV-E).
//!
//! The paper observes that the application-level overheads — Python process
//! invocation and the "transparent" SQL↔Python data copy — are *software*
//! overheads determined by how the scoring pipeline is integrated with the
//! DBMS, and that "a tighter integration of the ML scoring functionality
//! within the DBMS would reduce a lot of the application overheads", citing
//! in-engine approaches like `PREDICT` \[7\] and Raven \[5\]. This module makes
//! that future-work discussion quantitative: three integration modes that
//! rescale the pipeline-stage costs.

use serde::{Deserialize, Serialize};

use mlscore_sim::{Bandwidth, SimDuration};

use crate::params::PipelineParams;

/// How the scoring runtime is coupled to the DBMS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IntegrationMode {
    /// The paper's measured setup: a fresh external Python process per
    /// query, with row-oriented data marshaling across the process
    /// boundary.
    ExternalProcess,
    /// A resident (pre-warmed, pooled) external runtime: no process launch
    /// on the query path, but data still crosses the process boundary.
    ResidentRuntime,
    /// Scoring compiled into the query engine (`PREDICT`-style): no
    /// process, no marshaling — data is handed over by reference within
    /// the engine's memory, leaving only a columnar conversion cost.
    InEngine,
}

impl IntegrationMode {
    /// All modes, loosest to tightest coupling.
    pub fn all() -> [IntegrationMode; 3] {
        [
            IntegrationMode::ExternalProcess,
            IntegrationMode::ResidentRuntime,
            IntegrationMode::InEngine,
        ]
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            IntegrationMode::ExternalProcess => "external-process",
            IntegrationMode::ResidentRuntime => "resident-runtime",
            IntegrationMode::InEngine => "in-engine",
        }
    }

    /// Pipeline-stage costs under this integration mode, derived from the
    /// measured external-process baseline.
    pub fn params(self) -> PipelineParams {
        let base = PipelineParams::default();
        match self {
            IntegrationMode::ExternalProcess => base,
            IntegrationMode::ResidentRuntime => PipelineParams {
                // The pool answers in the time of an IPC round trip.
                python_invocation: SimDuration::from_millis(2.0),
                // Session/model caches keep deserialization warm.
                model_deserialize_fixed: SimDuration::from_millis(1.0),
                ..base
            },
            IntegrationMode::InEngine => PipelineParams {
                python_invocation: SimDuration::from_micros(50.0),
                // No process boundary: "transfer" degenerates to an
                // in-memory format conversion at memory bandwidth.
                transfer_setup: SimDuration::from_micros(20.0),
                per_row_marshal: SimDuration::from_nanos(40.0),
                per_result_marshal: SimDuration::from_nanos(10.0),
                marshal_bandwidth: Bandwidth::from_gb_per_sec(20.0),
                model_deserialize_fixed: SimDuration::from_millis(1.0),
                ..base
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tighter_integration_is_strictly_cheaper() {
        // 1M HIGGS-width rows in, 1M predictions out.
        let rows = 1_000_000u64;
        let bytes = rows * 112;
        let mut prev: Option<SimDuration> = None;
        for mode in IntegrationMode::all() {
            let p = mode.params();
            let cost =
                p.python_invocation + p.marshal_time(rows, bytes) + p.marshal_results_time(rows);
            if let Some(prev) = prev {
                assert!(
                    cost < prev,
                    "{} should be cheaper than the looser mode",
                    mode.name()
                );
            }
            prev = Some(cost);
        }
    }

    #[test]
    fn external_process_matches_measured_defaults() {
        assert_eq!(
            IntegrationMode::ExternalProcess.params(),
            PipelineParams::default()
        );
    }

    #[test]
    fn in_engine_removes_the_marshaling_wall() {
        // The paper's Fig. 11 wall: ~14 s of data transfer at 1M records.
        let external = IntegrationMode::ExternalProcess.params();
        let engine = IntegrationMode::InEngine.params();
        let rows = 1_000_000u64;
        let ext = external.marshal_time(rows, rows * 112);
        let eng = engine.marshal_time(rows, rows * 112);
        assert!(ext.as_secs() > 5.0, "external marshal {ext}");
        assert!(eng.as_millis() < 100.0, "in-engine marshal {eng}");
    }

    #[test]
    fn names_and_order() {
        let names: Vec<_> = IntegrationMode::all().iter().map(|m| m.name()).collect();
        assert_eq!(
            names,
            vec!["external-process", "resident-runtime", "in-engine"]
        );
    }
}
