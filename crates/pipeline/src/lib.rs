//! The end-to-end DBMS analytics + scoring pipeline (Fig. 2), timed per
//! Fig. 11.
//!
//! A T-SQL query invokes a stored procedure with a user Python script. The
//! DBMS launches an external Python process, copies the model bundle and
//! the input records to it, the script deserializes the model, prepares the
//! data, scores (on the CPU or via an accelerator backend), and returns a
//! results DataFrame. Every stage is *functional* here — the bundle really
//! is parsed, the backend really scores — while stage times come from
//! calibrated models (see DESIGN.md §2: stage identities and scaling are
//! what Fig. 11 depends on, not SQL Server internals).
//!
//! # Example
//!
//! ```
//! use mlscore_backend::SklearnCpu;
//! use mlscore_data::Dataset;
//! use mlscore_forest::{ForestConfig, ModelBundle, RandomForest};
//! use mlscore_pipeline::QueryPipeline;
//!
//! let forest = RandomForest::synthetic_full(
//!     &ForestConfig::classification(8, 4, 3).with_depth(6),
//!     2,
//! );
//! let bundle = ModelBundle::serialize(&forest);
//! let data = Dataset::iris(200, 7).normalized();
//! let pipeline = QueryPipeline::new(SklearnCpu::with_threads(4));
//! let run = pipeline.execute(&bundle, data.frame())?;
//! assert_eq!(run.predictions.len(), 200);
//! assert!(!run.breakdown.is_empty());
//! # Ok::<(), mlscore_pipeline::PipelineError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod concurrency;
pub mod error;
pub mod integration;
pub mod params;
pub mod query;

pub use concurrency::{
    consolidate, consolidate_cards, AcceleratorResources, ConsolidationReport, HostResources,
};
pub use error::PipelineError;
pub use integration::IntegrationMode;
pub use params::PipelineParams;
pub use query::{QueryPipeline, QueryRun};
