//! The query pipeline: functional execution plus the Fig. 11 breakdown.

use std::sync::Arc;

use mlscore_backend::{ArtifactCache, BackendError, CacheOutcome, PrepareTiming, ScoringBackend};
use mlscore_data::TabularFrame;
use mlscore_forest::{ModelBundle, ModelStats, Predictions};
use mlscore_sim::{SimInstant, Stage, TimingBreakdown};
use mlscore_telemetry::{Scope, Tracer};

use crate::error::PipelineError;
use crate::params::PipelineParams;

/// Result of running one T-SQL scoring query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRun {
    /// The predictions returned to the DBMS.
    pub predictions: Predictions,
    /// End-to-end breakdown in Fig. 11's stages. The entire backend-side
    /// scoring path (offload overheads included) is folded into
    /// [`Stage::Scoring`].
    pub breakdown: TimingBreakdown,
    /// The backend's own scoring-time breakdown (the Fig. 7 quantity).
    pub scoring_breakdown: TimingBreakdown,
    /// Whether the compiled model came from the artifact cache
    /// ([`CacheOutcome::Bypass`] when the pipeline has no cache).
    pub cache: CacheOutcome,
}

impl QueryRun {
    /// Total end-to-end query time.
    pub fn total(&self) -> mlscore_sim::SimDuration {
        self.breakdown.total()
    }
}

/// A T-SQL analytics query with ML scoring over a pluggable backend.
#[derive(Debug, Clone)]
pub struct QueryPipeline<B> {
    backend: B,
    params: PipelineParams,
    cache: Option<Arc<ArtifactCache>>,
}

impl<B: ScoringBackend> QueryPipeline<B> {
    /// A pipeline with default (paper-calibrated) stage costs.
    pub fn new(backend: B) -> Self {
        Self::with_params(backend, PipelineParams::default())
    }

    /// A pipeline with explicit stage costs.
    pub fn with_params(backend: B, params: PipelineParams) -> Self {
        Self {
            backend,
            params,
            cache: None,
        }
    }

    /// Attaches an artifact cache: repeated queries against byte-identical
    /// bundles skip deserialize + lower (the warm path). Without a cache
    /// every execution compiles inline and behaves exactly as before.
    pub fn with_cache(mut self, cache: Arc<ArtifactCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The scoring backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// The stage-cost parameters.
    pub fn params(&self) -> &PipelineParams {
        &self.params
    }

    /// The attached artifact cache, if any.
    pub fn cache(&self) -> Option<&Arc<ArtifactCache>> {
        self.cache.as_ref()
    }

    /// Executes the query: deserializes the model bundle (really), scores
    /// the records on the backend (really), and assembles the Fig. 11
    /// end-to-end breakdown (modelled).
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Model`] for an unparseable bundle and
    /// [`PipelineError::Backend`] when the backend rejects the request
    /// (unsupported model) or the frame width mismatches.
    pub fn execute(
        &self,
        bundle: &ModelBundle,
        frame: &TabularFrame,
    ) -> Result<QueryRun, PipelineError> {
        self.execute_traced(bundle, frame, &Tracer::disabled(), SimInstant::ZERO)
    }

    /// Like [`QueryPipeline::execute`], but also records the end-to-end
    /// timeline on `tracer`: one [`Scope::Query`] span per Fig. 11 stage on
    /// the pipeline's query lane, with the backend's [`Scope::Offload`]
    /// spans nested inside the `Scoring` span's interval. Folding the
    /// recorded `Query` spans reproduces `breakdown` exactly; folding the
    /// `Offload` spans reproduces `scoring_breakdown` exactly. CPU backends
    /// additionally record measured per-worker `Detail` spans (ignored by
    /// both folds) showing real executor-pool occupancy.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`QueryPipeline::execute`].
    pub fn execute_traced(
        &self,
        bundle: &ModelBundle,
        frame: &TabularFrame,
        tracer: &Tracer,
        start: SimInstant,
    ) -> Result<QueryRun, PipelineError> {
        // Phase 1 — compile (or fetch): deserialize + supports + lower,
        // skipped entirely on an artifact-cache hit.
        let (model, outcome, timing) = match &self.cache {
            Some(cache) => cache
                .get_or_prepare_timed(&self.backend, bundle)
                .map_err(lift)?,
            None => {
                let (model, timing) =
                    mlscore_backend::compile_timed(&self.backend, bundle).map_err(lift)?;
                (model, CacheOutcome::Bypass, timing)
            }
        };
        let stats = *model.stats();
        let model_bytes = model.model_bytes() as u64;
        let n_records = frame.n_rows() as u64;
        let warm = outcome == CacheOutcome::Hit;
        let t_scoring = self.scoring_start(&stats, model_bytes, n_records, start, warm);
        // Phase 2 — score the prepared model. Real execution: worker
        // occupancy is recorded as Detail spans anchored at the scoring
        // span's simulated start, so the Perfetto view shows measured pool
        // activity under the modelled timeline.
        let predictions = self
            .backend
            .score_prepared_traced(&model, frame, tracer, t_scoring)?;
        let scoring_breakdown = self
            .backend
            .estimate_prepared_traced(&model, n_records, tracer, t_scoring);
        let breakdown =
            self.assemble_sized(&stats, model_bytes, n_records, &scoring_breakdown, warm);
        if tracer.is_enabled() {
            if !warm {
                self.record_compile_spans(tracer, start, model_bytes, n_records, &stats, timing);
            }
            self.record_query_spans(
                tracer,
                start,
                &stats,
                model_bytes,
                n_records,
                &scoring_breakdown,
                warm,
            );
        }
        Ok(QueryRun {
            predictions,
            breakdown,
            scoring_breakdown,
            cache: outcome,
        })
    }

    /// Estimates the end-to-end breakdown without functional execution —
    /// used for sweeps at record counts too large to score for real.
    pub fn estimate(
        &self,
        stats: &ModelStats,
        model_bytes: u64,
        n_records: u64,
    ) -> TimingBreakdown {
        self.estimate_traced(
            stats,
            model_bytes,
            n_records,
            &Tracer::disabled(),
            SimInstant::ZERO,
        )
    }

    /// Like [`QueryPipeline::estimate`], but records the same spans as
    /// [`QueryPipeline::execute_traced`].
    pub fn estimate_traced(
        &self,
        stats: &ModelStats,
        model_bytes: u64,
        n_records: u64,
        tracer: &Tracer,
        start: SimInstant,
    ) -> TimingBreakdown {
        self.estimate_inner(stats, model_bytes, n_records, tracer, start, false)
    }

    /// Estimates the *warm* end-to-end breakdown: the model is already
    /// compiled and cache-resident, so the bundle is not marshalled and
    /// model pre-processing collapses to a cache lookup.
    pub fn estimate_warm(
        &self,
        stats: &ModelStats,
        model_bytes: u64,
        n_records: u64,
    ) -> TimingBreakdown {
        self.estimate_warm_traced(
            stats,
            model_bytes,
            n_records,
            &Tracer::disabled(),
            SimInstant::ZERO,
        )
    }

    /// Like [`QueryPipeline::estimate_warm`], but records the warm-path
    /// `Query` spans.
    pub fn estimate_warm_traced(
        &self,
        stats: &ModelStats,
        model_bytes: u64,
        n_records: u64,
        tracer: &Tracer,
        start: SimInstant,
    ) -> TimingBreakdown {
        self.estimate_inner(stats, model_bytes, n_records, tracer, start, true)
    }

    fn estimate_inner(
        &self,
        stats: &ModelStats,
        model_bytes: u64,
        n_records: u64,
        tracer: &Tracer,
        start: SimInstant,
        warm: bool,
    ) -> TimingBreakdown {
        let t_scoring = self.scoring_start(stats, model_bytes, n_records, start, warm);
        let scoring = self
            .backend
            .estimate_traced(stats, n_records, tracer, t_scoring);
        let b = self.assemble_sized(stats, model_bytes, n_records, &scoring, warm);
        if tracer.is_enabled() {
            self.record_query_spans(tracer, start, stats, model_bytes, n_records, &scoring, warm);
        }
        b
    }

    /// The simulated instant at which the backend scoring call begins:
    /// after Python invocation, inbound marshalling, and both
    /// pre-processing stages. The chained additions here mirror the span
    /// chain in `record_query_spans`, so the two stay bit-identical. On the
    /// warm path the bundle is not marshalled and model pre-processing is a
    /// cache probe.
    fn scoring_start(
        &self,
        stats: &ModelStats,
        model_bytes: u64,
        n_records: u64,
        start: SimInstant,
        warm: bool,
    ) -> SimInstant {
        let p = &self.params;
        let data_bytes = n_records * stats.row_bytes() as u64;
        let inbound_bytes = if warm {
            data_bytes
        } else {
            data_bytes + model_bytes
        };
        let model_prep = if warm {
            p.cache_lookup
        } else {
            p.model_preprocess_time(model_bytes)
        };
        start
            + p.python_invocation
            + p.marshal_time(n_records, inbound_bytes)
            + model_prep
            + p.data_preprocess_per_byte * data_bytes as f64
    }

    /// Records the cold-path compile spans ([`Scope::Compile`]): the
    /// *measured* wall-clock of deserialize + lower, mapped 1 ns ↦ 1 ns
    /// onto the simulated timeline alongside the modelled
    /// model-pre-processing stage. A separate scope keeps them out of the
    /// `Query` fold, so cold breakdowns stay bit-identical with or without
    /// tracing.
    fn record_compile_spans(
        &self,
        tracer: &Tracer,
        start: SimInstant,
        model_bytes: u64,
        n_records: u64,
        stats: &ModelStats,
        timing: PrepareTiming,
    ) {
        let p = &self.params;
        let data_bytes = n_records * stats.row_bytes() as u64;
        let t = start + p.python_invocation + p.marshal_time(n_records, data_bytes + model_bytes);
        let t = tracer
            .span("deserialize bundle", t)
            .stage(Stage::ModelPreprocessing)
            .scope(Scope::Compile)
            .track("pipeline", "compile")
            .meta("model_bytes", model_bytes.to_string())
            .finish_after(timing.deserialize);
        tracer
            .span("lower model", t)
            .stage(Stage::ModelPreprocessing)
            .scope(Scope::Compile)
            .track("pipeline", "compile")
            .meta("backend", self.backend.name())
            .finish_after(timing.lower);
    }

    /// Records one `Query` span per Fig. 11 stage. The outbound marshalling
    /// span is recorded *after* the scoring span (it happens later on the
    /// timeline), which still folds `DataTransfer` in the same
    /// inbound-then-outbound order as `assemble_sized`'s single add.
    #[allow(clippy::too_many_arguments)]
    fn record_query_spans(
        &self,
        tracer: &Tracer,
        start: SimInstant,
        stats: &ModelStats,
        model_bytes: u64,
        n_records: u64,
        scoring: &TimingBreakdown,
        warm: bool,
    ) {
        let p = &self.params;
        let data_bytes = n_records * stats.row_bytes() as u64;
        let inbound_bytes = if warm {
            data_bytes
        } else {
            data_bytes + model_bytes
        };
        let t = tracer
            .span("python invocation", start)
            .stage(Stage::PythonInvocation)
            .scope(Scope::Query)
            .track("pipeline", "query")
            .finish_after(p.python_invocation);
        let t = tracer
            .span(
                if warm {
                    "marshal records"
                } else {
                    "marshal model + records"
                },
                t,
            )
            .stage(Stage::DataTransfer)
            .scope(Scope::Query)
            .track("pipeline", "query")
            .meta("bytes", inbound_bytes.to_string())
            .finish_after(p.marshal_time(n_records, inbound_bytes));
        let t = if warm {
            tracer
                .span("artifact cache hit", t)
                .stage(Stage::ModelPreprocessing)
                .scope(Scope::Query)
                .track("pipeline", "query")
                .meta("model_bytes", model_bytes.to_string())
                .finish_after(p.cache_lookup)
        } else {
            tracer
                .span("model deserialization", t)
                .stage(Stage::ModelPreprocessing)
                .scope(Scope::Query)
                .track("pipeline", "query")
                .meta("model_bytes", model_bytes.to_string())
                .finish_after(p.model_preprocess_time(model_bytes))
        };
        let t = tracer
            .span("data preprocessing", t)
            .stage(Stage::DataPreprocessing)
            .scope(Scope::Query)
            .track("pipeline", "query")
            .finish_after(p.data_preprocess_per_byte * data_bytes as f64);
        let t = tracer
            .span("scoring", t)
            .stage(Stage::Scoring)
            .scope(Scope::Query)
            .track("pipeline", "query")
            .meta("backend", self.backend.name())
            .meta("records", n_records.to_string())
            .finish_after(scoring.total());
        let t = tracer
            .span("marshal results", t)
            .stage(Stage::DataTransfer)
            .scope(Scope::Query)
            .track("pipeline", "query")
            .finish_after(p.marshal_results_time(n_records));
        tracer
            .span("post-processing", t)
            .stage(Stage::PostProcessing)
            .scope(Scope::Query)
            .track("pipeline", "query")
            .finish_after(p.postprocess_per_record * n_records as f64);
    }

    fn assemble_sized(
        &self,
        stats: &ModelStats,
        model_bytes: u64,
        n_records: u64,
        scoring: &TimingBreakdown,
        warm: bool,
    ) -> TimingBreakdown {
        let p = &self.params;
        let data_bytes = n_records * stats.row_bytes() as u64;
        // SQL -> Python: records, plus the model bundle on the cold path;
        // Python -> SQL: one prediction per record (4 bytes each).
        let inbound_bytes = if warm {
            data_bytes
        } else {
            data_bytes + model_bytes
        };
        let model_prep = if warm {
            p.cache_lookup
        } else {
            p.model_preprocess_time(model_bytes)
        };
        let mut b = TimingBreakdown::new();
        b.add(Stage::PythonInvocation, p.python_invocation);
        b.add(
            Stage::DataTransfer,
            p.marshal_time(n_records, inbound_bytes) + p.marshal_results_time(n_records),
        );
        b.add(Stage::ModelPreprocessing, model_prep);
        b.add(
            Stage::DataPreprocessing,
            p.data_preprocess_per_byte * data_bytes as f64,
        );
        b.add(Stage::Scoring, scoring.total());
        b.add(
            Stage::PostProcessing,
            p.postprocess_per_record * n_records as f64,
        );
        b
    }
}

/// Routes a compile-phase [`BackendError`] to the pipeline error that the
/// pre-artifact code paths produced: deserialization failures were
/// [`PipelineError::Model`] (they happened before the backend was involved),
/// everything else is the backend's fault.
fn lift(e: BackendError) -> PipelineError {
    match e {
        BackendError::Forest(e) => PipelineError::Model(e),
        other => PipelineError::Backend(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlscore_backend::{OnnxCpu, SklearnCpu};
    use mlscore_data::Dataset;
    use mlscore_forest::{ForestConfig, RandomForest};

    fn setup(n_trees: usize, depth: usize) -> (ModelBundle, Dataset, RandomForest) {
        let forest = RandomForest::synthetic_full(
            &ForestConfig::classification(n_trees, 4, 3).with_depth(depth),
            7,
        );
        let bundle = ModelBundle::serialize(&forest);
        (bundle, Dataset::iris(300, 2).normalized(), forest)
    }

    #[test]
    fn functional_execution_returns_reference_predictions() {
        let (bundle, data, forest) = setup(10, 6);
        let pipeline = QueryPipeline::new(SklearnCpu::with_threads(4));
        let run = pipeline.execute(&bundle, data.frame()).unwrap();
        assert_eq!(
            run.predictions,
            forest.predict_batch(data.frame().as_slice())
        );
    }

    #[test]
    fn breakdown_contains_all_fig11_stages() {
        let (bundle, data, _) = setup(4, 5);
        let pipeline = QueryPipeline::new(OnnxCpu::single_thread());
        let run = pipeline.execute(&bundle, data.frame()).unwrap();
        for stage in Stage::query_breakdown_order() {
            assert!(
                !run.breakdown.get(stage).is_zero(),
                "stage {stage} missing from breakdown"
            );
        }
        assert!(run.total() > run.scoring_breakdown.total());
    }

    #[test]
    fn small_queries_are_dominated_by_python_invocation() {
        // Fig. 11: for one record and a one-tree model, Python invocation
        // and model pre-processing dominate.
        let forest =
            RandomForest::synthetic_full(&ForestConfig::classification(1, 4, 3).with_depth(6), 1);
        let stats = ModelStats::of(&forest);
        let bundle = ModelBundle::serialize(&forest);
        let pipeline = QueryPipeline::new(OnnxCpu::single_thread());
        let b = pipeline.estimate(&stats, bundle.len() as u64, 1);
        assert_eq!(b.dominant().unwrap().0, Stage::PythonInvocation);
    }

    #[test]
    fn corrupt_bundle_fails_in_model_preprocessing() {
        let (_, data, _) = setup(1, 3);
        let bundle = ModelBundle::from_bytes(bytes::Bytes::from_static(b"garbage"));
        let pipeline = QueryPipeline::new(SklearnCpu::with_threads(2));
        assert!(matches!(
            pipeline.execute(&bundle, data.frame()),
            Err(PipelineError::Model(_))
        ));
    }

    #[test]
    fn width_mismatch_fails_in_backend() {
        let (bundle, _, _) = setup(1, 3);
        let wrong = TabularFrame::from_rows(vec![0.0; 6], 2).unwrap();
        let pipeline = QueryPipeline::new(SklearnCpu::with_threads(2));
        assert!(matches!(
            pipeline.execute(&bundle, &wrong),
            Err(PipelineError::Backend(_))
        ));
    }

    #[test]
    fn traced_execute_reconstructs_both_scopes() {
        let (bundle, data, _) = setup(6, 5);
        let pipeline = QueryPipeline::new(SklearnCpu::with_threads(4));
        let tracer = Tracer::new();
        let run = pipeline
            .execute_traced(&bundle, data.frame(), &tracer, SimInstant::ZERO)
            .unwrap();
        assert_eq!(run, pipeline.execute(&bundle, data.frame()).unwrap());
        let trace = tracer.take();
        assert_eq!(trace.breakdown(Scope::Query), run.breakdown);
        assert_eq!(trace.breakdown(Scope::Offload), run.scoring_breakdown);
    }

    #[test]
    fn traced_offload_spans_nest_inside_scoring_span() {
        let (bundle, data, _) = setup(6, 5);
        let pipeline = QueryPipeline::new(OnnxCpu::paper_52th());
        let tracer = Tracer::new();
        pipeline
            .execute_traced(&bundle, data.frame(), &tracer, SimInstant::ZERO)
            .unwrap();
        let trace = tracer.take();
        let scoring = trace
            .events()
            .iter()
            .find(|e| e.scope == Scope::Query && e.name == "scoring")
            .unwrap();
        // Bit-exactness is promised for breakdown folds, not instants: the
        // chained span ends can drift from `start + total()` by an ulp, so
        // nesting is asserted to a 1 ns tolerance.
        let slack = mlscore_sim::SimDuration::from_nanos(1.0);
        for ev in trace.events() {
            if ev.scope == Scope::Offload {
                assert!(
                    ev.start + slack >= scoring.start,
                    "{} starts early",
                    ev.name
                );
                assert!(ev.end() <= scoring.end() + slack, "{} ends late", ev.name);
            }
        }
    }

    #[test]
    fn traced_execute_records_measured_worker_detail() {
        let (bundle, data, _) = setup(6, 5);
        let pipeline = QueryPipeline::new(SklearnCpu::with_threads(4));
        let tracer = Tracer::new();
        pipeline
            .execute_traced(&bundle, data.frame(), &tracer, SimInstant::ZERO)
            .unwrap();
        let trace = tracer.take();
        let workers = trace
            .events()
            .iter()
            .filter(|e| e.scope == Scope::Detail && e.name.starts_with("exec worker"))
            .count();
        assert!(workers >= 1, "expected measured pool-worker spans");
    }

    #[test]
    fn traced_estimate_matches_untraced() {
        let (bundle, _, forest) = setup(4, 6);
        let stats = ModelStats::of(&forest);
        let pipeline = QueryPipeline::new(SklearnCpu::paper_default());
        let tracer = Tracer::new();
        let traced = pipeline.estimate_traced(
            &stats,
            bundle.len() as u64,
            1_000_000,
            &tracer,
            SimInstant::ZERO,
        );
        assert_eq!(
            traced,
            pipeline.estimate(&stats, bundle.len() as u64, 1_000_000)
        );
        assert_eq!(tracer.take().breakdown(Scope::Query), traced);
    }

    #[test]
    fn cached_execute_hits_and_scores_identically() {
        let (bundle, data, forest) = setup(8, 6);
        let cache = Arc::new(mlscore_backend::ArtifactCache::new(4));
        let pipeline = QueryPipeline::new(OnnxCpu::single_thread()).with_cache(Arc::clone(&cache));
        let cold = pipeline.execute(&bundle, data.frame()).unwrap();
        let warm = pipeline.execute(&bundle, data.frame()).unwrap();
        assert_eq!(cold.cache, CacheOutcome::Miss);
        assert_eq!(warm.cache, CacheOutcome::Hit);
        assert_eq!(warm.predictions, cold.predictions);
        assert_eq!(
            warm.predictions,
            forest.predict_batch(data.frame().as_slice())
        );
        // The backend-side scoring breakdown is unaffected by the cache...
        assert_eq!(warm.scoring_breakdown, cold.scoring_breakdown);
        // ...but the end-to-end path skips the bundle marshal and collapses
        // model pre-processing to a cache probe.
        assert!(warm.total() < cold.total());
        assert_eq!(
            warm.breakdown.get(Stage::ModelPreprocessing),
            pipeline.params().cache_lookup
        );
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn cold_miss_breakdown_is_bit_identical_to_bypass() {
        let (bundle, data, _) = setup(6, 5);
        let uncached = QueryPipeline::new(OnnxCpu::single_thread());
        let cached = QueryPipeline::new(OnnxCpu::single_thread())
            .with_cache(Arc::new(mlscore_backend::ArtifactCache::new(4)));
        let bypass = uncached.execute(&bundle, data.frame()).unwrap();
        let miss = cached.execute(&bundle, data.frame()).unwrap();
        assert_eq!(bypass.cache, CacheOutcome::Bypass);
        assert_eq!(miss.cache, CacheOutcome::Miss);
        assert_eq!(miss.breakdown, bypass.breakdown);
        assert_eq!(miss.scoring_breakdown, bypass.scoring_breakdown);
        assert_eq!(miss.predictions, bypass.predictions);
    }

    #[test]
    fn compile_spans_are_recorded_cold_only() {
        let (bundle, data, _) = setup(6, 5);
        let pipeline = QueryPipeline::new(SklearnCpu::with_threads(2))
            .with_cache(Arc::new(mlscore_backend::ArtifactCache::new(4)));

        let tracer = Tracer::new();
        pipeline
            .execute_traced(&bundle, data.frame(), &tracer, SimInstant::ZERO)
            .unwrap();
        let cold = tracer.take();
        let compile_names: Vec<_> = cold
            .events()
            .iter()
            .filter(|e| e.scope == Scope::Compile)
            .map(|e| e.name.as_str())
            .collect();
        assert_eq!(compile_names, ["deserialize bundle", "lower model"]);
        assert!(cold
            .events()
            .iter()
            .any(|e| e.name == "marshal model + records"));

        let tracer = Tracer::new();
        let warm = pipeline
            .execute_traced(&bundle, data.frame(), &tracer, SimInstant::ZERO)
            .unwrap();
        assert_eq!(warm.cache, CacheOutcome::Hit);
        let trace = tracer.take();
        assert!(
            !trace.events().iter().any(|e| e.scope == Scope::Compile),
            "warm queries must not re-compile"
        );
        assert!(trace
            .events()
            .iter()
            .any(|e| e.name == "artifact cache hit"));
        assert!(trace.events().iter().any(|e| e.name == "marshal records"));
        assert!(!trace
            .events()
            .iter()
            .any(|e| e.name == "model deserialization"));
        // The warm Query fold still reconstructs the warm breakdown exactly.
        assert_eq!(trace.breakdown(Scope::Query), warm.breakdown);
        assert_eq!(trace.breakdown(Scope::Offload), warm.scoring_breakdown);
    }

    #[test]
    fn warm_estimate_matches_warm_execute_breakdown() {
        let (bundle, data, forest) = setup(6, 5);
        let pipeline = QueryPipeline::new(OnnxCpu::single_thread())
            .with_cache(Arc::new(mlscore_backend::ArtifactCache::new(4)));
        pipeline.execute(&bundle, data.frame()).unwrap();
        let warm = pipeline.execute(&bundle, data.frame()).unwrap();
        let est = pipeline.estimate_warm(
            &ModelStats::of(&forest),
            bundle.len() as u64,
            data.frame().n_rows() as u64,
        );
        assert_eq!(warm.breakdown, est);
        let cold_est = pipeline.estimate(
            &ModelStats::of(&forest),
            bundle.len() as u64,
            data.frame().n_rows() as u64,
        );
        assert!(est.total() < cold_est.total());
    }

    #[test]
    fn estimate_matches_execute_breakdown() {
        let (bundle, data, forest) = setup(6, 5);
        let pipeline = QueryPipeline::new(SklearnCpu::with_threads(4));
        let run = pipeline.execute(&bundle, data.frame()).unwrap();
        let est = pipeline.estimate(
            &ModelStats::of(&forest),
            bundle.len() as u64,
            data.frame().n_rows() as u64,
        );
        assert_eq!(run.breakdown, est);
    }
}
