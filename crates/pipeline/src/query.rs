//! The query pipeline: functional execution plus the Fig. 11 breakdown.

use std::sync::Arc;

use mlscore_backend::{
    ArtifactCache, BackendError, CacheOutcome, PrepareTiming, ScoringBackend, StreamChunk,
};
use mlscore_data::{RecordStream, TabularFrame};
use mlscore_forest::{ModelBundle, ModelStats, Predictions};
use mlscore_sim::{SimInstant, Stage, TimingBreakdown};
use mlscore_telemetry::{Scope, Tracer};

use crate::error::PipelineError;
use crate::params::PipelineParams;

/// Result of running one T-SQL scoring query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRun {
    /// The predictions returned to the DBMS.
    pub predictions: Predictions,
    /// End-to-end breakdown in Fig. 11's stages. The entire backend-side
    /// scoring path (offload overheads included) is folded into
    /// [`Stage::Scoring`].
    pub breakdown: TimingBreakdown,
    /// The backend's own scoring-time breakdown (the Fig. 7 quantity).
    pub scoring_breakdown: TimingBreakdown,
    /// Whether the compiled model came from the artifact cache
    /// ([`CacheOutcome::Bypass`] when the pipeline has no cache).
    pub cache: CacheOutcome,
}

impl QueryRun {
    /// Total end-to-end query time.
    pub fn total(&self) -> mlscore_sim::SimDuration {
        self.breakdown.total()
    }
}

/// A T-SQL analytics query with ML scoring over a pluggable backend.
#[derive(Debug, Clone)]
pub struct QueryPipeline<B> {
    backend: B,
    params: PipelineParams,
    cache: Option<Arc<ArtifactCache>>,
}

impl<B: ScoringBackend> QueryPipeline<B> {
    /// A pipeline with default (paper-calibrated) stage costs.
    pub fn new(backend: B) -> Self {
        Self::with_params(backend, PipelineParams::default())
    }

    /// A pipeline with explicit stage costs.
    pub fn with_params(backend: B, params: PipelineParams) -> Self {
        Self {
            backend,
            params,
            cache: None,
        }
    }

    /// Attaches an artifact cache: repeated queries against byte-identical
    /// bundles skip deserialize + lower (the warm path). Without a cache
    /// every execution compiles inline and behaves exactly as before.
    pub fn with_cache(mut self, cache: Arc<ArtifactCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The scoring backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// The stage-cost parameters.
    pub fn params(&self) -> &PipelineParams {
        &self.params
    }

    /// The attached artifact cache, if any.
    pub fn cache(&self) -> Option<&Arc<ArtifactCache>> {
        self.cache.as_ref()
    }

    /// Executes the query: deserializes the model bundle (really), scores
    /// the records on the backend (really), and assembles the Fig. 11
    /// end-to-end breakdown (modelled).
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Model`] for an unparseable bundle and
    /// [`PipelineError::Backend`] when the backend rejects the request
    /// (unsupported model) or the frame width mismatches.
    pub fn execute(
        &self,
        bundle: &ModelBundle,
        frame: &TabularFrame,
    ) -> Result<QueryRun, PipelineError> {
        self.execute_traced(bundle, frame, &Tracer::disabled(), SimInstant::ZERO)
    }

    /// Like [`QueryPipeline::execute`], but also records the end-to-end
    /// timeline on `tracer`: one [`Scope::Query`] span per Fig. 11 stage on
    /// the pipeline's query lane, with the backend's [`Scope::Offload`]
    /// spans nested inside the `Scoring` span's interval. Folding the
    /// recorded `Query` spans reproduces `breakdown` exactly; folding the
    /// `Offload` spans reproduces `scoring_breakdown` exactly. CPU backends
    /// additionally record measured per-worker `Detail` spans (ignored by
    /// both folds) showing real executor-pool occupancy.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`QueryPipeline::execute`].
    pub fn execute_traced(
        &self,
        bundle: &ModelBundle,
        frame: &TabularFrame,
        tracer: &Tracer,
        start: SimInstant,
    ) -> Result<QueryRun, PipelineError> {
        // Phase 1 — compile (or fetch): deserialize + supports + lower,
        // skipped entirely on an artifact-cache hit.
        let (model, outcome, timing) = match &self.cache {
            Some(cache) => cache
                .get_or_prepare_timed(&self.backend, bundle)
                .map_err(lift)?,
            None => {
                let (model, timing) =
                    mlscore_backend::compile_timed(&self.backend, bundle).map_err(lift)?;
                (model, CacheOutcome::Bypass, timing)
            }
        };
        let stats = *model.stats();
        let model_bytes = model.model_bytes() as u64;
        let n_records = frame.n_rows() as u64;
        let warm = outcome == CacheOutcome::Hit;
        let t_scoring = self.scoring_start(&stats, model_bytes, n_records, start, warm);
        // Phase 2 — score the prepared model. Real execution: worker
        // occupancy is recorded as Detail spans anchored at the scoring
        // span's simulated start, so the Perfetto view shows measured pool
        // activity under the modelled timeline.
        let predictions = self
            .backend
            .score_prepared_traced(&model, frame, tracer, t_scoring)?;
        let scoring_breakdown = self
            .backend
            .estimate_prepared_traced(&model, n_records, tracer, t_scoring);
        let breakdown =
            self.assemble_sized(&stats, model_bytes, n_records, &scoring_breakdown, warm);
        if tracer.is_enabled() {
            if !warm {
                let data_bytes = n_records * stats.row_bytes() as u64;
                let t_compile = start
                    + self.params.python_invocation
                    + self
                        .params
                        .marshal_time(n_records, data_bytes + model_bytes);
                self.record_compile_spans(tracer, t_compile, model_bytes, timing);
            }
            self.record_query_spans(
                tracer,
                start,
                &stats,
                model_bytes,
                n_records,
                &scoring_breakdown,
                warm,
            );
        }
        Ok(QueryRun {
            predictions,
            breakdown,
            scoring_breakdown,
            cache: outcome,
        })
    }

    /// Estimates the end-to-end breakdown without functional execution —
    /// used for sweeps at record counts too large to score for real.
    pub fn estimate(
        &self,
        stats: &ModelStats,
        model_bytes: u64,
        n_records: u64,
    ) -> TimingBreakdown {
        self.estimate_traced(
            stats,
            model_bytes,
            n_records,
            &Tracer::disabled(),
            SimInstant::ZERO,
        )
    }

    /// Like [`QueryPipeline::estimate`], but records the same spans as
    /// [`QueryPipeline::execute_traced`].
    pub fn estimate_traced(
        &self,
        stats: &ModelStats,
        model_bytes: u64,
        n_records: u64,
        tracer: &Tracer,
        start: SimInstant,
    ) -> TimingBreakdown {
        self.estimate_inner(stats, model_bytes, n_records, tracer, start, false)
    }

    /// Estimates the *warm* end-to-end breakdown: the model is already
    /// compiled and cache-resident, so the bundle is not marshalled and
    /// model pre-processing collapses to a cache lookup.
    pub fn estimate_warm(
        &self,
        stats: &ModelStats,
        model_bytes: u64,
        n_records: u64,
    ) -> TimingBreakdown {
        self.estimate_warm_traced(
            stats,
            model_bytes,
            n_records,
            &Tracer::disabled(),
            SimInstant::ZERO,
        )
    }

    /// Like [`QueryPipeline::estimate_warm`], but records the warm-path
    /// `Query` spans.
    pub fn estimate_warm_traced(
        &self,
        stats: &ModelStats,
        model_bytes: u64,
        n_records: u64,
        tracer: &Tracer,
        start: SimInstant,
    ) -> TimingBreakdown {
        self.estimate_inner(stats, model_bytes, n_records, tracer, start, true)
    }

    /// Executes the query over the *fused* scan→featurize→score path: the
    /// backend pulls cache-sized chunks straight off `stream` (scoring each
    /// one as it lands) instead of receiving a marshalled, pre-processed
    /// copy of the whole batch.
    ///
    /// The returned breakdown therefore charges **no** Python invocation,
    /// no inbound/outbound marshal, and no separate data-pre-processing
    /// stage — only model pre-processing (a cache probe when warm), a small
    /// per-chunk handoff under [`Stage::DataTransfer`], scoring, and
    /// post-processing. Predictions are bit-exact with
    /// [`QueryPipeline::execute`] over the equivalent materialized frame.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`QueryPipeline::execute`].
    pub fn execute_fused(
        &self,
        bundle: &ModelBundle,
        stream: &mut dyn RecordStream,
    ) -> Result<QueryRun, PipelineError> {
        self.execute_fused_traced(bundle, stream, &Tracer::disabled(), SimInstant::ZERO)
    }

    /// Like [`QueryPipeline::execute_fused`], but records the fused
    /// timeline on `tracer`: one [`Scope::Query`] span per charged stage
    /// (folding them reproduces `breakdown` exactly), the backend's
    /// [`Scope::Offload`] spans nested inside the scoring interval, and one
    /// `"fused chunk"` [`Scope::Detail`] span per pulled chunk (ignored by
    /// both folds) showing how rows streamed through the kernel.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`QueryPipeline::execute`].
    pub fn execute_fused_traced(
        &self,
        bundle: &ModelBundle,
        stream: &mut dyn RecordStream,
        tracer: &Tracer,
        start: SimInstant,
    ) -> Result<QueryRun, PipelineError> {
        // Phase 1 — compile (or fetch), exactly as on the staged path.
        let (model, outcome, timing) = match &self.cache {
            Some(cache) => cache
                .get_or_prepare_timed(&self.backend, bundle)
                .map_err(lift)?,
            None => {
                let (model, timing) =
                    mlscore_backend::compile_timed(&self.backend, bundle).map_err(lift)?;
                (model, CacheOutcome::Bypass, timing)
            }
        };
        let warm = outcome == CacheOutcome::Hit;
        let model_bytes = model.model_bytes() as u64;
        // Phase 2 — drain the stream through the backend's chunked scorer.
        let out = self.backend.score_prepared_stream(&model, stream)?;
        let n_records = out.rows as u64;
        let t_scoring = self.fused_scoring_start(start, out.chunks.len(), model_bytes, warm);
        let scoring_breakdown = self
            .backend
            .estimate_prepared_traced(&model, n_records, tracer, t_scoring);
        let breakdown = self.assemble_fused(
            model_bytes,
            n_records,
            out.chunks.len(),
            &scoring_breakdown,
            warm,
        );
        if tracer.is_enabled() {
            if !warm {
                // The fused path has no Python launch or inbound marshal:
                // compile starts immediately.
                self.record_compile_spans(tracer, start, model_bytes, timing);
            }
            self.record_fused_query_spans(
                tracer,
                start,
                model_bytes,
                n_records,
                &out.chunks,
                &scoring_breakdown,
                warm,
            );
        }
        Ok(QueryRun {
            predictions: out.predictions,
            breakdown,
            scoring_breakdown,
            cache: outcome,
        })
    }

    /// Estimates the cold fused breakdown without functional execution,
    /// for a stream of `n_records` pulled in chunks of `chunk_rows`.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_rows` is zero.
    pub fn estimate_fused(
        &self,
        stats: &ModelStats,
        model_bytes: u64,
        n_records: u64,
        chunk_rows: usize,
    ) -> TimingBreakdown {
        self.estimate_fused_traced(
            stats,
            model_bytes,
            n_records,
            chunk_rows,
            &Tracer::disabled(),
            SimInstant::ZERO,
        )
    }

    /// Like [`QueryPipeline::estimate_fused`], but records the fused
    /// `Query` spans plus synthesized per-chunk `"fused chunk"` detail.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_rows` is zero.
    pub fn estimate_fused_traced(
        &self,
        stats: &ModelStats,
        model_bytes: u64,
        n_records: u64,
        chunk_rows: usize,
        tracer: &Tracer,
        start: SimInstant,
    ) -> TimingBreakdown {
        self.estimate_fused_inner(
            stats,
            model_bytes,
            n_records,
            chunk_rows,
            tracer,
            start,
            false,
        )
    }

    /// Estimates the *warm* fused breakdown: the model is cache-resident,
    /// so model pre-processing collapses to a cache probe and the query is
    /// pure handoff + scoring + post-processing.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_rows` is zero.
    pub fn estimate_fused_warm(
        &self,
        stats: &ModelStats,
        model_bytes: u64,
        n_records: u64,
        chunk_rows: usize,
    ) -> TimingBreakdown {
        self.estimate_fused_warm_traced(
            stats,
            model_bytes,
            n_records,
            chunk_rows,
            &Tracer::disabled(),
            SimInstant::ZERO,
        )
    }

    /// Like [`QueryPipeline::estimate_fused_warm`], but records the warm
    /// fused `Query` spans plus synthesized per-chunk detail.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_rows` is zero.
    pub fn estimate_fused_warm_traced(
        &self,
        stats: &ModelStats,
        model_bytes: u64,
        n_records: u64,
        chunk_rows: usize,
        tracer: &Tracer,
        start: SimInstant,
    ) -> TimingBreakdown {
        self.estimate_fused_inner(
            stats,
            model_bytes,
            n_records,
            chunk_rows,
            tracer,
            start,
            true,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn estimate_fused_inner(
        &self,
        stats: &ModelStats,
        model_bytes: u64,
        n_records: u64,
        chunk_rows: usize,
        tracer: &Tracer,
        start: SimInstant,
        warm: bool,
    ) -> TimingBreakdown {
        assert!(chunk_rows > 0, "chunk_rows must be positive");
        let n_chunks = (n_records as usize).div_ceil(chunk_rows);
        let t_scoring = self.fused_scoring_start(start, n_chunks, model_bytes, warm);
        let scoring = self
            .backend
            .estimate_traced(stats, n_records, tracer, t_scoring);
        let b = self.assemble_fused(model_bytes, n_records, n_chunks, &scoring, warm);
        if tracer.is_enabled() {
            let chunks = synth_chunks(n_records as usize, chunk_rows);
            self.record_fused_query_spans(
                tracer,
                start,
                model_bytes,
                n_records,
                &chunks,
                &scoring,
                warm,
            );
        }
        b
    }

    fn estimate_inner(
        &self,
        stats: &ModelStats,
        model_bytes: u64,
        n_records: u64,
        tracer: &Tracer,
        start: SimInstant,
        warm: bool,
    ) -> TimingBreakdown {
        let t_scoring = self.scoring_start(stats, model_bytes, n_records, start, warm);
        let scoring = self
            .backend
            .estimate_traced(stats, n_records, tracer, t_scoring);
        let b = self.assemble_sized(stats, model_bytes, n_records, &scoring, warm);
        if tracer.is_enabled() {
            self.record_query_spans(tracer, start, stats, model_bytes, n_records, &scoring, warm);
        }
        b
    }

    /// The simulated instant at which the backend scoring call begins:
    /// after Python invocation, inbound marshalling, and both
    /// pre-processing stages. The chained additions here mirror the span
    /// chain in `record_query_spans`, so the two stay bit-identical. On the
    /// warm path the bundle is not marshalled and model pre-processing is a
    /// cache probe.
    fn scoring_start(
        &self,
        stats: &ModelStats,
        model_bytes: u64,
        n_records: u64,
        start: SimInstant,
        warm: bool,
    ) -> SimInstant {
        let p = &self.params;
        let data_bytes = n_records * stats.row_bytes() as u64;
        let inbound_bytes = if warm {
            data_bytes
        } else {
            data_bytes + model_bytes
        };
        let model_prep = if warm {
            p.cache_lookup
        } else {
            p.model_preprocess_time(model_bytes)
        };
        start
            + p.python_invocation
            + p.marshal_time(n_records, inbound_bytes)
            + model_prep
            + p.data_preprocess_per_byte * data_bytes as f64
    }

    /// The simulated instant at which fused scoring begins: after model
    /// pre-processing (a cache probe when warm) and the per-chunk handoffs.
    /// Mirrors the span chain in `record_fused_query_spans` so the two stay
    /// bit-identical.
    fn fused_scoring_start(
        &self,
        start: SimInstant,
        n_chunks: usize,
        model_bytes: u64,
        warm: bool,
    ) -> SimInstant {
        let p = &self.params;
        let model_prep = if warm {
            p.cache_lookup
        } else {
            p.model_preprocess_time(model_bytes)
        };
        start + model_prep + p.chunk_handoff * n_chunks as f64
    }

    /// Assembles the fused breakdown: no Python invocation, no marshal, no
    /// separate data-pre-processing pass. `DataTransfer` carries only the
    /// per-chunk handoff cost.
    fn assemble_fused(
        &self,
        model_bytes: u64,
        n_records: u64,
        n_chunks: usize,
        scoring: &TimingBreakdown,
        warm: bool,
    ) -> TimingBreakdown {
        let p = &self.params;
        let model_prep = if warm {
            p.cache_lookup
        } else {
            p.model_preprocess_time(model_bytes)
        };
        let mut b = TimingBreakdown::new();
        b.add(Stage::ModelPreprocessing, model_prep);
        b.add(Stage::DataTransfer, p.chunk_handoff * n_chunks as f64);
        b.add(Stage::Scoring, scoring.total());
        b.add(
            Stage::PostProcessing,
            p.postprocess_per_record * n_records as f64,
        );
        b
    }

    /// Records the fused-path `Query` spans (their fold reproduces the
    /// fused breakdown exactly) plus one `"fused chunk"` [`Scope::Detail`]
    /// span per chunk, laid across the scoring interval proportionally to
    /// each chunk's row count.
    #[allow(clippy::too_many_arguments)]
    fn record_fused_query_spans(
        &self,
        tracer: &Tracer,
        start: SimInstant,
        model_bytes: u64,
        n_records: u64,
        chunks: &[StreamChunk],
        scoring: &TimingBreakdown,
        warm: bool,
    ) {
        let p = &self.params;
        let t = if warm {
            tracer
                .span("artifact cache hit", start)
                .stage(Stage::ModelPreprocessing)
                .scope(Scope::Query)
                .track("pipeline", "query")
                .meta("model_bytes", model_bytes.to_string())
                .finish_after(p.cache_lookup)
        } else {
            tracer
                .span("model deserialization", start)
                .stage(Stage::ModelPreprocessing)
                .scope(Scope::Query)
                .track("pipeline", "query")
                .meta("model_bytes", model_bytes.to_string())
                .finish_after(p.model_preprocess_time(model_bytes))
        };
        let t = tracer
            .span("chunk handoff", t)
            .stage(Stage::DataTransfer)
            .scope(Scope::Query)
            .track("pipeline", "query")
            .meta("chunks", chunks.len().to_string())
            .finish_after(p.chunk_handoff * chunks.len() as f64);
        let t_score = t;
        let t = tracer
            .span("scoring", t)
            .stage(Stage::Scoring)
            .scope(Scope::Query)
            .track("pipeline", "query")
            .meta("backend", self.backend.name())
            .meta("records", n_records.to_string())
            .meta("path", "fused")
            .finish_after(scoring.total());
        tracer
            .span("post-processing", t)
            .stage(Stage::PostProcessing)
            .scope(Scope::Query)
            .track("pipeline", "query")
            .finish_after(p.postprocess_per_record * n_records as f64);
        if n_records == 0 {
            return;
        }
        let mut done = 0u64;
        for (i, c) in chunks.iter().enumerate() {
            let at = t_score + scoring.total() * (done as f64 / n_records as f64);
            let dur = scoring.total() * (c.rows as f64 / n_records as f64);
            let mut span = tracer
                .span("fused chunk", at)
                .scope(Scope::Detail)
                .track("pipeline", "chunks")
                .meta("chunk", i.to_string())
                .meta("rows", c.rows.to_string());
            if let Some(kernel) = c.kernel {
                span = span.meta("kernel", kernel);
            }
            span.finish_after(dur);
            done += c.rows as u64;
        }
    }

    /// Records the cold-path compile spans ([`Scope::Compile`]): the
    /// *measured* wall-clock of deserialize + lower, mapped 1 ns ↦ 1 ns
    /// onto the simulated timeline alongside the modelled
    /// model-pre-processing stage, anchored at `t` (the instant model
    /// pre-processing begins on the caller's timeline). A separate scope
    /// keeps them out of the `Query` fold, so cold breakdowns stay
    /// bit-identical with or without tracing.
    fn record_compile_spans(
        &self,
        tracer: &Tracer,
        t: SimInstant,
        model_bytes: u64,
        timing: PrepareTiming,
    ) {
        let t = tracer
            .span("deserialize bundle", t)
            .stage(Stage::ModelPreprocessing)
            .scope(Scope::Compile)
            .track("pipeline", "compile")
            .meta("model_bytes", model_bytes.to_string())
            .finish_after(timing.deserialize);
        tracer
            .span("lower model", t)
            .stage(Stage::ModelPreprocessing)
            .scope(Scope::Compile)
            .track("pipeline", "compile")
            .meta("backend", self.backend.name())
            .finish_after(timing.lower);
    }

    /// Records one `Query` span per Fig. 11 stage. The outbound marshalling
    /// span is recorded *after* the scoring span (it happens later on the
    /// timeline), which still folds `DataTransfer` in the same
    /// inbound-then-outbound order as `assemble_sized`'s single add.
    #[allow(clippy::too_many_arguments)]
    fn record_query_spans(
        &self,
        tracer: &Tracer,
        start: SimInstant,
        stats: &ModelStats,
        model_bytes: u64,
        n_records: u64,
        scoring: &TimingBreakdown,
        warm: bool,
    ) {
        let p = &self.params;
        let data_bytes = n_records * stats.row_bytes() as u64;
        let inbound_bytes = if warm {
            data_bytes
        } else {
            data_bytes + model_bytes
        };
        let t = tracer
            .span("python invocation", start)
            .stage(Stage::PythonInvocation)
            .scope(Scope::Query)
            .track("pipeline", "query")
            .finish_after(p.python_invocation);
        let t = tracer
            .span(
                if warm {
                    "marshal records"
                } else {
                    "marshal model + records"
                },
                t,
            )
            .stage(Stage::DataTransfer)
            .scope(Scope::Query)
            .track("pipeline", "query")
            .meta("bytes", inbound_bytes.to_string())
            .finish_after(p.marshal_time(n_records, inbound_bytes));
        let t = if warm {
            tracer
                .span("artifact cache hit", t)
                .stage(Stage::ModelPreprocessing)
                .scope(Scope::Query)
                .track("pipeline", "query")
                .meta("model_bytes", model_bytes.to_string())
                .finish_after(p.cache_lookup)
        } else {
            tracer
                .span("model deserialization", t)
                .stage(Stage::ModelPreprocessing)
                .scope(Scope::Query)
                .track("pipeline", "query")
                .meta("model_bytes", model_bytes.to_string())
                .finish_after(p.model_preprocess_time(model_bytes))
        };
        let t = tracer
            .span("data preprocessing", t)
            .stage(Stage::DataPreprocessing)
            .scope(Scope::Query)
            .track("pipeline", "query")
            .finish_after(p.data_preprocess_per_byte * data_bytes as f64);
        let t = tracer
            .span("scoring", t)
            .stage(Stage::Scoring)
            .scope(Scope::Query)
            .track("pipeline", "query")
            .meta("backend", self.backend.name())
            .meta("records", n_records.to_string())
            .finish_after(scoring.total());
        let t = tracer
            .span("marshal results", t)
            .stage(Stage::DataTransfer)
            .scope(Scope::Query)
            .track("pipeline", "query")
            .finish_after(p.marshal_results_time(n_records));
        tracer
            .span("post-processing", t)
            .stage(Stage::PostProcessing)
            .scope(Scope::Query)
            .track("pipeline", "query")
            .finish_after(p.postprocess_per_record * n_records as f64);
    }

    fn assemble_sized(
        &self,
        stats: &ModelStats,
        model_bytes: u64,
        n_records: u64,
        scoring: &TimingBreakdown,
        warm: bool,
    ) -> TimingBreakdown {
        let p = &self.params;
        let data_bytes = n_records * stats.row_bytes() as u64;
        // SQL -> Python: records, plus the model bundle on the cold path;
        // Python -> SQL: one prediction per record (4 bytes each).
        let inbound_bytes = if warm {
            data_bytes
        } else {
            data_bytes + model_bytes
        };
        let model_prep = if warm {
            p.cache_lookup
        } else {
            p.model_preprocess_time(model_bytes)
        };
        let mut b = TimingBreakdown::new();
        b.add(Stage::PythonInvocation, p.python_invocation);
        b.add(
            Stage::DataTransfer,
            p.marshal_time(n_records, inbound_bytes) + p.marshal_results_time(n_records),
        );
        b.add(Stage::ModelPreprocessing, model_prep);
        b.add(
            Stage::DataPreprocessing,
            p.data_preprocess_per_byte * data_bytes as f64,
        );
        b.add(Stage::Scoring, scoring.total());
        b.add(
            Stage::PostProcessing,
            p.postprocess_per_record * n_records as f64,
        );
        b
    }
}

/// Synthesizes the chunk layout a scanner over `n_records` rows pulled
/// `chunk_rows` at a time would produce: full chunks plus a possibly short
/// tail. Used by the modelled (estimate-only) fused path.
fn synth_chunks(n_records: usize, chunk_rows: usize) -> Vec<StreamChunk> {
    let mut chunks = Vec::with_capacity(n_records.div_ceil(chunk_rows));
    let mut left = n_records;
    while left > 0 {
        let rows = left.min(chunk_rows);
        chunks.push(StreamChunk { rows, kernel: None });
        left -= rows;
    }
    chunks
}

/// Routes a compile-phase [`BackendError`] to the pipeline error that the
/// pre-artifact code paths produced: deserialization failures were
/// [`PipelineError::Model`] (they happened before the backend was involved),
/// everything else is the backend's fault.
fn lift(e: BackendError) -> PipelineError {
    match e {
        BackendError::Forest(e) => PipelineError::Model(e),
        other => PipelineError::Backend(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlscore_backend::{OnnxCpu, SklearnCpu};
    use mlscore_data::Dataset;
    use mlscore_forest::{ForestConfig, RandomForest};

    fn setup(n_trees: usize, depth: usize) -> (ModelBundle, Dataset, RandomForest) {
        let forest = RandomForest::synthetic_full(
            &ForestConfig::classification(n_trees, 4, 3).with_depth(depth),
            7,
        );
        let bundle = ModelBundle::serialize(&forest);
        (bundle, Dataset::iris(300, 2).normalized(), forest)
    }

    #[test]
    fn functional_execution_returns_reference_predictions() {
        let (bundle, data, forest) = setup(10, 6);
        let pipeline = QueryPipeline::new(SklearnCpu::with_threads(4));
        let run = pipeline.execute(&bundle, data.frame()).unwrap();
        assert_eq!(
            run.predictions,
            forest.predict_batch(data.frame().as_slice())
        );
    }

    #[test]
    fn breakdown_contains_all_fig11_stages() {
        let (bundle, data, _) = setup(4, 5);
        let pipeline = QueryPipeline::new(OnnxCpu::single_thread());
        let run = pipeline.execute(&bundle, data.frame()).unwrap();
        for stage in Stage::query_breakdown_order() {
            assert!(
                !run.breakdown.get(stage).is_zero(),
                "stage {stage} missing from breakdown"
            );
        }
        assert!(run.total() > run.scoring_breakdown.total());
    }

    #[test]
    fn small_queries_are_dominated_by_python_invocation() {
        // Fig. 11: for one record and a one-tree model, Python invocation
        // and model pre-processing dominate.
        let forest =
            RandomForest::synthetic_full(&ForestConfig::classification(1, 4, 3).with_depth(6), 1);
        let stats = ModelStats::of(&forest);
        let bundle = ModelBundle::serialize(&forest);
        let pipeline = QueryPipeline::new(OnnxCpu::single_thread());
        let b = pipeline.estimate(&stats, bundle.len() as u64, 1);
        assert_eq!(b.dominant().unwrap().0, Stage::PythonInvocation);
    }

    #[test]
    fn corrupt_bundle_fails_in_model_preprocessing() {
        let (_, data, _) = setup(1, 3);
        let bundle = ModelBundle::from_bytes(bytes::Bytes::from_static(b"garbage"));
        let pipeline = QueryPipeline::new(SklearnCpu::with_threads(2));
        assert!(matches!(
            pipeline.execute(&bundle, data.frame()),
            Err(PipelineError::Model(_))
        ));
    }

    #[test]
    fn width_mismatch_fails_in_backend() {
        let (bundle, _, _) = setup(1, 3);
        let wrong = TabularFrame::from_rows(vec![0.0; 6], 2).unwrap();
        let pipeline = QueryPipeline::new(SklearnCpu::with_threads(2));
        assert!(matches!(
            pipeline.execute(&bundle, &wrong),
            Err(PipelineError::Backend(_))
        ));
    }

    #[test]
    fn traced_execute_reconstructs_both_scopes() {
        let (bundle, data, _) = setup(6, 5);
        let pipeline = QueryPipeline::new(SklearnCpu::with_threads(4));
        let tracer = Tracer::new();
        let run = pipeline
            .execute_traced(&bundle, data.frame(), &tracer, SimInstant::ZERO)
            .unwrap();
        assert_eq!(run, pipeline.execute(&bundle, data.frame()).unwrap());
        let trace = tracer.take();
        assert_eq!(trace.breakdown(Scope::Query), run.breakdown);
        assert_eq!(trace.breakdown(Scope::Offload), run.scoring_breakdown);
    }

    #[test]
    fn traced_offload_spans_nest_inside_scoring_span() {
        let (bundle, data, _) = setup(6, 5);
        let pipeline = QueryPipeline::new(OnnxCpu::paper_52th());
        let tracer = Tracer::new();
        pipeline
            .execute_traced(&bundle, data.frame(), &tracer, SimInstant::ZERO)
            .unwrap();
        let trace = tracer.take();
        let scoring = trace
            .events()
            .iter()
            .find(|e| e.scope == Scope::Query && e.name == "scoring")
            .unwrap();
        // Bit-exactness is promised for breakdown folds, not instants: the
        // chained span ends can drift from `start + total()` by an ulp, so
        // nesting is asserted to a 1 ns tolerance.
        let slack = mlscore_sim::SimDuration::from_nanos(1.0);
        for ev in trace.events() {
            if ev.scope == Scope::Offload {
                assert!(
                    ev.start + slack >= scoring.start,
                    "{} starts early",
                    ev.name
                );
                assert!(ev.end() <= scoring.end() + slack, "{} ends late", ev.name);
            }
        }
    }

    #[test]
    fn traced_execute_records_measured_worker_detail() {
        let (bundle, data, _) = setup(6, 5);
        let pipeline = QueryPipeline::new(SklearnCpu::with_threads(4));
        let tracer = Tracer::new();
        pipeline
            .execute_traced(&bundle, data.frame(), &tracer, SimInstant::ZERO)
            .unwrap();
        let trace = tracer.take();
        let workers = trace
            .events()
            .iter()
            .filter(|e| e.scope == Scope::Detail && e.name.starts_with("exec worker"))
            .count();
        assert!(workers >= 1, "expected measured pool-worker spans");
    }

    #[test]
    fn traced_estimate_matches_untraced() {
        let (bundle, _, forest) = setup(4, 6);
        let stats = ModelStats::of(&forest);
        let pipeline = QueryPipeline::new(SklearnCpu::paper_default());
        let tracer = Tracer::new();
        let traced = pipeline.estimate_traced(
            &stats,
            bundle.len() as u64,
            1_000_000,
            &tracer,
            SimInstant::ZERO,
        );
        assert_eq!(
            traced,
            pipeline.estimate(&stats, bundle.len() as u64, 1_000_000)
        );
        assert_eq!(tracer.take().breakdown(Scope::Query), traced);
    }

    #[test]
    fn cached_execute_hits_and_scores_identically() {
        let (bundle, data, forest) = setup(8, 6);
        let cache = Arc::new(mlscore_backend::ArtifactCache::new(4));
        let pipeline = QueryPipeline::new(OnnxCpu::single_thread()).with_cache(Arc::clone(&cache));
        let cold = pipeline.execute(&bundle, data.frame()).unwrap();
        let warm = pipeline.execute(&bundle, data.frame()).unwrap();
        assert_eq!(cold.cache, CacheOutcome::Miss);
        assert_eq!(warm.cache, CacheOutcome::Hit);
        assert_eq!(warm.predictions, cold.predictions);
        assert_eq!(
            warm.predictions,
            forest.predict_batch(data.frame().as_slice())
        );
        // The backend-side scoring breakdown is unaffected by the cache...
        assert_eq!(warm.scoring_breakdown, cold.scoring_breakdown);
        // ...but the end-to-end path skips the bundle marshal and collapses
        // model pre-processing to a cache probe.
        assert!(warm.total() < cold.total());
        assert_eq!(
            warm.breakdown.get(Stage::ModelPreprocessing),
            pipeline.params().cache_lookup
        );
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn cold_miss_breakdown_is_bit_identical_to_bypass() {
        let (bundle, data, _) = setup(6, 5);
        let uncached = QueryPipeline::new(OnnxCpu::single_thread());
        let cached = QueryPipeline::new(OnnxCpu::single_thread())
            .with_cache(Arc::new(mlscore_backend::ArtifactCache::new(4)));
        let bypass = uncached.execute(&bundle, data.frame()).unwrap();
        let miss = cached.execute(&bundle, data.frame()).unwrap();
        assert_eq!(bypass.cache, CacheOutcome::Bypass);
        assert_eq!(miss.cache, CacheOutcome::Miss);
        assert_eq!(miss.breakdown, bypass.breakdown);
        assert_eq!(miss.scoring_breakdown, bypass.scoring_breakdown);
        assert_eq!(miss.predictions, bypass.predictions);
    }

    #[test]
    fn compile_spans_are_recorded_cold_only() {
        let (bundle, data, _) = setup(6, 5);
        let pipeline = QueryPipeline::new(SklearnCpu::with_threads(2))
            .with_cache(Arc::new(mlscore_backend::ArtifactCache::new(4)));

        let tracer = Tracer::new();
        pipeline
            .execute_traced(&bundle, data.frame(), &tracer, SimInstant::ZERO)
            .unwrap();
        let cold = tracer.take();
        let compile_names: Vec<_> = cold
            .events()
            .iter()
            .filter(|e| e.scope == Scope::Compile)
            .map(|e| e.name.as_str())
            .collect();
        assert_eq!(compile_names, ["deserialize bundle", "lower model"]);
        assert!(cold
            .events()
            .iter()
            .any(|e| e.name == "marshal model + records"));

        let tracer = Tracer::new();
        let warm = pipeline
            .execute_traced(&bundle, data.frame(), &tracer, SimInstant::ZERO)
            .unwrap();
        assert_eq!(warm.cache, CacheOutcome::Hit);
        let trace = tracer.take();
        assert!(
            !trace.events().iter().any(|e| e.scope == Scope::Compile),
            "warm queries must not re-compile"
        );
        assert!(trace
            .events()
            .iter()
            .any(|e| e.name == "artifact cache hit"));
        assert!(trace.events().iter().any(|e| e.name == "marshal records"));
        assert!(!trace
            .events()
            .iter()
            .any(|e| e.name == "model deserialization"));
        // The warm Query fold still reconstructs the warm breakdown exactly.
        assert_eq!(trace.breakdown(Scope::Query), warm.breakdown);
        assert_eq!(trace.breakdown(Scope::Offload), warm.scoring_breakdown);
    }

    #[test]
    fn warm_estimate_matches_warm_execute_breakdown() {
        let (bundle, data, forest) = setup(6, 5);
        let pipeline = QueryPipeline::new(OnnxCpu::single_thread())
            .with_cache(Arc::new(mlscore_backend::ArtifactCache::new(4)));
        pipeline.execute(&bundle, data.frame()).unwrap();
        let warm = pipeline.execute(&bundle, data.frame()).unwrap();
        let est = pipeline.estimate_warm(
            &ModelStats::of(&forest),
            bundle.len() as u64,
            data.frame().n_rows() as u64,
        );
        assert_eq!(warm.breakdown, est);
        let cold_est = pipeline.estimate(
            &ModelStats::of(&forest),
            bundle.len() as u64,
            data.frame().n_rows() as u64,
        );
        assert!(est.total() < cold_est.total());
    }

    #[test]
    fn fused_execute_matches_staged_predictions() {
        use mlscore_data::{FrameScanner, NormParams, NormalizeStream};
        let (bundle, data, forest) = setup(10, 6);
        let pipeline = QueryPipeline::new(SklearnCpu::with_threads(4));
        let staged = pipeline.execute(&bundle, data.frame()).unwrap();
        // Fused featurization: normalize per chunk off the raw frame, with
        // the params the staged path's whole-frame normalize would fit.
        let raw = Dataset::iris(300, 2);
        let params = NormParams::fit(raw.frame());
        let mut stream = NormalizeStream::new(FrameScanner::new(raw.frame(), 64), params);
        let fused = pipeline.execute_fused(&bundle, &mut stream).unwrap();
        assert_eq!(fused.predictions, staged.predictions);
        assert_eq!(
            fused.predictions,
            forest.predict_batch(data.frame().as_slice())
        );
        // The fused breakdown charges no Python launch and no marshal-sized
        // transfer — only per-chunk handoff.
        assert!(fused.breakdown.get(Stage::PythonInvocation).is_zero());
        assert!(fused.breakdown.get(Stage::DataPreprocessing).is_zero());
        // 300 rows in 64-row chunks = 5 pulls.
        assert_eq!(
            fused.breakdown.get(Stage::DataTransfer),
            pipeline.params().chunk_handoff * 5.0
        );
        assert!(fused.total() < staged.total());
    }

    #[test]
    fn fused_traced_folds_to_breakdown_and_records_chunk_detail() {
        use mlscore_data::FrameScanner;
        let (bundle, data, _) = setup(8, 6);
        let cache = Arc::new(mlscore_backend::ArtifactCache::new(4));
        let pipeline = QueryPipeline::new(OnnxCpu::with_threads(4)).with_cache(Arc::clone(&cache));
        // Warm the cache so the fused query runs the cache-resident path.
        pipeline.execute(&bundle, data.frame()).unwrap();

        let tracer = Tracer::new();
        let mut stream = FrameScanner::new(data.frame(), 64);
        let run = pipeline
            .execute_fused_traced(&bundle, &mut stream, &tracer, SimInstant::ZERO)
            .unwrap();
        assert_eq!(run.cache, CacheOutcome::Hit);
        let trace = tracer.take();
        // Query fold reproduces the fused breakdown; Offload fold the
        // backend's own scoring breakdown.
        assert_eq!(trace.breakdown(Scope::Query), run.breakdown);
        assert_eq!(trace.breakdown(Scope::Offload), run.scoring_breakdown);
        // One Detail span per pulled chunk, covering every record.
        let chunk_spans: Vec<_> = trace
            .events()
            .iter()
            .filter(|e| e.scope == Scope::Detail && e.name == "fused chunk")
            .collect();
        assert_eq!(chunk_spans.len(), 300usize.div_ceil(64));
        let scoring = trace
            .events()
            .iter()
            .find(|e| e.scope == Scope::Query && e.name == "scoring")
            .unwrap();
        assert!(
            scoring
                .metadata
                .iter()
                .any(|(k, v)| k == "path" && v == "fused"),
            "scoring span must be tagged with the fused path"
        );
        assert!(trace.events().iter().any(|e| e.name == "chunk handoff"));
        assert!(
            !trace.events().iter().any(|e| e.name.contains("marshal")),
            "fused path must not record marshal spans"
        );
    }

    #[test]
    fn fused_estimate_matches_fused_execute_breakdown() {
        use mlscore_data::FrameScanner;
        let (bundle, data, forest) = setup(6, 5);
        let cache = Arc::new(mlscore_backend::ArtifactCache::new(4));
        let pipeline = QueryPipeline::new(OnnxCpu::single_thread()).with_cache(Arc::clone(&cache));
        let stats = ModelStats::of(&forest);

        let mut stream = FrameScanner::new(data.frame(), 64);
        let cold = pipeline.execute_fused(&bundle, &mut stream).unwrap();
        assert_eq!(
            cold.breakdown,
            pipeline.estimate_fused(&stats, bundle.len() as u64, 300, 64)
        );

        let mut stream = FrameScanner::new(data.frame(), 64);
        let warm = pipeline.execute_fused(&bundle, &mut stream).unwrap();
        assert_eq!(warm.cache, CacheOutcome::Hit);
        assert_eq!(
            warm.breakdown,
            pipeline.estimate_fused_warm(&stats, bundle.len() as u64, 300, 64)
        );
        // Fused warm ≤ staged warm: the handoff never exceeds the marshal.
        assert!(
            pipeline
                .estimate_fused_warm(&stats, bundle.len() as u64, 300, 64)
                .total()
                < pipeline
                    .estimate_warm(&stats, bundle.len() as u64, 300)
                    .total()
        );
    }

    #[test]
    fn estimate_matches_execute_breakdown() {
        let (bundle, data, forest) = setup(6, 5);
        let pipeline = QueryPipeline::new(SklearnCpu::with_threads(4));
        let run = pipeline.execute(&bundle, data.frame()).unwrap();
        let est = pipeline.estimate(
            &ModelStats::of(&forest),
            bundle.len() as u64,
            data.frame().n_rows() as u64,
        );
        assert_eq!(run.breakdown, est);
    }
}
