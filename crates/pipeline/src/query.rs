//! The query pipeline: functional execution plus the Fig. 11 breakdown.

use mlscore_backend::{ScoringBackend, ScoringRequest};
use mlscore_data::TabularFrame;
use mlscore_forest::{ModelBundle, ModelStats, Predictions};
use mlscore_sim::{Stage, TimingBreakdown};

use crate::error::PipelineError;
use crate::params::PipelineParams;

/// Result of running one T-SQL scoring query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRun {
    /// The predictions returned to the DBMS.
    pub predictions: Predictions,
    /// End-to-end breakdown in Fig. 11's stages. The entire backend-side
    /// scoring path (offload overheads included) is folded into
    /// [`Stage::Scoring`].
    pub breakdown: TimingBreakdown,
    /// The backend's own scoring-time breakdown (the Fig. 7 quantity).
    pub scoring_breakdown: TimingBreakdown,
}

impl QueryRun {
    /// Total end-to-end query time.
    pub fn total(&self) -> mlscore_sim::SimDuration {
        self.breakdown.total()
    }
}

/// A T-SQL analytics query with ML scoring over a pluggable backend.
#[derive(Debug, Clone)]
pub struct QueryPipeline<B> {
    backend: B,
    params: PipelineParams,
}

impl<B: ScoringBackend> QueryPipeline<B> {
    /// A pipeline with default (paper-calibrated) stage costs.
    pub fn new(backend: B) -> Self {
        Self::with_params(backend, PipelineParams::default())
    }

    /// A pipeline with explicit stage costs.
    pub fn with_params(backend: B, params: PipelineParams) -> Self {
        Self { backend, params }
    }

    /// The scoring backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// The stage-cost parameters.
    pub fn params(&self) -> &PipelineParams {
        &self.params
    }

    /// Executes the query: deserializes the model bundle (really), scores
    /// the records on the backend (really), and assembles the Fig. 11
    /// end-to-end breakdown (modelled).
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Model`] for an unparseable bundle and
    /// [`PipelineError::Backend`] when the backend rejects the request
    /// (unsupported model) or the frame width mismatches.
    pub fn execute(
        &self,
        bundle: &ModelBundle,
        frame: &TabularFrame,
    ) -> Result<QueryRun, PipelineError> {
        let forest = bundle.deserialize()?;
        let stats = ModelStats::of(&forest);
        self.backend.supports(&stats)?;
        let request = ScoringRequest::new(&forest, frame)?;
        let predictions = self.backend.score(&request)?;
        let scoring_breakdown = self.backend.estimate(&stats, frame.n_rows() as u64);
        let breakdown =
            self.assemble(&stats, bundle.len() as u64, frame, &scoring_breakdown);
        Ok(QueryRun {
            predictions,
            breakdown,
            scoring_breakdown,
        })
    }

    /// Estimates the end-to-end breakdown without functional execution —
    /// used for sweeps at record counts too large to score for real.
    pub fn estimate(
        &self,
        stats: &ModelStats,
        model_bytes: u64,
        n_records: u64,
    ) -> TimingBreakdown {
        let scoring = self.backend.estimate(stats, n_records);
        self.assemble_sized(stats, model_bytes, n_records, &scoring)
    }

    fn assemble(
        &self,
        stats: &ModelStats,
        model_bytes: u64,
        frame: &TabularFrame,
        scoring: &TimingBreakdown,
    ) -> TimingBreakdown {
        self.assemble_sized(stats, model_bytes, frame.n_rows() as u64, scoring)
    }

    fn assemble_sized(
        &self,
        stats: &ModelStats,
        model_bytes: u64,
        n_records: u64,
        scoring: &TimingBreakdown,
    ) -> TimingBreakdown {
        let p = &self.params;
        let data_bytes = n_records * stats.row_bytes() as u64;
        let mut b = TimingBreakdown::new();
        b.add(Stage::PythonInvocation, p.python_invocation);
        // SQL -> Python: model bundle + records; Python -> SQL: one
        // prediction per record (4 bytes each).
        b.add(
            Stage::DataTransfer,
            p.marshal_time(n_records, data_bytes + model_bytes)
                + p.marshal_results_time(n_records),
        );
        b.add(Stage::ModelPreprocessing, p.model_preprocess_time(model_bytes));
        b.add(
            Stage::DataPreprocessing,
            p.data_preprocess_per_byte * data_bytes as f64,
        );
        b.add(Stage::Scoring, scoring.total());
        b.add(
            Stage::PostProcessing,
            p.postprocess_per_record * n_records as f64,
        );
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlscore_backend::{OnnxCpu, SklearnCpu};
    use mlscore_data::Dataset;
    use mlscore_forest::{ForestConfig, RandomForest};

    fn setup(n_trees: usize, depth: usize) -> (ModelBundle, Dataset, RandomForest) {
        let forest = RandomForest::synthetic_full(
            &ForestConfig::classification(n_trees, 4, 3).with_depth(depth),
            7,
        );
        let bundle = ModelBundle::serialize(&forest);
        (bundle, Dataset::iris(300, 2).normalized(), forest)
    }

    #[test]
    fn functional_execution_returns_reference_predictions() {
        let (bundle, data, forest) = setup(10, 6);
        let pipeline = QueryPipeline::new(SklearnCpu::with_threads(4));
        let run = pipeline.execute(&bundle, data.frame()).unwrap();
        assert_eq!(run.predictions, forest.predict_batch(data.frame().as_slice()));
    }

    #[test]
    fn breakdown_contains_all_fig11_stages() {
        let (bundle, data, _) = setup(4, 5);
        let pipeline = QueryPipeline::new(OnnxCpu::single_thread());
        let run = pipeline.execute(&bundle, data.frame()).unwrap();
        for stage in Stage::query_breakdown_order() {
            assert!(
                !run.breakdown.get(stage).is_zero(),
                "stage {stage} missing from breakdown"
            );
        }
        assert!(run.total() > run.scoring_breakdown.total());
    }

    #[test]
    fn small_queries_are_dominated_by_python_invocation() {
        // Fig. 11: for one record and a one-tree model, Python invocation
        // and model pre-processing dominate.
        let forest = RandomForest::synthetic_full(
            &ForestConfig::classification(1, 4, 3).with_depth(6),
            1,
        );
        let stats = ModelStats::of(&forest);
        let bundle = ModelBundle::serialize(&forest);
        let pipeline = QueryPipeline::new(OnnxCpu::single_thread());
        let b = pipeline.estimate(&stats, bundle.len() as u64, 1);
        assert_eq!(b.dominant().unwrap().0, Stage::PythonInvocation);
    }

    #[test]
    fn corrupt_bundle_fails_in_model_preprocessing() {
        let (_, data, _) = setup(1, 3);
        let bundle = ModelBundle::from_bytes(bytes::Bytes::from_static(b"garbage"));
        let pipeline = QueryPipeline::new(SklearnCpu::with_threads(2));
        assert!(matches!(
            pipeline.execute(&bundle, data.frame()),
            Err(PipelineError::Model(_))
        ));
    }

    #[test]
    fn width_mismatch_fails_in_backend() {
        let (bundle, _, _) = setup(1, 3);
        let wrong = TabularFrame::from_rows(vec![0.0; 6], 2).unwrap();
        let pipeline = QueryPipeline::new(SklearnCpu::with_threads(2));
        assert!(matches!(
            pipeline.execute(&bundle, &wrong),
            Err(PipelineError::Backend(_))
        ));
    }

    #[test]
    fn estimate_matches_execute_breakdown() {
        let (bundle, data, forest) = setup(6, 5);
        let pipeline = QueryPipeline::new(SklearnCpu::with_threads(4));
        let run = pipeline.execute(&bundle, data.frame()).unwrap();
        let est = pipeline.estimate(
            &ModelStats::of(&forest),
            bundle.len() as u64,
            data.frame().n_rows() as u64,
        );
        assert_eq!(run.breakdown, est);
    }
}
