//! The query pipeline: functional execution plus the Fig. 11 breakdown.

use mlscore_backend::{ScoringBackend, ScoringRequest};
use mlscore_data::TabularFrame;
use mlscore_forest::{ModelBundle, ModelStats, Predictions};
use mlscore_sim::{SimInstant, Stage, TimingBreakdown};
use mlscore_telemetry::{Scope, Tracer};

use crate::error::PipelineError;
use crate::params::PipelineParams;

/// Result of running one T-SQL scoring query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRun {
    /// The predictions returned to the DBMS.
    pub predictions: Predictions,
    /// End-to-end breakdown in Fig. 11's stages. The entire backend-side
    /// scoring path (offload overheads included) is folded into
    /// [`Stage::Scoring`].
    pub breakdown: TimingBreakdown,
    /// The backend's own scoring-time breakdown (the Fig. 7 quantity).
    pub scoring_breakdown: TimingBreakdown,
}

impl QueryRun {
    /// Total end-to-end query time.
    pub fn total(&self) -> mlscore_sim::SimDuration {
        self.breakdown.total()
    }
}

/// A T-SQL analytics query with ML scoring over a pluggable backend.
#[derive(Debug, Clone)]
pub struct QueryPipeline<B> {
    backend: B,
    params: PipelineParams,
}

impl<B: ScoringBackend> QueryPipeline<B> {
    /// A pipeline with default (paper-calibrated) stage costs.
    pub fn new(backend: B) -> Self {
        Self::with_params(backend, PipelineParams::default())
    }

    /// A pipeline with explicit stage costs.
    pub fn with_params(backend: B, params: PipelineParams) -> Self {
        Self { backend, params }
    }

    /// The scoring backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// The stage-cost parameters.
    pub fn params(&self) -> &PipelineParams {
        &self.params
    }

    /// Executes the query: deserializes the model bundle (really), scores
    /// the records on the backend (really), and assembles the Fig. 11
    /// end-to-end breakdown (modelled).
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Model`] for an unparseable bundle and
    /// [`PipelineError::Backend`] when the backend rejects the request
    /// (unsupported model) or the frame width mismatches.
    pub fn execute(
        &self,
        bundle: &ModelBundle,
        frame: &TabularFrame,
    ) -> Result<QueryRun, PipelineError> {
        self.execute_traced(bundle, frame, &Tracer::disabled(), SimInstant::ZERO)
    }

    /// Like [`QueryPipeline::execute`], but also records the end-to-end
    /// timeline on `tracer`: one [`Scope::Query`] span per Fig. 11 stage on
    /// the pipeline's query lane, with the backend's [`Scope::Offload`]
    /// spans nested inside the `Scoring` span's interval. Folding the
    /// recorded `Query` spans reproduces `breakdown` exactly; folding the
    /// `Offload` spans reproduces `scoring_breakdown` exactly. CPU backends
    /// additionally record measured per-worker `Detail` spans (ignored by
    /// both folds) showing real executor-pool occupancy.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`QueryPipeline::execute`].
    pub fn execute_traced(
        &self,
        bundle: &ModelBundle,
        frame: &TabularFrame,
        tracer: &Tracer,
        start: SimInstant,
    ) -> Result<QueryRun, PipelineError> {
        let forest = bundle.deserialize()?;
        let stats = ModelStats::of(&forest);
        self.backend.supports(&stats)?;
        let request = ScoringRequest::new(&forest, frame)?;
        let model_bytes = bundle.len() as u64;
        let n_records = frame.n_rows() as u64;
        let t_scoring = self.scoring_start(&stats, model_bytes, n_records, start);
        // Real execution: worker occupancy is recorded as Detail spans
        // anchored at the scoring span's simulated start, so the Perfetto
        // view shows measured pool activity under the modelled timeline.
        let predictions = self.backend.score_traced(&request, tracer, t_scoring)?;
        let scoring_breakdown = self
            .backend
            .estimate_traced(&stats, n_records, tracer, t_scoring);
        let breakdown = self.assemble_sized(&stats, model_bytes, n_records, &scoring_breakdown);
        if tracer.is_enabled() {
            self.record_query_spans(
                tracer,
                start,
                &stats,
                model_bytes,
                n_records,
                &scoring_breakdown,
            );
        }
        Ok(QueryRun {
            predictions,
            breakdown,
            scoring_breakdown,
        })
    }

    /// Estimates the end-to-end breakdown without functional execution —
    /// used for sweeps at record counts too large to score for real.
    pub fn estimate(
        &self,
        stats: &ModelStats,
        model_bytes: u64,
        n_records: u64,
    ) -> TimingBreakdown {
        self.estimate_traced(
            stats,
            model_bytes,
            n_records,
            &Tracer::disabled(),
            SimInstant::ZERO,
        )
    }

    /// Like [`QueryPipeline::estimate`], but records the same spans as
    /// [`QueryPipeline::execute_traced`].
    pub fn estimate_traced(
        &self,
        stats: &ModelStats,
        model_bytes: u64,
        n_records: u64,
        tracer: &Tracer,
        start: SimInstant,
    ) -> TimingBreakdown {
        let t_scoring = self.scoring_start(stats, model_bytes, n_records, start);
        let scoring = self
            .backend
            .estimate_traced(stats, n_records, tracer, t_scoring);
        let b = self.assemble_sized(stats, model_bytes, n_records, &scoring);
        if tracer.is_enabled() {
            self.record_query_spans(tracer, start, stats, model_bytes, n_records, &scoring);
        }
        b
    }

    /// The simulated instant at which the backend scoring call begins:
    /// after Python invocation, inbound marshalling, and both
    /// pre-processing stages. The chained additions here mirror the span
    /// chain in `record_query_spans`, so the two stay bit-identical.
    fn scoring_start(
        &self,
        stats: &ModelStats,
        model_bytes: u64,
        n_records: u64,
        start: SimInstant,
    ) -> SimInstant {
        let p = &self.params;
        let data_bytes = n_records * stats.row_bytes() as u64;
        start
            + p.python_invocation
            + p.marshal_time(n_records, data_bytes + model_bytes)
            + p.model_preprocess_time(model_bytes)
            + p.data_preprocess_per_byte * data_bytes as f64
    }

    /// Records one `Query` span per Fig. 11 stage. The outbound marshalling
    /// span is recorded *after* the scoring span (it happens later on the
    /// timeline), which still folds `DataTransfer` in the same
    /// inbound-then-outbound order as `assemble_sized`'s single add.
    fn record_query_spans(
        &self,
        tracer: &Tracer,
        start: SimInstant,
        stats: &ModelStats,
        model_bytes: u64,
        n_records: u64,
        scoring: &TimingBreakdown,
    ) {
        let p = &self.params;
        let data_bytes = n_records * stats.row_bytes() as u64;
        let t = tracer
            .span("python invocation", start)
            .stage(Stage::PythonInvocation)
            .scope(Scope::Query)
            .track("pipeline", "query")
            .finish_after(p.python_invocation);
        let t = tracer
            .span("marshal model + records", t)
            .stage(Stage::DataTransfer)
            .scope(Scope::Query)
            .track("pipeline", "query")
            .meta("bytes", (data_bytes + model_bytes).to_string())
            .finish_after(p.marshal_time(n_records, data_bytes + model_bytes));
        let t = tracer
            .span("model deserialization", t)
            .stage(Stage::ModelPreprocessing)
            .scope(Scope::Query)
            .track("pipeline", "query")
            .meta("model_bytes", model_bytes.to_string())
            .finish_after(p.model_preprocess_time(model_bytes));
        let t = tracer
            .span("data preprocessing", t)
            .stage(Stage::DataPreprocessing)
            .scope(Scope::Query)
            .track("pipeline", "query")
            .finish_after(p.data_preprocess_per_byte * data_bytes as f64);
        let t = tracer
            .span("scoring", t)
            .stage(Stage::Scoring)
            .scope(Scope::Query)
            .track("pipeline", "query")
            .meta("backend", self.backend.name())
            .meta("records", n_records.to_string())
            .finish_after(scoring.total());
        let t = tracer
            .span("marshal results", t)
            .stage(Stage::DataTransfer)
            .scope(Scope::Query)
            .track("pipeline", "query")
            .finish_after(p.marshal_results_time(n_records));
        tracer
            .span("post-processing", t)
            .stage(Stage::PostProcessing)
            .scope(Scope::Query)
            .track("pipeline", "query")
            .finish_after(p.postprocess_per_record * n_records as f64);
    }

    fn assemble_sized(
        &self,
        stats: &ModelStats,
        model_bytes: u64,
        n_records: u64,
        scoring: &TimingBreakdown,
    ) -> TimingBreakdown {
        let p = &self.params;
        let data_bytes = n_records * stats.row_bytes() as u64;
        let mut b = TimingBreakdown::new();
        b.add(Stage::PythonInvocation, p.python_invocation);
        // SQL -> Python: model bundle + records; Python -> SQL: one
        // prediction per record (4 bytes each).
        b.add(
            Stage::DataTransfer,
            p.marshal_time(n_records, data_bytes + model_bytes) + p.marshal_results_time(n_records),
        );
        b.add(
            Stage::ModelPreprocessing,
            p.model_preprocess_time(model_bytes),
        );
        b.add(
            Stage::DataPreprocessing,
            p.data_preprocess_per_byte * data_bytes as f64,
        );
        b.add(Stage::Scoring, scoring.total());
        b.add(
            Stage::PostProcessing,
            p.postprocess_per_record * n_records as f64,
        );
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlscore_backend::{OnnxCpu, SklearnCpu};
    use mlscore_data::Dataset;
    use mlscore_forest::{ForestConfig, RandomForest};

    fn setup(n_trees: usize, depth: usize) -> (ModelBundle, Dataset, RandomForest) {
        let forest = RandomForest::synthetic_full(
            &ForestConfig::classification(n_trees, 4, 3).with_depth(depth),
            7,
        );
        let bundle = ModelBundle::serialize(&forest);
        (bundle, Dataset::iris(300, 2).normalized(), forest)
    }

    #[test]
    fn functional_execution_returns_reference_predictions() {
        let (bundle, data, forest) = setup(10, 6);
        let pipeline = QueryPipeline::new(SklearnCpu::with_threads(4));
        let run = pipeline.execute(&bundle, data.frame()).unwrap();
        assert_eq!(
            run.predictions,
            forest.predict_batch(data.frame().as_slice())
        );
    }

    #[test]
    fn breakdown_contains_all_fig11_stages() {
        let (bundle, data, _) = setup(4, 5);
        let pipeline = QueryPipeline::new(OnnxCpu::single_thread());
        let run = pipeline.execute(&bundle, data.frame()).unwrap();
        for stage in Stage::query_breakdown_order() {
            assert!(
                !run.breakdown.get(stage).is_zero(),
                "stage {stage} missing from breakdown"
            );
        }
        assert!(run.total() > run.scoring_breakdown.total());
    }

    #[test]
    fn small_queries_are_dominated_by_python_invocation() {
        // Fig. 11: for one record and a one-tree model, Python invocation
        // and model pre-processing dominate.
        let forest =
            RandomForest::synthetic_full(&ForestConfig::classification(1, 4, 3).with_depth(6), 1);
        let stats = ModelStats::of(&forest);
        let bundle = ModelBundle::serialize(&forest);
        let pipeline = QueryPipeline::new(OnnxCpu::single_thread());
        let b = pipeline.estimate(&stats, bundle.len() as u64, 1);
        assert_eq!(b.dominant().unwrap().0, Stage::PythonInvocation);
    }

    #[test]
    fn corrupt_bundle_fails_in_model_preprocessing() {
        let (_, data, _) = setup(1, 3);
        let bundle = ModelBundle::from_bytes(bytes::Bytes::from_static(b"garbage"));
        let pipeline = QueryPipeline::new(SklearnCpu::with_threads(2));
        assert!(matches!(
            pipeline.execute(&bundle, data.frame()),
            Err(PipelineError::Model(_))
        ));
    }

    #[test]
    fn width_mismatch_fails_in_backend() {
        let (bundle, _, _) = setup(1, 3);
        let wrong = TabularFrame::from_rows(vec![0.0; 6], 2).unwrap();
        let pipeline = QueryPipeline::new(SklearnCpu::with_threads(2));
        assert!(matches!(
            pipeline.execute(&bundle, &wrong),
            Err(PipelineError::Backend(_))
        ));
    }

    #[test]
    fn traced_execute_reconstructs_both_scopes() {
        let (bundle, data, _) = setup(6, 5);
        let pipeline = QueryPipeline::new(SklearnCpu::with_threads(4));
        let tracer = Tracer::new();
        let run = pipeline
            .execute_traced(&bundle, data.frame(), &tracer, SimInstant::ZERO)
            .unwrap();
        assert_eq!(run, pipeline.execute(&bundle, data.frame()).unwrap());
        let trace = tracer.take();
        assert_eq!(trace.breakdown(Scope::Query), run.breakdown);
        assert_eq!(trace.breakdown(Scope::Offload), run.scoring_breakdown);
    }

    #[test]
    fn traced_offload_spans_nest_inside_scoring_span() {
        let (bundle, data, _) = setup(6, 5);
        let pipeline = QueryPipeline::new(OnnxCpu::paper_52th());
        let tracer = Tracer::new();
        pipeline
            .execute_traced(&bundle, data.frame(), &tracer, SimInstant::ZERO)
            .unwrap();
        let trace = tracer.take();
        let scoring = trace
            .events()
            .iter()
            .find(|e| e.scope == Scope::Query && e.name == "scoring")
            .unwrap();
        // Bit-exactness is promised for breakdown folds, not instants: the
        // chained span ends can drift from `start + total()` by an ulp, so
        // nesting is asserted to a 1 ns tolerance.
        let slack = mlscore_sim::SimDuration::from_nanos(1.0);
        for ev in trace.events() {
            if ev.scope == Scope::Offload {
                assert!(
                    ev.start + slack >= scoring.start,
                    "{} starts early",
                    ev.name
                );
                assert!(ev.end() <= scoring.end() + slack, "{} ends late", ev.name);
            }
        }
    }

    #[test]
    fn traced_execute_records_measured_worker_detail() {
        let (bundle, data, _) = setup(6, 5);
        let pipeline = QueryPipeline::new(SklearnCpu::with_threads(4));
        let tracer = Tracer::new();
        pipeline
            .execute_traced(&bundle, data.frame(), &tracer, SimInstant::ZERO)
            .unwrap();
        let trace = tracer.take();
        let workers = trace
            .events()
            .iter()
            .filter(|e| e.scope == Scope::Detail && e.name.starts_with("exec worker"))
            .count();
        assert!(workers >= 1, "expected measured pool-worker spans");
    }

    #[test]
    fn traced_estimate_matches_untraced() {
        let (bundle, _, forest) = setup(4, 6);
        let stats = ModelStats::of(&forest);
        let pipeline = QueryPipeline::new(SklearnCpu::paper_default());
        let tracer = Tracer::new();
        let traced = pipeline.estimate_traced(
            &stats,
            bundle.len() as u64,
            1_000_000,
            &tracer,
            SimInstant::ZERO,
        );
        assert_eq!(
            traced,
            pipeline.estimate(&stats, bundle.len() as u64, 1_000_000)
        );
        assert_eq!(tracer.take().breakdown(Scope::Query), traced);
    }

    #[test]
    fn estimate_matches_execute_breakdown() {
        let (bundle, data, forest) = setup(6, 5);
        let pipeline = QueryPipeline::new(SklearnCpu::with_threads(4));
        let run = pipeline.execute(&bundle, data.frame()).unwrap();
        let est = pipeline.estimate(
            &ModelStats::of(&forest),
            bundle.len() as u64,
            data.frame().n_rows() as u64,
        );
        assert_eq!(run.breakdown, est);
    }
}
