//! Pipeline error type.

use std::error::Error;
use std::fmt;

use mlscore_backend::BackendError;
use mlscore_forest::ForestError;

/// Errors from executing the query pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PipelineError {
    /// Model deserialization failed (corrupt bundle in the model table).
    Model(ForestError),
    /// The scoring backend rejected or failed the request.
    Backend(BackendError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Model(e) => write!(f, "model pre-processing failed: {e}"),
            PipelineError::Backend(e) => write!(f, "scoring failed: {e}"),
        }
    }
}

impl Error for PipelineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PipelineError::Model(e) => Some(e),
            PipelineError::Backend(e) => Some(e),
        }
    }
}

impl From<ForestError> for PipelineError {
    fn from(e: ForestError) -> Self {
        PipelineError::Model(e)
    }
}

impl From<BackendError> for PipelineError {
    fn from(e: BackendError) -> Self {
        PipelineError::Backend(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_chains() {
        let e: PipelineError = ForestError::BadMagic.into();
        assert!(format!("{e}").contains("magic"));
        assert!(e.source().is_some());
        let e: PipelineError = BackendError::unsupported("x", "y").into();
        assert!(format!("{e}").contains("scoring failed"));
    }
}
