//! Multi-query consolidation analysis.
//!
//! The paper motivates accelerators partly by noting they "free up
//! processor cores for other work". This module makes that claim
//! measurable: given `q` concurrent scoring queries, it compares the
//! makespan of running everything on the host against offloading the
//! scoring stage to a single accelerator card (which serializes scoring
//! across queries while the host handles the pipeline stages in parallel).

use serde::{Deserialize, Serialize};

use mlscore_backend::ScoringBackend;
use mlscore_forest::ModelStats;
use mlscore_sim::{DeviceLedger, SimDuration, SimInstant, Stage, StageClass};

use crate::params::PipelineParams;

/// Host resources available to concurrent queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostResources {
    /// Hardware threads shared by all queries.
    pub threads: usize,
}

impl Default for HostResources {
    fn default() -> Self {
        Self { threads: 52 }
    }
}

/// Accelerator resources available for offloaded scoring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AcceleratorResources {
    /// Accelerator cards; each card runs one query's device pass at a time
    /// (one [`DeviceLedger`] slot per card).
    pub cards: usize,
}

impl Default for AcceleratorResources {
    fn default() -> Self {
        Self { cards: 1 }
    }
}

/// Outcome of a consolidation comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConsolidationReport {
    /// Queries analyzed.
    pub queries: u32,
    /// Makespan with scoring on the host.
    pub host_only: SimDuration,
    /// Makespan with scoring offloaded to one accelerator.
    pub offloaded: SimDuration,
    /// Host core-seconds of scoring work the accelerator absorbed — the
    /// "freed up" processor resource.
    pub core_seconds_freed: f64,
}

impl ConsolidationReport {
    /// Consolidation speedup (`host_only / offloaded`).
    pub fn speedup(&self) -> f64 {
        self.host_only.ratio(self.offloaded)
    }
}

/// [`consolidate_cards`] with the paper's single accelerator card.
#[allow(clippy::too_many_arguments)] // a deliberate flat API: workload x resources x backends
pub fn consolidate(
    host: &HostResources,
    params: &PipelineParams,
    cpu_backend: &dyn ScoringBackend,
    accel_backend: &dyn ScoringBackend,
    stats: &ModelStats,
    model_bytes: u64,
    n_records: u64,
    queries: u32,
) -> ConsolidationReport {
    consolidate_cards(
        host,
        &AcceleratorResources::default(),
        params,
        cpu_backend,
        accel_backend,
        stats,
        model_bytes,
        n_records,
        queries,
    )
}

/// Analyzes `queries` identical concurrent queries, each scoring
/// `n_records` with the given model, comparing a host-only backend against
/// an accelerator pool of `accel.cards` cards.
///
/// The host-only makespan divides total core-seconds (pipeline stages plus
/// single-thread-equivalent scoring) across the host's threads, floored by
/// one query's critical path. The offloaded makespan reserves each query's
/// device pass on a [`DeviceLedger`] with one slot per card — the same
/// reservation model the serving engine arbitrates with, so the offline
/// analysis and the simulator agree on device occupancy by construction —
/// and takes the maximum of the pool's completion time, the host-side
/// pipeline work, and a single query's critical path.
#[allow(clippy::too_many_arguments)] // a deliberate flat API: workload x resources x backends
pub fn consolidate_cards(
    host: &HostResources,
    accel: &AcceleratorResources,
    params: &PipelineParams,
    cpu_backend: &dyn ScoringBackend,
    accel_backend: &dyn ScoringBackend,
    stats: &ModelStats,
    model_bytes: u64,
    n_records: u64,
    queries: u32,
) -> ConsolidationReport {
    let q = queries.max(1) as f64;
    // Per-query host pipeline work (marshal, pre/post-processing). Python
    // invocation burns a core for its duration as well.
    let data_bytes = n_records * stats.row_bytes() as u64;
    let pipeline_work = params.python_invocation
        + params.marshal_time(n_records, data_bytes + model_bytes)
        + params.marshal_results_time(n_records)
        + params.model_preprocess_time(model_bytes)
        + params.data_preprocess_per_byte * data_bytes as f64
        + params.postprocess_per_record * n_records as f64;

    // CPU scoring in core-seconds: the backend models a parallel run, so
    // rescale its compute component back to single-thread-equivalents via
    // the overhead-free scoring stage.
    let cpu_breakdown = cpu_backend.estimate(stats, n_records);
    let cpu_scoring_wall = cpu_breakdown.get(Stage::Scoring);
    // Treat the backend's wall-clock scoring as having used all host
    // threads (true for the 52-thread engines at large batches).
    let cpu_scoring_core_seconds = cpu_scoring_wall.as_secs() * host.threads as f64;

    let threads = host.threads as f64;
    let critical_path_host = pipeline_work + cpu_breakdown.total();
    let host_only = SimDuration::from_secs(
        ((pipeline_work.as_secs() + cpu_scoring_core_seconds) * q / threads)
            .max(critical_path_host.as_secs()),
    );

    // Offloaded: each query's device pass (compute + transfer) occupies one
    // card-slot on the shared reservation ledger; the host-side overhead
    // class of the offload still burns host time.
    let accel_breakdown = accel_backend.estimate(stats, n_records);
    let device_busy = accel_breakdown.total_class(StageClass::Compute)
        + accel_breakdown.total_class(StageClass::Transfer);
    let mut ledger = DeviceLedger::new(accel.cards.max(1));
    for _ in 0..queries.max(1) {
        ledger.reserve(SimInstant::ZERO, device_busy);
    }
    let device_completion = ledger.completion() - SimInstant::ZERO;
    let host_side_offload = accel_breakdown.total_class(StageClass::Overhead)
        + accel_breakdown.total_class(StageClass::Pipeline);
    let critical_path_accel = pipeline_work + accel_breakdown.total();
    let offloaded = SimDuration::from_secs(
        device_completion
            .as_secs()
            .max((pipeline_work.as_secs() + host_side_offload.as_secs()) * q / threads)
            .max(critical_path_accel.as_secs()),
    );

    ConsolidationReport {
        queries,
        host_only,
        offloaded,
        core_seconds_freed: cpu_scoring_core_seconds * q,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlscore_backend::SklearnCpu;
    use mlscore_forest::{ForestConfig, ModelBundle, RandomForest};

    fn heavy() -> (ModelStats, u64) {
        let forest = RandomForest::synthetic_full(
            &ForestConfig::classification(128, 28, 2).with_depth(10),
            1,
        );
        let bytes = ModelBundle::serialize(&forest).len() as u64;
        (ModelStats::of(&forest), bytes)
    }

    fn fpga() -> mlscore_fpga_shim::Fpga {
        mlscore_fpga_shim::Fpga
    }

    // A tiny in-crate accelerator stand-in so pipeline unit tests do not
    // depend on the fpga crate (integration tests cover the real one):
    // fixed 2 ms overhead + 10 ns/record of device time.
    mod mlscore_fpga_shim {
        use mlscore_backend::{BackendError, ScoringBackend, ScoringRequest};
        use mlscore_forest::{ModelStats, Predictions};
        use mlscore_sim::{SimDuration, Stage, TimingBreakdown};

        pub struct Fpga;

        impl ScoringBackend for Fpga {
            fn name(&self) -> &str {
                "accel-shim"
            }
            fn score(&self, req: &ScoringRequest<'_>) -> Result<Predictions, BackendError> {
                Ok(req.forest().predict_batch(req.frame().as_slice()))
            }
            fn estimate(&self, _stats: &ModelStats, n_records: u64) -> TimingBreakdown {
                let mut b = TimingBreakdown::new();
                b.add(Stage::SoftwareOverhead, SimDuration::from_millis(2.0));
                b.add(
                    Stage::Scoring,
                    SimDuration::from_nanos(10.0) * n_records as f64,
                );
                b
            }
        }
    }

    #[test]
    fn offloading_heavy_queries_wins_and_frees_cores() {
        let (stats, bytes) = heavy();
        let cpu = SklearnCpu::paper_default();
        let report = consolidate(
            &HostResources::default(),
            &PipelineParams::default(),
            &cpu,
            &fpga(),
            &stats,
            bytes,
            1_000_000,
            8,
        );
        assert!(report.speedup() > 1.0, "speedup {}", report.speedup());
        assert!(report.core_seconds_freed > 0.0);
    }

    #[test]
    fn single_query_matches_critical_path_floor() {
        let (stats, bytes) = heavy();
        let cpu = SklearnCpu::paper_default();
        let report = consolidate(
            &HostResources::default(),
            &PipelineParams::default(),
            &cpu,
            &fpga(),
            &stats,
            bytes,
            1_000,
            1,
        );
        // One query cannot beat its own critical path.
        assert!(report.host_only >= SimDuration::from_millis(100.0)); // python invocation
        assert!(report.offloaded >= SimDuration::from_millis(100.0));
    }

    #[test]
    fn accelerator_serialization_eventually_binds() {
        // With enough concurrent queries, the single accelerator becomes
        // the bottleneck and makespan grows linearly in q.
        let (stats, bytes) = heavy();
        let cpu = SklearnCpu::paper_default();
        // Tight (in-engine) integration keeps the per-query critical path
        // small so the device's serialized busy time is what binds.
        let run = |q| {
            consolidate(
                &HostResources { threads: 10_000 }, // host never binds
                &crate::integration::IntegrationMode::InEngine.params(),
                &cpu,
                &fpga(),
                &stats,
                bytes,
                1_000_000,
                q,
            )
            .offloaded
        };
        let m64 = run(64);
        let m128 = run(128);
        let ratio = m128.ratio(m64);
        assert!(
            (1.8..2.2).contains(&ratio),
            "serialized scaling ratio {ratio}"
        );
    }

    #[test]
    fn one_card_matches_the_single_card_entry_point() {
        let (stats, bytes) = heavy();
        let cpu = SklearnCpu::paper_default();
        let single = consolidate(
            &HostResources::default(),
            &PipelineParams::default(),
            &cpu,
            &fpga(),
            &stats,
            bytes,
            500_000,
            16,
        );
        let explicit = consolidate_cards(
            &HostResources::default(),
            &AcceleratorResources { cards: 1 },
            &PipelineParams::default(),
            &cpu,
            &fpga(),
            &stats,
            bytes,
            500_000,
            16,
        );
        assert_eq!(single, explicit);
    }

    #[test]
    fn more_cards_shrink_the_device_bound_makespan() {
        let (stats, bytes) = heavy();
        let cpu = SklearnCpu::paper_default();
        let run = |cards| {
            consolidate_cards(
                &HostResources { threads: 10_000 }, // host never binds
                &AcceleratorResources { cards },
                &crate::integration::IntegrationMode::InEngine.params(),
                &cpu,
                &fpga(),
                &stats,
                bytes,
                1_000_000,
                256,
            )
            .offloaded
        };
        let m1 = run(1);
        let m2 = run(2);
        let m4 = run(4);
        assert!(m2 < m1, "2 cards {m2} should beat 1 card {m1}");
        assert!(m4 < m2, "4 cards {m4} should beat 2 cards {m2}");
        // In the device-bound regime, doubling cards halves the device term
        // (256 queries split evenly across cards).
        let ratio = m1.ratio(m2);
        assert!((1.9..2.1).contains(&ratio), "card scaling ratio {ratio}");
        // Diminishing returns: past the point where the device stops
        // binding, extra cards change nothing.
        let m128 = run(128);
        let m256 = run(256);
        assert_eq!(
            m128, m256,
            "once per-query critical path binds, cards are free"
        );
    }

    #[test]
    fn report_speedup_is_ratio() {
        let r = ConsolidationReport {
            queries: 2,
            host_only: SimDuration::from_secs(10.0),
            offloaded: SimDuration::from_secs(2.0),
            core_seconds_freed: 1.0,
        };
        assert_eq!(r.speedup(), 5.0);
    }
}
