//! Calibrated stage costs for the DBMS pipeline.

use serde::{Deserialize, Serialize};

use mlscore_sim::{Bandwidth, SimDuration};

/// Per-stage cost parameters for the T-SQL → Python → scoring pipeline.
///
/// Defaults are calibrated to the paper's Fig. 11 narrative: launching the
/// external Python process costs on the order of 100 ms; the "transparent"
/// SQL↔Python data copy is row-oriented and slow (external-script data
/// marshaling moves on the order of only 10⁵ rows/s, which is what makes
/// data transfer the dominant component once scoring is accelerated);
/// model deserialization scales with bundle bytes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineParams {
    /// Launching the external Python process (Fig. 11 "Python invocation").
    pub python_invocation: SimDuration,
    /// Fixed setup of one SQL↔Python transfer channel.
    pub transfer_setup: SimDuration,
    /// Per-row marshaling cost of the SQL↔Python copy (row-oriented
    /// serialization dominates the copy).
    pub per_row_marshal: SimDuration,
    /// Byte-streaming bandwidth of the SQL↔Python copy.
    pub marshal_bandwidth: Bandwidth,
    /// Fixed model-deserialization cost (import, session setup).
    pub model_deserialize_fixed: SimDuration,
    /// Per-byte model-deserialization cost.
    pub model_deserialize_per_byte: SimDuration,
    /// Per-byte data-preparation cost (feature extraction, dtype
    /// conversion) inside the Python script.
    pub data_preprocess_per_byte: SimDuration,
    /// Per-record cost of assembling the results DataFrame.
    pub postprocess_per_record: SimDuration,
    /// Per-row marshaling cost of returning predictions (4-byte values are
    /// far cheaper to serialize than wide input rows).
    pub per_result_marshal: SimDuration,
    /// Cost of a warm artifact-cache lookup (hash the bundle bytes, probe
    /// the cache). Replaces the whole model-pre-processing stage on a hit.
    pub cache_lookup: SimDuration,
    /// Per-chunk handoff cost on the fused in-process path: bumping the
    /// scanner cursor and passing a borrowed chunk to the kernel. This is
    /// the *entire* data-transfer charge of a fused query — there is no
    /// row-oriented SQL↔Python copy and no separate pre-processing pass.
    pub chunk_handoff: SimDuration,
}

fn default_cache_lookup() -> SimDuration {
    SimDuration::from_micros(50.0)
}

fn default_chunk_handoff() -> SimDuration {
    SimDuration::from_micros(2.0)
}

impl Default for PipelineParams {
    fn default() -> Self {
        Self {
            python_invocation: SimDuration::from_millis(100.0),
            transfer_setup: SimDuration::from_millis(2.0),
            per_row_marshal: SimDuration::from_micros(12.0),
            marshal_bandwidth: Bandwidth::from_gb_per_sec(0.5),
            model_deserialize_fixed: SimDuration::from_millis(20.0),
            model_deserialize_per_byte: SimDuration::from_nanos(2.0),
            data_preprocess_per_byte: SimDuration::from_nanos(0.5),
            postprocess_per_record: SimDuration::from_nanos(500.0),
            per_result_marshal: SimDuration::from_micros(2.0),
            cache_lookup: default_cache_lookup(),
            chunk_handoff: default_chunk_handoff(),
        }
    }
}

impl PipelineParams {
    /// Time to marshal `rows` totalling `bytes` across the SQL↔Python
    /// boundary (one direction).
    pub fn marshal_time(&self, rows: u64, bytes: u64) -> SimDuration {
        self.transfer_setup
            + self.per_row_marshal * rows as f64
            + self.marshal_bandwidth.transfer_time(bytes)
    }

    /// Time to marshal `rows` prediction results back to the DBMS.
    pub fn marshal_results_time(&self, rows: u64) -> SimDuration {
        self.transfer_setup
            + self.per_result_marshal * rows as f64
            + self.marshal_bandwidth.transfer_time(rows * 4)
    }

    /// Model pre-processing (deserialization) time for a bundle of
    /// `model_bytes`.
    pub fn model_preprocess_time(&self, model_bytes: u64) -> SimDuration {
        self.model_deserialize_fixed + self.model_deserialize_per_byte * model_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marshal_time_is_row_dominated_for_narrow_rows() {
        let p = PipelineParams::default();
        // 1M IRIS rows: 16 MB of payload but 1M row conversions.
        let t = p.marshal_time(1_000_000, 16_000_000);
        let row_part = p.per_row_marshal * 1e6;
        assert!(t > row_part);
        assert!(t < row_part * 1.5);
    }

    #[test]
    fn cache_lookup_is_far_cheaper_than_model_preprocessing() {
        let p = PipelineParams::default();
        // The warm path's whole point: a hit costs a hash + probe, not a
        // deserialize — orders of magnitude under even the fixed cost.
        assert!(p.cache_lookup * 100.0 < p.model_preprocess_time(0));
    }

    #[test]
    fn chunk_handoff_is_negligible_next_to_per_row_marshal() {
        let p = PipelineParams::default();
        // The fused path's whole point: handing one 512-row chunk across a
        // function boundary must cost far less than marshalling even a
        // single row through the SQL↔Python copy — otherwise chunking
        // would just reintroduce the tax it removes.
        // One handoff covers a whole default chunk (512 rows), yet costs
        // less than marshalling a single row.
        assert!(p.chunk_handoff < p.per_row_marshal);
    }

    #[test]
    fn model_preprocess_scales_with_bytes() {
        let p = PipelineParams::default();
        let small = p.model_preprocess_time(1_000);
        let big = p.model_preprocess_time(10_000_000);
        assert!(big > small);
        assert!(small >= p.model_deserialize_fixed);
    }
}
