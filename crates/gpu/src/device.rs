//! GPU device description.

use serde::{Deserialize, Serialize};

use mlscore_offload::PcieLink;
use mlscore_sim::{Bandwidth, ClockRate, SimDuration};

/// An analytic GPU device model: enough architecture to drive roofline-style
/// kernel estimates (compute rate, memory bandwidth, L2 capacity) plus the
/// host-side costs (kernel launch, PCIe link).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuDevice {
    /// Marketing name.
    pub name: String,
    /// Streaming multiprocessor count.
    pub sms: u32,
    /// SM clock.
    pub clock: ClockRate,
    /// L2 cache capacity in bytes (the paper contrasts the P100's 4 MB L2
    /// with the FPGA's 28.6 MB of BRAM).
    pub l2_bytes: u64,
    /// Device memory bandwidth.
    pub mem_bandwidth: Bandwidth,
    /// Peak single-precision throughput in FLOP/s.
    pub peak_flops: f64,
    /// Host-side cost of launching one kernel.
    pub kernel_launch: SimDuration,
    /// The PCIe link to the host.
    pub link: PcieLink,
}

impl GpuDevice {
    /// The paper's GPU: NVIDIA Tesla P100 (56 SMs @ ~1.33 GHz, 4 MB L2,
    /// 732 GB/s HBM2, ~9.3 TFLOP/s fp32) in an Azure NC6s_v2 VM, PCIe 3.0
    /// x16 to the host.
    pub fn tesla_p100() -> Self {
        Self {
            name: "Tesla P100".to_string(),
            sms: 56,
            clock: ClockRate::from_ghz(1.328),
            l2_bytes: 4 << 20,
            mem_bandwidth: Bandwidth::from_gb_per_sec(732.0),
            peak_flops: 9.3e12,
            kernel_launch: SimDuration::from_micros(8.0),
            link: PcieLink::gen3_x16(),
        }
    }

    /// A newer-generation device: NVIDIA Tesla V100 (80 SMs @ ~1.38 GHz,
    /// 6 MB L2, 900 GB/s HBM2, ~14 TFLOP/s fp32). The paper notes that
    /// "GPUs with larger caches can improve the slopes of the GPU
    /// performance curves and shift the crossover points" — this and
    /// [`GpuDevice::a100`] exist to test exactly that (ablation A6).
    pub fn tesla_v100() -> Self {
        Self {
            name: "Tesla V100".to_string(),
            sms: 80,
            clock: ClockRate::from_ghz(1.38),
            l2_bytes: 6 << 20,
            mem_bandwidth: Bandwidth::from_gb_per_sec(900.0),
            peak_flops: 14.0e12,
            kernel_launch: SimDuration::from_micros(7.0),
            link: PcieLink::gen3_x16(),
        }
    }

    /// NVIDIA A100 (108 SMs @ ~1.41 GHz, 40 MB L2, 1555 GB/s HBM2e,
    /// ~19.5 TFLOP/s fp32, PCIe 4.0): the 40 MB L2 holds the paper's
    /// entire 128-tree model on chip, removing the capacity misses the
    /// paper blames for the GPU's large-model slowdown.
    pub fn a100() -> Self {
        Self {
            name: "A100".to_string(),
            sms: 108,
            clock: ClockRate::from_ghz(1.41),
            l2_bytes: 40 << 20,
            mem_bandwidth: Bandwidth::from_gb_per_sec(1555.0),
            peak_flops: 19.5e12,
            kernel_launch: SimDuration::from_micros(7.0),
            link: PcieLink::gen4_x16(),
        }
    }

    /// Time to move `bytes` through device memory (bandwidth-bound).
    pub fn memory_time(&self, bytes: f64) -> SimDuration {
        SimDuration::from_secs(bytes / self.mem_bandwidth.bytes_per_sec())
    }

    /// Time to execute `flops` at `efficiency` of peak.
    ///
    /// # Panics
    ///
    /// Debug-asserts `0 < efficiency <= 1`.
    pub fn compute_time(&self, flops: f64, efficiency: f64) -> SimDuration {
        debug_assert!(efficiency > 0.0 && efficiency <= 1.0);
        SimDuration::from_secs(flops / (self.peak_flops * efficiency))
    }

    /// Fraction of node-record reads that miss L2 for a model of
    /// `model_bytes`: 0 when the model fits, approaching 1 as it spills.
    pub fn l2_miss_fraction(&self, model_bytes: u64) -> f64 {
        let ratio = model_bytes as f64 / self.l2_bytes as f64;
        if ratio <= 1.0 {
            0.05 // cold misses only
        } else {
            // Capacity misses grow with the overflow factor.
            (1.0 - 1.0 / ratio).clamp(0.05, 0.95)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p100_matches_datasheet() {
        let g = GpuDevice::tesla_p100();
        assert_eq!(g.sms, 56);
        assert_eq!(g.l2_bytes, 4 << 20);
        assert!((g.mem_bandwidth.gb_per_sec() - 732.0).abs() < 1e-9);
    }

    #[test]
    fn newer_devices_strictly_improve() {
        let p100 = GpuDevice::tesla_p100();
        let v100 = GpuDevice::tesla_v100();
        let a100 = GpuDevice::a100();
        assert!(v100.l2_bytes > p100.l2_bytes);
        assert!(a100.l2_bytes > v100.l2_bytes);
        assert!(a100.mem_bandwidth.bytes_per_sec() > v100.mem_bandwidth.bytes_per_sec());
        // An 8 MB model misses on the P100's 4 MB L2 but fits in the
        // A100's 40 MB — the paper's large-cache argument.
        let model = 8_000_000u64;
        assert!(p100.l2_miss_fraction(model) > 0.04 + a100.l2_miss_fraction(model));
        assert_eq!(a100.l2_miss_fraction(model), 0.05);
    }

    #[test]
    fn memory_time_is_bandwidth_bound() {
        let g = GpuDevice::tesla_p100();
        let t = g.memory_time(732e9);
        assert!((t.as_secs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn compute_time_scales_with_efficiency() {
        let g = GpuDevice::tesla_p100();
        let full = g.compute_time(9.3e12, 1.0);
        let half = g.compute_time(9.3e12, 0.5);
        assert!((half.ratio(full) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn l2_miss_fraction_grows_past_capacity() {
        let g = GpuDevice::tesla_p100();
        assert_eq!(g.l2_miss_fraction(1 << 20), 0.05);
        let at_2x = g.l2_miss_fraction(8 << 20);
        let at_8x = g.l2_miss_fraction(32 << 20);
        assert!(at_2x > 0.4 && at_2x < 0.6);
        assert!(at_8x > at_2x);
        assert!(at_8x <= 0.95);
    }
}
