//! The Hummingbird-like backend ("GPU-HB").
//!
//! Hummingbird compiles tree ensembles into tensor programs. For shallow
//! trees it uses a GEMM formulation; for deeper trees a (perfect) tree
//! traversal over gather tensors. Either way every record evaluates a
//! *fixed* amount of work per tree — no data-dependent branching, so SM and
//! warp efficiency stay near 100% (matching the paper's nvprof analysis) at
//! the price of redundant computation and more memory traffic.
//!
//! The functional scorer here mirrors the GEMM semantics: [`lower`] compiles
//! each tree into flat per-node tensors (feature, threshold, children, leaf
//! payload), and scoring evaluates every internal-node predicate, then
//! selects the unique leaf whose root-to-leaf path agrees with all its
//! predicates. Property tests assert this agrees bit-for-bit with plain
//! traversal.
//!
//! [`lower`]: ScoringBackend::lower

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use mlscore_backend::{BackendError, Lowered, ScoringBackend};
use mlscore_data::TabularFrame;
use mlscore_forest::{DecisionTree, LeafValue, ModelStats, Node, Predictions, RandomForest, Task};
use mlscore_sim::{SimDuration, SimInstant, Stage, TimingBreakdown};
use mlscore_telemetry::{Scope, Tracer};

use crate::device::GpuDevice;
use crate::MAX_LAUNCH_LANES;

/// Timing-model constants for the Hummingbird strategy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HummingbirdCostParams {
    /// Fixed per-call framework overhead (tensor runtime dispatch).
    pub framework_overhead: SimDuration,
    /// Effective node-visit-equivalents retired per SM per cycle for the
    /// tensorized traversal. Instruction- and traffic-bound well below the
    /// device's FLOP peak — the paper observed "more instructions executed
    /// and more L2/DRAM traffic" than RAPIDS despite full SM efficiency.
    /// (0.134 on the P100 ≈ 10G visits/s across 56 SMs at 1.33 GHz.)
    pub visits_per_sm_cycle: f64,
    /// Extra memory-traffic multiplier from index/gather tensors relative
    /// to raw node records.
    pub traffic_factor: f64,
    /// Tree depth at or below which the GEMM formulation is used instead of
    /// tensor traversal (Hummingbird's heuristic).
    pub gemm_max_depth: usize,
}

impl Default for HummingbirdCostParams {
    fn default() -> Self {
        Self {
            framework_overhead: SimDuration::from_millis(1.6),
            visits_per_sm_cycle: 0.134,
            traffic_factor: 1.5,
            gemm_max_depth: 3,
        }
    }
}

/// The "GPU-HB" backend.
///
/// # Example
///
/// ```
/// use mlscore_backend::{ScoringBackend, ScoringRequest};
/// use mlscore_data::Dataset;
/// use mlscore_forest::{ForestConfig, RandomForest};
/// use mlscore_gpu::HummingbirdGpu;
///
/// let forest = RandomForest::synthetic_full(
///     &ForestConfig::classification(4, 4, 3).with_depth(5),
///     9,
/// );
/// let data = Dataset::iris(30, 2).normalized();
/// let req = ScoringRequest::new(&forest, data.frame())?;
/// // Unlike RAPIDS, Hummingbird handles multi-class models.
/// let preds = HummingbirdGpu::p100().score(&req)?;
/// assert_eq!(preds.len(), 30);
/// # Ok::<(), mlscore_backend::BackendError>(())
/// ```
#[derive(Debug, Clone)]
pub struct HummingbirdGpu {
    device: GpuDevice,
    params: HummingbirdCostParams,
}

impl HummingbirdGpu {
    /// Hummingbird on the paper's Tesla P100.
    pub fn p100() -> Self {
        Self::new(GpuDevice::tesla_p100(), HummingbirdCostParams::default())
    }

    /// Fully custom construction.
    pub fn new(device: GpuDevice, params: HummingbirdCostParams) -> Self {
        Self { device, params }
    }

    /// The device model.
    pub fn device(&self) -> &GpuDevice {
        &self.device
    }
}

/// One tree compiled to the Hummingbird tensor layout: flat per-node arrays
/// (feature, threshold, children, leaf payload) that the GEMM / traversal
/// formulations gather from. Node order is preserved from the source tree so
/// the path-match semantics are identical to scoring the pointer tree.
#[derive(Debug, Clone, PartialEq)]
struct TreeTensors {
    /// Split feature per node; unused (zero) for leaves.
    feature: Vec<u16>,
    /// Split threshold per node; unused (zero) for leaves.
    threshold: Vec<f32>,
    /// Left / right child indices per node; unused (zero) for leaves.
    left: Vec<u32>,
    right: Vec<u32>,
    /// Leaf payload per node; `None` for internal nodes.
    leaf: Vec<Option<LeafValue>>,
}

impl TreeTensors {
    fn from_tree(tree: &DecisionTree) -> Self {
        let nodes = tree.nodes();
        let mut t = Self {
            feature: Vec::with_capacity(nodes.len()),
            threshold: Vec::with_capacity(nodes.len()),
            left: Vec::with_capacity(nodes.len()),
            right: Vec::with_capacity(nodes.len()),
            leaf: Vec::with_capacity(nodes.len()),
        };
        for node in nodes {
            match node {
                Node::Decision {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    t.feature.push(*feature);
                    t.threshold.push(*threshold);
                    t.left.push(*left);
                    t.right.push(*right);
                    t.leaf.push(None);
                }
                Node::Leaf(v) => {
                    t.feature.push(0);
                    t.threshold.push(0.0);
                    t.left.push(0);
                    t.right.push(0);
                    t.leaf.push(Some(*v));
                }
            }
        }
        t
    }

    /// Scores one record by the GEMM semantics: evaluate all predicates,
    /// then find the leaf whose path matches them all.
    fn score(&self, x: &[f32]) -> LeafValue {
        let n = self.leaf.len();
        // Predicate tensor: outcome of every internal node's comparison
        // (leaves contribute `false`, matching a zero row in the matrix).
        let predicates: Vec<bool> = (0..n)
            .map(|i| self.leaf[i].is_none() && x[self.feature[i] as usize] <= self.threshold[i])
            .collect();
        // Path-match: the live leaf is the one reachable when every decision
        // on its path agrees with the predicate tensor. Walk all paths
        // breadth-first carrying agreement, like the path matrix product.
        let mut matched = vec![false; n];
        matched[0] = true;
        for i in 0..n {
            if !matched[i] || self.leaf[i].is_some() {
                continue;
            }
            if predicates[i] {
                matched[self.left[i] as usize] = true;
            } else {
                matched[self.right[i] as usize] = true;
            }
        }
        (0..n)
            .find_map(|i| if matched[i] { self.leaf[i] } else { None })
            .expect("exactly one leaf matches the predicate tensor")
    }
}

/// The whole forest compiled to tensors — Hummingbird's "compiled tensor
/// program". Produced by [`ScoringBackend::lower`] and cached across queries
/// by the artifact cache.
#[derive(Debug, Clone, PartialEq)]
pub struct HbTensors {
    trees: Vec<TreeTensors>,
}

impl HbTensors {
    fn from_forest(forest: &RandomForest) -> Self {
        Self {
            trees: forest.trees().iter().map(TreeTensors::from_tree).collect(),
        }
    }
}

impl ScoringBackend for HummingbirdGpu {
    fn name(&self) -> &str {
        "GPU-HB"
    }

    fn lower(&self, forest: &RandomForest) -> Result<Lowered, BackendError> {
        Ok(Lowered::Custom(Arc::new(HbTensors::from_forest(forest))))
    }

    fn score_lowered(
        &self,
        forest: &RandomForest,
        lowered: &Lowered,
        frame: &TabularFrame,
    ) -> Result<Predictions, BackendError> {
        let tensors = match lowered {
            Lowered::Custom(any) => any.downcast_ref::<HbTensors>().ok_or_else(|| {
                BackendError::artifact(self.name(), "custom artifact is not Hummingbird tensors")
            })?,
            other => {
                return Err(BackendError::artifact(
                    self.name(),
                    format!("expected a Hummingbird tensor artifact, got {other:?}"),
                ))
            }
        };
        match forest.task() {
            Task::Classification { n_classes } => {
                let classes = frame
                    .rows()
                    .map(|row| {
                        let mut counts = vec![0u32; n_classes as usize];
                        for tree in &tensors.trees {
                            let c = tree.score(row).as_class().expect("classification leaf");
                            counts[c as usize] += 1;
                        }
                        RandomForest::majority(&counts)
                    })
                    .collect();
                Ok(Predictions::Classes(classes))
            }
            Task::Regression => {
                let values = frame
                    .rows()
                    .map(|row| {
                        let sum: f32 = tensors
                            .trees
                            .iter()
                            .map(|t| t.score(row).as_value().expect("regression leaf"))
                            .sum();
                        sum / forest.n_trees() as f32
                    })
                    .collect();
                Ok(Predictions::Values(values))
            }
        }
    }

    fn estimate(&self, stats: &ModelStats, n_records: u64) -> TimingBreakdown {
        self.estimate_traced(stats, n_records, &Tracer::disabled(), SimInstant::ZERO)
    }

    fn estimate_traced(
        &self,
        stats: &ModelStats,
        n_records: u64,
        tracer: &Tracer,
        start: SimInstant,
    ) -> TimingBreakdown {
        let d = &self.device;
        let p = &self.params;
        let mut b = TimingBreakdown::new();

        // Transfers: model tensors (~5 words per node: feature, threshold,
        // left, right, value) plus records in, results back.
        let model_bytes = (stats.total_nodes * 20) as u64;
        let input_bytes = n_records * stats.row_bytes() as u64;
        let model_h2d = d.link.transfer(model_bytes);
        let records_h2d = d.link.transfer(input_bytes);
        b.add(Stage::InputTransfer, model_h2d + records_h2d);
        let results_d2h = d.link.transfer(n_records * 4);
        b.add(Stage::ResultTransfer, results_d2h);

        // Kernel: fixed work per record per tree — the full depth is always
        // walked (perfect-tree traversal), or the full node set evaluated
        // (GEMM) for shallow trees.
        let gemm = stats.max_depth <= p.gemm_max_depth;
        let per_tree_visits = if gemm {
            // GEMM evaluates every node once.
            (stats.total_nodes as f64 / stats.n_trees as f64).max(1.0)
        } else {
            (stats.max_depth + 1) as f64
        };
        let visits = n_records as f64 * stats.n_trees as f64 * per_tree_visits;
        let visit_rate = d.sms as f64 * d.clock.hz() * p.visits_per_sm_cycle;
        let compute = SimDuration::from_secs(visits / visit_rate);
        let miss = d.l2_miss_fraction((stats.total_nodes * 20) as u64);
        let traffic =
            visits * 16.0 * p.traffic_factor * miss + (input_bytes + n_records * 4) as f64;
        let memory = d.memory_time(traffic);
        let kernel = compute.max(memory);
        b.add(Stage::Scoring, kernel);

        let n_launches = stats.max_depth as f64 + 2.0;
        let launches = d.kernel_launch * n_launches;
        b.add(Stage::SoftwareOverhead, p.framework_overhead + launches);

        if tracer.is_enabled() {
            let name = <Self as ScoringBackend>::name(self);
            // Recorded in add order (result d2h before the kernel), placed
            // in execution order on the timeline.
            let t = tracer
                .span("model tensors h2d", start)
                .stage(Stage::InputTransfer)
                .scope(Scope::Offload)
                .track(name, "offload")
                .meta("bytes", model_bytes.to_string())
                .finish_after(model_h2d);
            let t_kernel = tracer
                .span("records h2d", t)
                .stage(Stage::InputTransfer)
                .scope(Scope::Offload)
                .track(name, "offload")
                .meta("bytes", input_bytes.to_string())
                .finish_after(records_h2d);
            let t_results = tracer
                .span("results d2h", t_kernel + kernel)
                .stage(Stage::ResultTransfer)
                .scope(Scope::Offload)
                .track(name, "offload")
                .finish_after(results_d2h);
            tracer
                .span(
                    if gemm {
                        "gemm kernel"
                    } else {
                        "tensor traversal kernel"
                    },
                    t_kernel,
                )
                .stage(Stage::Scoring)
                .scope(Scope::Offload)
                .track(name, "offload")
                .meta(
                    "bound",
                    if memory > compute {
                        "memory"
                    } else {
                        "compute"
                    },
                )
                .finish_after(kernel);
            let t_fw = tracer
                .span("framework dispatch", t_results)
                .stage(Stage::SoftwareOverhead)
                .scope(Scope::Offload)
                .track(name, "host")
                .finish_after(p.framework_overhead);
            tracer
                .span("kernel launches", t_fw)
                .stage(Stage::SoftwareOverhead)
                .scope(Scope::Offload)
                .track(name, "host")
                .meta("kernels", format!("{n_launches}"))
                .finish_after(launches);
            // Detail: one span per launch, capped.
            let mut tl = t_fw;
            for k in 0..(n_launches as usize).min(MAX_LAUNCH_LANES) {
                tl = tracer
                    .span(format!("launch {k}"), tl)
                    .track(name, "launches")
                    .finish_after(d.kernel_launch);
            }
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlscore_backend::ScoringRequest;
    use mlscore_data::Dataset;
    use mlscore_forest::ForestConfig;

    #[test]
    fn prepared_scoring_matches_fresh_and_rejects_foreign_artifacts() {
        let forest =
            RandomForest::synthetic_full(&ForestConfig::classification(10, 4, 3).with_depth(6), 3);
        let bundle = mlscore_forest::ModelBundle::serialize(&forest);
        let data = Dataset::iris(64, 7).normalized();
        let hb = HummingbirdGpu::p100();

        let model = hb.prepare(&bundle).unwrap();
        let warm = hb.score_prepared(&model, data.frame()).unwrap();
        let fresh = hb
            .score(&ScoringRequest::new(&forest, data.frame()).unwrap())
            .unwrap();
        assert_eq!(warm, fresh);

        // An artifact compiled by another backend must be rejected, not
        // silently rescored.
        let foreign = mlscore_backend::SklearnCpu::with_threads(1)
            .prepare(&bundle)
            .unwrap();
        assert!(matches!(
            hb.score_prepared(&foreign, data.frame()),
            Err(BackendError::Artifact { .. })
        ));
    }

    #[test]
    fn gemm_semantics_match_traversal_full_trees() {
        let forest =
            RandomForest::synthetic_full(&ForestConfig::classification(10, 4, 3).with_depth(7), 21);
        let data = Dataset::iris(150, 5).normalized();
        let req = ScoringRequest::new(&forest, data.frame()).unwrap();
        let preds = HummingbirdGpu::p100().score(&req).unwrap();
        assert_eq!(preds, forest.predict_batch(data.frame().as_slice()));
    }

    #[test]
    fn gemm_semantics_match_traversal_capped_trees() {
        let forest = RandomForest::synthetic_capped(
            &ForestConfig::classification(8, 28, 2).with_depth(10),
            100,
            4,
        );
        let data = Dataset::higgs(120, 8).normalized();
        let req = ScoringRequest::new(&forest, data.frame()).unwrap();
        let preds = HummingbirdGpu::p100().score(&req).unwrap();
        assert_eq!(preds, forest.predict_batch(data.frame().as_slice()));
    }

    #[test]
    fn regression_supported_and_correct() {
        let forest = RandomForest::synthetic_full(&ForestConfig::regression(5, 3).with_depth(4), 6);
        let frame = mlscore_data::TabularFrame::from_rows(
            (0..45).map(|i| (i as f32 * 0.73) % 1.0).collect(),
            3,
        )
        .unwrap();
        let req = ScoringRequest::new(&forest, &frame).unwrap();
        let preds = HummingbirdGpu::p100().score(&req).unwrap();
        assert_eq!(preds, forest.predict_batch(frame.as_slice()));
    }

    #[test]
    fn multiclass_supported_unlike_rapids() {
        let iris_model =
            RandomForest::synthetic_full(&ForestConfig::classification(4, 4, 3).with_depth(4), 1);
        assert!(HummingbirdGpu::p100()
            .supports(&ModelStats::of(&iris_model))
            .is_ok());
    }

    #[test]
    fn no_cudf_floor_at_small_batches() {
        let forest =
            RandomForest::synthetic_full(&ForestConfig::classification(1, 28, 2).with_depth(6), 1);
        let stats = ModelStats::of(&forest);
        let hb = HummingbirdGpu::p100().estimate(&stats, 1).total();
        let fil = crate::fil::RapidsFil::p100().estimate(&stats, 1).total();
        // Fig. 9e: HB is far cheaper than RAPIDS at tiny batches.
        assert!(fil.ratio(hb) > 10.0, "fil {fil} hb {hb}");
    }

    #[test]
    fn rapids_overtakes_hb_at_large_batches() {
        // Fig. 10g-h: past ~700K records the cuDF fixed cost amortizes and
        // RAPIDS wins for the big HIGGS model.
        let forest = RandomForest::synthetic_full(
            &ForestConfig::classification(128, 28, 2).with_depth(10),
            1,
        );
        let stats = ModelStats::of(&forest);
        let hb = HummingbirdGpu::p100();
        let fil = crate::fil::RapidsFil::p100();
        assert!(hb.estimate(&stats, 10_000).total() < fil.estimate(&stats, 10_000).total());
        assert!(hb.estimate(&stats, 1_000_000).total() > fil.estimate(&stats, 1_000_000).total());
    }

    #[test]
    fn traced_estimate_reconstructs_exactly() {
        let hb = HummingbirdGpu::p100();
        let shallow = ModelStats::of(&RandomForest::synthetic_full(
            &ForestConfig::classification(32, 4, 2).with_depth(3),
            2,
        ));
        let deep = ModelStats::of(&RandomForest::synthetic_full(
            &ForestConfig::classification(128, 28, 2).with_depth(10),
            1,
        ));
        for (s, n) in [(shallow, 1u64), (deep, 1_000_000)] {
            let tracer = Tracer::new();
            let traced = hb.estimate_traced(&s, n, &tracer, SimInstant::ZERO);
            assert_eq!(traced, hb.estimate(&s, n));
            let trace = tracer.take();
            assert_eq!(trace.breakdown(Scope::Offload), traced);
        }
    }

    #[test]
    fn traced_kernel_named_by_strategy() {
        let hb = HummingbirdGpu::p100();
        let shallow = ModelStats::of(&RandomForest::synthetic_full(
            &ForestConfig::classification(32, 4, 2).with_depth(3),
            2,
        ));
        let tracer = Tracer::new();
        hb.estimate_traced(&shallow, 100, &tracer, SimInstant::ZERO);
        assert!(tracer
            .take()
            .events()
            .iter()
            .any(|e| e.name == "gemm kernel"));
    }

    #[test]
    fn shallow_trees_use_gemm_costing() {
        let hb = HummingbirdGpu::p100();
        let shallow = ModelStats::of(&RandomForest::synthetic_full(
            &ForestConfig::classification(32, 4, 2).with_depth(3),
            2,
        ));
        let deep = ModelStats::of(&RandomForest::synthetic_full(
            &ForestConfig::classification(32, 4, 2).with_depth(10),
            2,
        ));
        // GEMM on a depth-3 tree evaluates 15 nodes vs 4 levels of
        // traversal; deep trees only walk depth+1 despite 2047 nodes.
        let t_shallow = hb.estimate(&shallow, 1 << 20).get(Stage::Scoring);
        let t_deep = hb.estimate(&deep, 1 << 20).get(Stage::Scoring);
        let ratio = t_deep.ratio(t_shallow);
        assert!(ratio < 3.0, "deep/shallow scoring ratio {ratio}");
    }
}
