//! The RAPIDS-FIL-like backend ("GPU-RAPIDS").

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use mlscore_backend::{BackendError, Lowered, ScoringBackend};
use mlscore_data::{ColumnarFrame, TabularFrame};
use mlscore_forest::{FlatForest, ModelStats, Predictions, RandomForest, Task};
use mlscore_sim::{SimDuration, SimInstant, Stage, TimingBreakdown};
use mlscore_telemetry::{Scope, Tracer};

use crate::device::GpuDevice;
use crate::divergence::warp_efficiency;
use crate::MAX_LAUNCH_LANES;

/// Timing-model constants for the FIL strategy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FilCostParams {
    /// Fixed cost of the cuDF dataframe conversion (the paper measured
    /// ~120 ms at its 1M-record input size; most of it is fixed Python-side
    /// setup, the rest scales with bytes).
    pub cudf_fixed: SimDuration,
    /// Per-byte cost of the cuDF conversion.
    pub cudf_per_byte: SimDuration,
    /// Node visits retired per SM per cycle with no divergence (issue-width
    /// limited: a visit is a dependent load-compare-select chain).
    pub visits_per_sm_cycle: f64,
    /// Kernel invocations per scoring call (tree loading + inference +
    /// reduction).
    pub kernels_per_call: u32,
}

impl Default for FilCostParams {
    fn default() -> Self {
        Self {
            cudf_fixed: SimDuration::from_millis(95.0),
            cudf_per_byte: SimDuration::from_nanos(0.05),
            visits_per_sm_cycle: 2.0,
            kernels_per_call: 6,
        }
    }
}

/// The "GPU-RAPIDS" backend: cuDF conversion plus divergent per-thread tree
/// traversal on the GPU. Binary classification only, as in the paper
/// ("there are only two output classes for this dataset, thus the model is
/// ... also supported by GPU RAPIDS").
///
/// # Example
///
/// ```
/// use mlscore_backend::{ScoringBackend, ScoringRequest};
/// use mlscore_data::Dataset;
/// use mlscore_forest::{ForestConfig, RandomForest};
/// use mlscore_gpu::RapidsFil;
///
/// let forest = RandomForest::synthetic_full(
///     &ForestConfig::classification(8, 28, 2).with_depth(6),
///     2,
/// );
/// let data = Dataset::higgs(40, 4).normalized();
/// let req = ScoringRequest::new(&forest, data.frame())?;
/// let preds = RapidsFil::p100().score(&req)?;
/// assert_eq!(preds.len(), 40);
/// # Ok::<(), mlscore_backend::BackendError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RapidsFil {
    device: GpuDevice,
    params: FilCostParams,
}

impl RapidsFil {
    /// FIL on the paper's Tesla P100.
    pub fn p100() -> Self {
        Self::new(GpuDevice::tesla_p100(), FilCostParams::default())
    }

    /// Fully custom construction.
    pub fn new(device: GpuDevice, params: FilCostParams) -> Self {
        Self { device, params }
    }

    /// The device model.
    pub fn device(&self) -> &GpuDevice {
        &self.device
    }

    fn check_supported(&self, task: Task) -> Result<(), BackendError> {
        match task {
            Task::Classification { n_classes: 2 } => Ok(()),
            Task::Classification { n_classes } => Err(BackendError::unsupported(
                "GPU-RAPIDS",
                format!("only binary classification is supported, model has {n_classes} classes"),
            )),
            Task::Regression => Err(BackendError::unsupported(
                "GPU-RAPIDS",
                "regression models are routed to Hummingbird in this study",
            )),
        }
    }
}

impl ScoringBackend for RapidsFil {
    fn name(&self) -> &str {
        "GPU-RAPIDS"
    }

    fn supports(&self, stats: &ModelStats) -> Result<(), BackendError> {
        self.check_supported(stats.task())
    }

    // Lowering builds the FIL device node table: the dense flat image whose
    // (total_nodes × 16 B) size is exactly what the model-h2d transfer in
    // the cost model charges for.
    fn lower(&self, forest: &RandomForest) -> Result<Lowered, BackendError> {
        self.check_supported(forest.task())?;
        let flat = FlatForest::from_forest(forest, forest.max_depth())?;
        Ok(Lowered::Custom(Arc::new(flat)))
    }

    fn score_lowered(
        &self,
        forest: &RandomForest,
        lowered: &Lowered,
        frame: &TabularFrame,
    ) -> Result<Predictions, BackendError> {
        self.check_supported(forest.task())?;
        let flat = match lowered {
            Lowered::Custom(any) => any.downcast_ref::<FlatForest>().ok_or_else(|| {
                BackendError::artifact("GPU-RAPIDS", "custom artifact is not a FIL node table")
            })?,
            other => {
                return Err(BackendError::artifact(
                    "GPU-RAPIDS",
                    format!("expected a FIL node table artifact, got {other:?}"),
                ))
            }
        };
        // The RAPIDS path really converts the row-major batch into a
        // columnar (cuDF-like) frame first, then each "block" gathers its
        // record from the columns and the trees vote over the node table.
        // Functionally identical to a straight vote over rows; the
        // conversion is the work the DataPreprocessing stage charges for.
        let columnar = ColumnarFrame::from_rows(frame);
        let mut row = vec![0f32; columnar.n_features()];
        let mut votes = Vec::new();
        let mut classes = Vec::with_capacity(columnar.n_rows());
        for i in 0..columnar.n_rows() {
            columnar.gather_row(i, &mut row);
            classes.push(flat.score_one_with(&row, &mut votes) as u32);
        }
        Ok(Predictions::Classes(classes))
    }

    fn estimate(&self, stats: &ModelStats, n_records: u64) -> TimingBreakdown {
        self.estimate_traced(stats, n_records, &Tracer::disabled(), SimInstant::ZERO)
    }

    fn estimate_traced(
        &self,
        stats: &ModelStats,
        n_records: u64,
        tracer: &Tracer,
        start: SimInstant,
    ) -> TimingBreakdown {
        let d = &self.device;
        let p = &self.params;
        let mut b = TimingBreakdown::new();

        // cuDF conversion (host-side pre-processing).
        let input_bytes = n_records * stats.row_bytes() as u64;
        let cudf = p.cudf_fixed + p.cudf_per_byte * input_bytes as f64;
        b.add(Stage::DataPreprocessing, cudf);

        // Model + records to device, results back.
        let model_bytes = (stats.total_nodes * 16) as u64;
        let model_h2d = d.link.transfer(model_bytes);
        let records_h2d = d.link.transfer(input_bytes);
        b.add(Stage::InputTransfer, model_h2d + records_h2d);
        let results_d2h = d.link.transfer(n_records * 4);
        b.add(Stage::ResultTransfer, results_d2h);

        // Kernel: divergent traversal, compute- or memory-bound.
        let visits = n_records as f64 * stats.visits_per_record();
        let eff = warp_efficiency(stats.max_depth);
        let visit_rate = d.sms as f64 * d.clock.hz() * p.visits_per_sm_cycle * eff;
        let compute = SimDuration::from_secs(visits / visit_rate);
        let miss = d.l2_miss_fraction((stats.total_nodes * 16) as u64);
        let traffic = visits * 16.0 * miss + (input_bytes + n_records * 4) as f64;
        let memory = d.memory_time(traffic);
        let kernel = compute.max(memory);
        b.add(Stage::Scoring, kernel);

        // Launch + driver costs.
        let launches = d.kernel_launch * p.kernels_per_call as f64;
        b.add(
            Stage::SoftwareOverhead,
            launches + SimDuration::from_micros(200.0),
        );

        if tracer.is_enabled() {
            let name = <Self as ScoringBackend>::name(self);
            // Spans are *recorded* in the breakdown's add order (result d2h
            // before the kernel span), but *placed* on the timeline in
            // execution order: cuDF, transfers, kernel, result transfer,
            // driver teardown.
            let t = tracer
                .span("cudf conversion", start)
                .stage(Stage::DataPreprocessing)
                .scope(Scope::Offload)
                .track(name, "offload")
                .meta("input_bytes", input_bytes.to_string())
                .finish_after(cudf);
            let t = tracer
                .span("model h2d", t)
                .stage(Stage::InputTransfer)
                .scope(Scope::Offload)
                .track(name, "offload")
                .meta("bytes", model_bytes.to_string())
                .finish_after(model_h2d);
            let t_kernel = tracer
                .span("records h2d", t)
                .stage(Stage::InputTransfer)
                .scope(Scope::Offload)
                .track(name, "offload")
                .meta("bytes", input_bytes.to_string())
                .finish_after(records_h2d);
            let t_results = tracer
                .span("results d2h", t_kernel + kernel)
                .stage(Stage::ResultTransfer)
                .scope(Scope::Offload)
                .track(name, "offload")
                .finish_after(results_d2h);
            tracer
                .span("fil inference kernel", t_kernel)
                .stage(Stage::Scoring)
                .scope(Scope::Offload)
                .track(name, "offload")
                .meta(
                    "bound",
                    if memory > compute {
                        "memory"
                    } else {
                        "compute"
                    },
                )
                .meta("warp_efficiency", format!("{eff:.3}"))
                .finish_after(kernel);
            tracer
                .span("kernel launches", t_results)
                .stage(Stage::SoftwareOverhead)
                .scope(Scope::Offload)
                .track(name, "host")
                .meta("kernels", p.kernels_per_call.to_string())
                .finish_after(launches);
            tracer
                .span("driver overhead", t_results + launches)
                .stage(Stage::SoftwareOverhead)
                .scope(Scope::Offload)
                .track(name, "host")
                .finish_after(SimDuration::from_micros(200.0));
            // Detail: the individual launches inside the launch span.
            let mut tl = t_results;
            for k in 0..(p.kernels_per_call as usize).min(MAX_LAUNCH_LANES) {
                tl = tracer
                    .span(format!("launch {k}"), tl)
                    .track(name, "launches")
                    .finish_after(d.kernel_launch);
            }
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlscore_backend::ScoringRequest;
    use mlscore_data::Dataset;
    use mlscore_forest::ForestConfig;

    fn binary_forest(n_trees: usize, depth: usize) -> RandomForest {
        RandomForest::synthetic_full(
            &ForestConfig::classification(n_trees, 28, 2).with_depth(depth),
            11,
        )
    }

    #[test]
    fn predictions_match_reference() {
        let forest = binary_forest(16, 6);
        let data = Dataset::higgs(200, 3).normalized();
        let req = ScoringRequest::new(&forest, data.frame()).unwrap();
        let preds = RapidsFil::p100().score(&req).unwrap();
        assert_eq!(preds, forest.predict_batch(data.frame().as_slice()));
    }

    #[test]
    fn multiclass_rejected_like_the_paper() {
        let iris_model =
            RandomForest::synthetic_full(&ForestConfig::classification(4, 4, 3).with_depth(4), 1);
        let stats = ModelStats::of(&iris_model);
        let err = RapidsFil::p100().supports(&stats).unwrap_err();
        assert!(matches!(err, BackendError::Unsupported { .. }));
        let data = Dataset::iris(10, 1).normalized();
        let req = ScoringRequest::new(&iris_model, data.frame()).unwrap();
        assert!(RapidsFil::p100().score(&req).is_err());
    }

    #[test]
    fn regression_rejected() {
        let reg = RandomForest::synthetic_full(&ForestConfig::regression(2, 4).with_depth(3), 1);
        assert!(RapidsFil::p100().supports(&ModelStats::of(&reg)).is_err());
    }

    #[test]
    fn small_batches_pay_the_cudf_floor() {
        let stats = ModelStats::of(&binary_forest(1, 6));
        let b = RapidsFil::p100().estimate(&stats, 1);
        // Fig. 9e: RAPIDS latency is very high (~120 ms) at tiny batches.
        assert!(b.total().as_millis() > 80.0, "total {}", b.total());
        let (stage, _) = b.dominant().unwrap();
        assert_eq!(stage, Stage::DataPreprocessing);
    }

    #[test]
    fn estimate_grows_with_records_and_model() {
        let fil = RapidsFil::p100();
        let small = ModelStats::of(&binary_forest(1, 6));
        let big = ModelStats::of(&binary_forest(128, 10));
        assert!(fil.estimate(&big, 1_000_000).total() > fil.estimate(&small, 1_000_000).total());
        assert!(fil.estimate(&big, 1_000_000).total() > fil.estimate(&big, 1_000).total());
    }

    #[test]
    fn traced_estimate_reconstructs_exactly() {
        let fil = RapidsFil::p100();
        for (s, n) in [
            (ModelStats::of(&binary_forest(1, 6)), 1u64),
            (ModelStats::of(&binary_forest(128, 10)), 1_000_000),
        ] {
            let tracer = Tracer::new();
            let traced = fil.estimate_traced(&s, n, &tracer, SimInstant::ZERO);
            assert_eq!(traced, fil.estimate(&s, n));
            let trace = tracer.take();
            assert_eq!(trace.breakdown(Scope::Offload), traced);
        }
    }

    #[test]
    fn traced_result_transfer_placed_after_kernel() {
        // Recording order preserves the breakdown's stage order
        // (ResultTransfer before Scoring), but the timeline places the
        // result copy after the kernel finishes.
        let fil = RapidsFil::p100();
        let tracer = Tracer::new();
        let s = ModelStats::of(&binary_forest(16, 8));
        fil.estimate_traced(&s, 50_000, &tracer, SimInstant::ZERO);
        let trace = tracer.take();
        let events = trace.events();
        let kernel = events
            .iter()
            .find(|e| e.name == "fil inference kernel")
            .unwrap();
        let results = events.iter().find(|e| e.name == "results d2h").unwrap();
        assert_eq!(results.start, kernel.end());
        let result_pos = events.iter().position(|e| e.name == "results d2h").unwrap();
        let kernel_pos = events
            .iter()
            .position(|e| e.name == "fil inference kernel")
            .unwrap();
        assert!(result_pos < kernel_pos, "recording order follows add order");
    }

    #[test]
    fn deeper_trees_hurt_via_divergence() {
        let fil = RapidsFil::p100();
        let d6 = ModelStats::of(&binary_forest(64, 6));
        let d10 = ModelStats::of(&binary_forest(64, 10));
        let t6 = fil.estimate(&d6, 1_000_000).get(Stage::Scoring);
        let t10 = fil.estimate(&d10, 1_000_000).get(Stage::Scoring);
        // Visits grow 11/7 = 1.57x; divergence makes scoring grow faster.
        assert!(t10.ratio(t6) > 1.6, "ratio {}", t10.ratio(t6));
    }
}
