//! Warp divergence modelling.
//!
//! In RAPIDS FIL, the 32 threads of a warp walk different trees (and warps
//! walk different records), so condition outcomes diverge and the warp
//! serializes — the paper's explanation for RAPIDS' lower warp-execution
//! efficiency, worsening with tree depth ("the strategy is less effective
//! at higher tree depths due to control divergence across trees").
//!
//! We provide two estimators: an analytic [`warp_efficiency`] used by the
//! FIL timing model, and [`measured_divergence`], which empirically walks a
//! real forest with real records grouped into warps of 32 lanes and reports
//! the achieved lane-activity fraction — used by tests to sanity-check the
//! analytic curve and by the A3 ablation.

use mlscore_data::TabularFrame;
use mlscore_forest::RandomForest;

/// Analytic warp execution efficiency for traversal at the given tree
/// depth: each extra level multiplies path disagreement, degrading lane
/// activity roughly harmonically. Calibrated so depth-10 trees land near
/// the ~40-50% efficiency implied by the paper's nvprof observations.
pub fn warp_efficiency(depth: usize) -> f64 {
    1.0 / (1.0 + 0.12 * depth as f64)
}

/// Empirically measures lane activity for `forest` over `frame`, modelling
/// a FIL-style mapping: each warp covers 32 (record, tree) lanes; a step is
/// one tree level; lanes that already reached a leaf idle while any lane in
/// the warp still walks.
///
/// Returns the fraction of lane-steps that were active (1.0 = no
/// divergence). Empty inputs return 1.0.
pub fn measured_divergence(forest: &RandomForest, frame: &TabularFrame) -> f64 {
    let mut active_steps = 0u64;
    let mut total_steps = 0u64;
    let mut warp: Vec<usize> = Vec::with_capacity(32);
    let mut flush = |warp: &mut Vec<usize>| {
        if warp.is_empty() {
            return;
        }
        let max = *warp.iter().max().expect("non-empty warp") as u64;
        active_steps += warp.iter().map(|&v| v as u64).sum::<u64>();
        total_steps += max * warp.len() as u64;
        warp.clear();
    };
    for row in frame.rows() {
        for tree in forest.trees() {
            let (_, visited) = tree.predict_counting(row);
            warp.push(visited);
            if warp.len() == 32 {
                flush(&mut warp);
            }
        }
    }
    flush(&mut warp);
    if total_steps == 0 {
        1.0
    } else {
        active_steps as f64 / total_steps as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlscore_data::Dataset;
    use mlscore_forest::ForestConfig;

    #[test]
    fn analytic_efficiency_decreases_with_depth() {
        assert!(warp_efficiency(0) == 1.0);
        assert!(warp_efficiency(6) > warp_efficiency(10));
        let e10 = warp_efficiency(10);
        assert!((0.35..0.55).contains(&e10), "depth-10 efficiency {e10}");
    }

    #[test]
    fn full_trees_have_no_divergence() {
        // Every path in a full tree has identical length, so lanes never
        // idle regardless of data.
        let forest =
            RandomForest::synthetic_full(&ForestConfig::classification(8, 4, 2).with_depth(6), 3);
        let data = Dataset::iris(64, 1).normalized();
        assert_eq!(measured_divergence(&forest, data.frame()), 1.0);
    }

    #[test]
    fn capped_trees_diverge() {
        // Leaf-capped trees have uneven path lengths; lane activity must
        // drop below 1.
        let forest = RandomForest::synthetic_capped(
            &ForestConfig::classification(8, 4, 2).with_depth(10),
            50,
            3,
        );
        let data = Dataset::iris(64, 1).normalized();
        let eff = measured_divergence(&forest, data.frame());
        assert!(eff < 0.999, "efficiency {eff}");
        assert!(eff > 0.2, "efficiency {eff}");
    }

    #[test]
    fn empty_input_reports_unity() {
        let forest =
            RandomForest::synthetic_full(&ForestConfig::classification(1, 4, 2).with_depth(2), 1);
        let frame = TabularFrame::from_rows(vec![], 4).unwrap();
        assert_eq!(measured_divergence(&forest, &frame), 1.0);
    }
}
