//! GPU backends: an analytic NVIDIA P100 device model with the two scoring
//! strategies the paper benchmarks.
//!
//! * [`RapidsFil`] — RAPIDS cuML forest inference ("GPU-RAPIDS"): one thread
//!   block per record, trees cyclically distributed over threads, real
//!   divergent traversal, preceded by a fixed-cost cuDF dataframe
//!   conversion (~120 ms at the paper's input size). Binary classification
//!   only, as in the paper.
//! * [`HummingbirdGpu`] — Hummingbird ("GPU-HB"): trees compiled to tensor
//!   computations; no warp divergence (SM efficiency ~100% per the paper's
//!   nvprof analysis) but redundant work and more memory traffic.
//!
//! Both are *functional* (they compute real predictions, verified against
//! reference traversal) and carry calibrated timing models (see DESIGN.md
//! §2 and §5 for the substitution argument and constants).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod device;
pub mod divergence;
pub mod fil;
pub mod hummingbird;

pub use device::GpuDevice;
pub use divergence::{measured_divergence, warp_efficiency};
pub use fil::{FilCostParams, RapidsFil};
pub use hummingbird::{HummingbirdCostParams, HummingbirdGpu};

/// Cap on per-launch detail spans in traced estimates, so deep models do
/// not flood the trace with one span per kernel launch.
pub(crate) const MAX_LAUNCH_LANES: usize = 8;
