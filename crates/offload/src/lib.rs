//! Accelerator offload models: the PCIe link, the paper's Fig. 6
//! `O`/`L`/`C_A` decomposition, and the LogCA analytic accelerator model
//! (Altaf & Wood, ISCA '17) the paper cites for reasoning about offload
//! break-even points.
//!
//! # Example
//!
//! ```
//! use mlscore_offload::PcieLink;
//!
//! let link = PcieLink::gen3_x16();
//! // Streaming 1M HIGGS records (112 MB) takes ~9 ms at ~12 GB/s effective.
//! let t = link.transfer(112_000_000);
//! assert!(t.as_millis() > 8.0 && t.as_millis() < 11.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod logca;
pub mod model;
pub mod pcie;

pub use logca::LogCa;
pub use model::{OffloadCosts, OffloadSummary};
pub use pcie::{PcieGeneration, PcieLink};
