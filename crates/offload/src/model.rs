//! The Fig. 6 offload decomposition.
//!
//! Option 1 runs scoring on the host (`C_H`); Option 2 offloads it, paying
//! setup/signalling overhead `O`, data transfer `L`, and accelerator compute
//! `C_A`. An offload is worth it exactly when `O + L + C_A < C_H`. This
//! module turns a backend's [`TimingBreakdown`] into those aggregates and
//! answers the worth-it question.

use serde::{Deserialize, Serialize};

use mlscore_sim::{SimDuration, StageClass, TimingBreakdown};

/// The `O` / `L` / `C_A` aggregates of one offloaded execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OffloadCosts {
    /// Setup, completion signalling, and host software overheads (`O`).
    pub overhead: SimDuration,
    /// Host–accelerator data movement (`L`).
    pub transfer: SimDuration,
    /// Accelerator compute time (`C_A`).
    pub compute: SimDuration,
}

impl OffloadCosts {
    /// Extracts the aggregates from a backend breakdown (pipeline-class
    /// stages are ignored; they belong to Fig. 11, not Fig. 6).
    pub fn from_breakdown(breakdown: &TimingBreakdown) -> Self {
        Self {
            overhead: breakdown.total_class(StageClass::Overhead),
            transfer: breakdown.total_class(StageClass::Transfer),
            compute: breakdown.total_class(StageClass::Compute),
        }
    }

    /// Total offloaded execution time `O + L + C_A`.
    pub fn total(&self) -> SimDuration {
        self.overhead + self.transfer + self.compute
    }

    /// Fraction of the total that is pure overhead (`(O + L) / total`);
    /// 0 when the total is zero.
    pub fn overhead_fraction(&self) -> f64 {
        let total = self.total();
        if total.is_zero() {
            0.0
        } else {
            (self.overhead + self.transfer).ratio(total)
        }
    }
}

/// Comparison of running on the host vs. offloading.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OffloadSummary {
    /// Host execution time (`C_H` in Fig. 6 Option 1).
    pub host: SimDuration,
    /// The offloaded execution's cost aggregates (Option 2).
    pub offload: OffloadCosts,
}

impl OffloadSummary {
    /// Builds a summary from the host time and an accelerator breakdown.
    pub fn new(host: SimDuration, accelerator: &TimingBreakdown) -> Self {
        Self {
            host,
            offload: OffloadCosts::from_breakdown(accelerator),
        }
    }

    /// `true` when offloading beats the host end to end.
    pub fn beneficial(&self) -> bool {
        self.offload.total() < self.host
    }

    /// End-to-end speedup of offloading over the host (values below 1 mean
    /// the offload lost).
    pub fn speedup(&self) -> f64 {
        self.host.ratio(self.offload.total())
    }

    /// Speedup of the *compute alone* (`C_H / C_A`) — the number prior works
    /// report when they ignore offload overheads; comparing it with
    /// [`OffloadSummary::speedup`] is the paper's core argument.
    pub fn kernel_speedup(&self) -> f64 {
        self.host.ratio(self.offload.compute)
    }

    /// The latency penalty factor of a *wrong* decision to offload
    /// (`>= 1`; the paper reports up to 10x for tiny jobs).
    pub fn mispick_penalty(&self) -> f64 {
        if self.beneficial() {
            1.0
        } else {
            self.offload.total().ratio(self.host)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlscore_sim::Stage;

    fn ms(v: f64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn breakdown(o: f64, l: f64, c: f64) -> TimingBreakdown {
        let mut b = TimingBreakdown::new();
        b.add(Stage::AcceleratorSetup, ms(o / 2.0));
        b.add(Stage::SoftwareOverhead, ms(o / 2.0));
        b.add(Stage::InputTransfer, ms(l / 2.0));
        b.add(Stage::ResultTransfer, ms(l / 2.0));
        b.add(Stage::Scoring, ms(c));
        b
    }

    #[test]
    fn aggregates_by_class() {
        let costs = OffloadCosts::from_breakdown(&breakdown(1.0, 2.0, 4.0));
        assert_eq!(costs.overhead, ms(1.0));
        assert_eq!(costs.transfer, ms(2.0));
        assert_eq!(costs.compute, ms(4.0));
        assert_eq!(costs.total(), ms(7.0));
        assert!((costs.overhead_fraction() - 3.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn pipeline_stages_are_excluded() {
        let mut b = breakdown(1.0, 1.0, 1.0);
        b.add(Stage::PythonInvocation, ms(100.0));
        let costs = OffloadCosts::from_breakdown(&b);
        assert_eq!(costs.total(), ms(3.0));
    }

    #[test]
    fn beneficial_iff_offload_is_faster() {
        let fast_accel = OffloadSummary::new(ms(100.0), &breakdown(1.0, 1.0, 2.0));
        assert!(fast_accel.beneficial());
        assert!(fast_accel.speedup() > 20.0);
        assert_eq!(fast_accel.mispick_penalty(), 1.0);

        let tiny_job = OffloadSummary::new(ms(0.4), &breakdown(1.0, 1.0, 2.0));
        assert!(!tiny_job.beneficial());
        assert!(tiny_job.mispick_penalty() == 10.0);
    }

    #[test]
    fn kernel_speedup_exceeds_end_to_end() {
        // The paper's point: prior work reports C_H/C_A, but the user sees
        // C_H/(O+L+C_A), which is always smaller.
        let s = OffloadSummary::new(ms(40.0), &breakdown(2.0, 6.0, 2.0));
        assert!(s.kernel_speedup() > s.speedup());
        assert_eq!(s.kernel_speedup(), 20.0);
        assert_eq!(s.speedup(), 4.0);
    }

    #[test]
    fn zero_total_overhead_fraction() {
        let costs = OffloadCosts::from_breakdown(&TimingBreakdown::new());
        assert_eq!(costs.overhead_fraction(), 0.0);
    }
}
