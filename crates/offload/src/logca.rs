//! The LogCA analytic accelerator model (Altaf & Wood, ISCA '17), which the
//! paper cites (\[42\]) as prior work on accelerator overhead modelling.
//!
//! LogCA describes an offload with five parameters:
//!
//! * `L` — per-byte link latency (we fold it into `beta`, the inverse
//!   bandwidth),
//! * `o` — fixed offload overhead,
//! * `g` — granularity: the number of work items offloaded at once,
//! * `C` — computational index: host time per work item,
//! * `A` — acceleration: how many times faster the accelerator computes.
//!
//! With linear kernels (true for forest scoring: work scales with records)
//! the accelerated time is `T_acc(g) = o + beta * g + C * g / A` and the
//! host time is `T_host(g) = C * g`, giving closed forms for speedup, the
//! break-even granularity `g1`, and the peak speedup as `g -> inf` — the
//! same crossover structure Figures 9 and 10 display empirically.

use serde::{Deserialize, Serialize};

use mlscore_sim::SimDuration;

/// A LogCA model instance with linear (`beta`) transfer cost.
///
/// # Example
///
/// ```
/// use mlscore_offload::LogCa;
/// use mlscore_sim::SimDuration;
///
/// let m = LogCa::new(
///     SimDuration::from_millis(1.0),  // o: fixed offload overhead
///     SimDuration::from_nanos(10.0),  // beta: transfer time per item
///     SimDuration::from_micros(1.0),  // C: host time per item
///     50.0,                            // A: acceleration
/// );
/// // Break-even sits near o / (C(1-1/A) - beta) ≈ 1021 items.
/// let g1 = m.break_even().unwrap();
/// assert!(g1 > 1000.0 && g1 < 1050.0);
/// assert!(m.speedup(10.0) < 1.0);      // tiny jobs lose
/// assert!(m.speedup(1_000_000.0) > 30.0); // big jobs approach peak (~33x)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogCa {
    overhead: SimDuration,
    beta: SimDuration,
    host_per_item: SimDuration,
    acceleration: f64,
}

impl LogCa {
    /// Creates a model.
    ///
    /// # Panics
    ///
    /// Panics unless `acceleration > 0` and `host_per_item > 0`.
    pub fn new(
        overhead: SimDuration,
        beta: SimDuration,
        host_per_item: SimDuration,
        acceleration: f64,
    ) -> Self {
        assert!(acceleration > 0.0, "acceleration must be positive");
        assert!(
            !host_per_item.is_zero(),
            "host time per item must be positive"
        );
        Self {
            overhead,
            beta,
            host_per_item,
            acceleration,
        }
    }

    /// Host execution time for granularity `g`.
    pub fn host_time(&self, g: f64) -> SimDuration {
        self.host_per_item * g
    }

    /// Accelerated execution time for granularity `g`:
    /// `o + beta*g + C*g/A`.
    pub fn accelerated_time(&self, g: f64) -> SimDuration {
        self.overhead + self.beta * g + self.host_per_item * (g / self.acceleration)
    }

    /// End-to-end speedup at granularity `g`.
    pub fn speedup(&self, g: f64) -> f64 {
        self.host_time(g).ratio(self.accelerated_time(g))
    }

    /// Peak speedup as `g -> inf`: `C / (beta + C/A)`.
    pub fn peak_speedup(&self) -> f64 {
        let c = self.host_per_item.as_secs();
        c / (self.beta.as_secs() + c / self.acceleration)
    }

    /// Break-even granularity `g1` where speedup is exactly 1, or `None`
    /// when the offload can never win (peak speedup <= 1).
    pub fn break_even(&self) -> Option<f64> {
        let c = self.host_per_item.as_secs();
        let denom = c * (1.0 - 1.0 / self.acceleration) - self.beta.as_secs();
        if denom <= 0.0 {
            return None;
        }
        Some(self.overhead.as_secs() / denom)
    }

    /// Granularity reaching half the peak speedup (`g_{A/2}` in the LogCA
    /// paper), or `None` when the offload never wins.
    pub fn half_peak_granularity(&self) -> Option<f64> {
        let target = self.peak_speedup() / 2.0;
        if target <= 0.0 || self.peak_speedup() <= 1.0 {
            return None;
        }
        // speedup(g) = c*g / (o + (beta + c/A) g) = target
        // => g (c - target*(beta + c/A)) = target * o
        let c = self.host_per_item.as_secs();
        let slope = self.beta.as_secs() + c / self.acceleration;
        let denom = c - target * slope;
        if denom <= 0.0 {
            return None;
        }
        Some(target * self.overhead.as_secs() / denom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> LogCa {
        LogCa::new(
            SimDuration::from_millis(2.0),
            SimDuration::from_nanos(100.0),
            SimDuration::from_micros(2.0),
            40.0,
        )
    }

    #[test]
    fn speedup_is_monotone_in_granularity() {
        let m = model();
        let mut prev = 0.0;
        for g in [1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6, 1e7] {
            let s = m.speedup(g);
            assert!(s > prev, "speedup must grow with g");
            prev = s;
        }
    }

    #[test]
    fn speedup_approaches_peak() {
        let m = model();
        assert!((m.speedup(1e9) - m.peak_speedup()).abs() < 0.01 * m.peak_speedup());
    }

    #[test]
    fn break_even_crosses_one() {
        let m = model();
        let g1 = m.break_even().unwrap();
        assert!(m.speedup(g1 * 0.9) < 1.0);
        assert!(m.speedup(g1 * 1.1) > 1.0);
        assert!((m.speedup(g1) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hopeless_offload_has_no_break_even() {
        // Transfer slower than the host computes: never worth it.
        let m = LogCa::new(
            SimDuration::from_millis(1.0),
            SimDuration::from_micros(5.0),
            SimDuration::from_micros(2.0),
            100.0,
        );
        assert!(m.break_even().is_none());
        assert!(m.peak_speedup() < 1.0);
        assert!(m.half_peak_granularity().is_none());
    }

    #[test]
    fn half_peak_reaches_half_of_peak() {
        let m = model();
        let g = m.half_peak_granularity().unwrap();
        assert!((m.speedup(g) - m.peak_speedup() / 2.0).abs() < 1e-6 * m.peak_speedup());
    }

    #[test]
    fn bigger_overhead_pushes_break_even_right() {
        let small = model();
        let big = LogCa::new(
            SimDuration::from_millis(20.0),
            SimDuration::from_nanos(100.0),
            SimDuration::from_micros(2.0),
            40.0,
        );
        assert!(big.break_even().unwrap() > small.break_even().unwrap() * 9.0);
    }
}
