//! PCIe link timing model.
//!
//! Both accelerators in the paper attach over PCIe 3.0 x16. Transfers are
//! modelled with the alpha-beta form: a fixed per-DMA setup latency (driver
//! call, descriptor ring, doorbell) plus streaming at the link's *effective*
//! bandwidth (raw lane rate derated by encoding and DMA protocol
//! efficiency).

use serde::{Deserialize, Serialize};

use mlscore_sim::{Bandwidth, SimDuration};

/// PCIe generation, determining the per-lane data rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PcieGeneration {
    /// 8 GT/s per lane, 128b/130b encoding (~0.985 GB/s/lane raw).
    Gen3,
    /// 16 GT/s per lane (~1.969 GB/s/lane raw).
    Gen4,
    /// 32 GT/s per lane (~3.938 GB/s/lane raw).
    Gen5,
}

impl PcieGeneration {
    /// Raw per-lane bandwidth in bytes/s after line encoding.
    pub fn lane_bytes_per_sec(self) -> f64 {
        match self {
            PcieGeneration::Gen3 => 8e9 / 8.0 * (128.0 / 130.0),
            PcieGeneration::Gen4 => 16e9 / 8.0 * (128.0 / 130.0),
            PcieGeneration::Gen5 => 32e9 / 8.0 * (128.0 / 130.0),
        }
    }
}

/// A PCIe link with a DMA-setup latency and protocol efficiency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PcieLink {
    generation: PcieGeneration,
    lanes: u8,
    /// Fraction of raw bandwidth achieved by DMA streaming (TLP headers,
    /// flow control, completions). ~0.75–0.8 is typical for large DMAs.
    efficiency: f64,
    /// Fixed host-side latency to start one DMA.
    dma_setup: SimDuration,
}

impl PcieLink {
    /// Creates a link.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero or `efficiency` is outside `(0, 1]`.
    pub fn new(
        generation: PcieGeneration,
        lanes: u8,
        efficiency: f64,
        dma_setup: SimDuration,
    ) -> Self {
        assert!(lanes > 0, "link needs at least one lane");
        assert!(
            efficiency > 0.0 && efficiency <= 1.0,
            "efficiency must be in (0, 1]"
        );
        Self {
            generation,
            lanes,
            efficiency,
            dma_setup,
        }
    }

    /// The paper's link: PCIe 3.0 x16, ~12 GB/s effective, with a 30 µs DMA
    /// setup cost.
    pub fn gen3_x16() -> Self {
        Self::new(
            PcieGeneration::Gen3,
            16,
            0.78,
            SimDuration::from_micros(30.0),
        )
    }

    /// A Gen4 x16 link (ablation A1).
    pub fn gen4_x16() -> Self {
        Self::new(
            PcieGeneration::Gen4,
            16,
            0.78,
            SimDuration::from_micros(30.0),
        )
    }

    /// A Gen5 x16 link (ablation A1).
    pub fn gen5_x16() -> Self {
        Self::new(
            PcieGeneration::Gen5,
            16,
            0.78,
            SimDuration::from_micros(30.0),
        )
    }

    /// The link generation.
    pub fn generation(&self) -> PcieGeneration {
        self.generation
    }

    /// Lane count.
    pub fn lanes(&self) -> u8 {
        self.lanes
    }

    /// Raw link bandwidth (before protocol derating).
    pub fn raw_bandwidth(&self) -> Bandwidth {
        Bandwidth::from_bytes_per_sec(self.generation.lane_bytes_per_sec() * self.lanes as f64)
    }

    /// Effective streaming bandwidth seen by large DMAs.
    pub fn effective_bandwidth(&self) -> Bandwidth {
        self.raw_bandwidth().derated(self.efficiency)
    }

    /// The fixed per-DMA setup latency.
    pub fn dma_setup(&self) -> SimDuration {
        self.dma_setup
    }

    /// Returns a copy with a different DMA setup latency.
    pub fn with_dma_setup(mut self, dma_setup: SimDuration) -> Self {
        self.dma_setup = dma_setup;
        self
    }

    /// Total time for one DMA of `bytes`: setup + streaming.
    pub fn transfer(&self, bytes: u64) -> SimDuration {
        self.dma_setup + self.effective_bandwidth().transfer_time(bytes)
    }

    /// Streaming-only time (no setup) — used when a transfer overlaps
    /// computation and only the rate matters.
    pub fn stream(&self, bytes: u64) -> SimDuration {
        self.effective_bandwidth().transfer_time(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen3_x16_effective_bandwidth_near_12gbs() {
        let link = PcieLink::gen3_x16();
        let bw = link.effective_bandwidth().gb_per_sec();
        assert!((11.0..13.0).contains(&bw), "bw {bw}");
    }

    #[test]
    fn generations_double_bandwidth() {
        let g3 = PcieLink::gen3_x16().effective_bandwidth().bytes_per_sec();
        let g4 = PcieLink::gen4_x16().effective_bandwidth().bytes_per_sec();
        let g5 = PcieLink::gen5_x16().effective_bandwidth().bytes_per_sec();
        assert!((g4 / g3 - 2.0).abs() < 1e-9);
        assert!((g5 / g4 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn transfer_includes_setup_stream_does_not() {
        let link = PcieLink::gen3_x16();
        let t = link.transfer(0);
        assert_eq!(t, link.dma_setup());
        assert_eq!(link.stream(0), mlscore_sim::SimDuration::ZERO);
        assert!(link.transfer(1 << 20) > link.stream(1 << 20));
    }

    #[test]
    fn small_transfers_are_latency_dominated() {
        let link = PcieLink::gen3_x16();
        let small = link.transfer(64);
        // 64 bytes stream in ~5 ns; setup is 30 µs.
        assert!(small.as_micros() < 31.0 && small.as_micros() > 29.0);
    }

    #[test]
    fn with_dma_setup_overrides() {
        let link = PcieLink::gen3_x16().with_dma_setup(SimDuration::from_micros(1.0));
        assert_eq!(link.dma_setup(), SimDuration::from_micros(1.0));
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lanes_rejected() {
        PcieLink::new(PcieGeneration::Gen3, 0, 0.8, SimDuration::ZERO);
    }
}
