//! Property tests on the simulated-time primitives: the algebra every cost
//! model in the workspace leans on.

use proptest::prelude::*;

use mlscore_sim::{
    Bandwidth, CacheHierarchy, CacheLevel, ClockRate, SimDuration, Stage, TimingBreakdown,
};

fn arb_duration() -> impl Strategy<Value = SimDuration> {
    (0.0f64..1e6).prop_map(SimDuration::from_micros)
}

fn arb_stage() -> impl Strategy<Value = Stage> {
    prop_oneof![
        Just(Stage::InputTransfer),
        Just(Stage::AcceleratorSetup),
        Just(Stage::Scoring),
        Just(Stage::CompletionSignal),
        Just(Stage::ResultTransfer),
        Just(Stage::SoftwareOverhead),
        Just(Stage::ModelPreprocessing),
        Just(Stage::DataPreprocessing),
        Just(Stage::PythonInvocation),
        Just(Stage::DataTransfer),
        Just(Stage::PostProcessing),
    ]
}

proptest! {
    #[test]
    fn duration_addition_is_commutative_and_monotone(
        a in arb_duration(),
        b in arb_duration(),
    ) {
        prop_assert_eq!(a + b, b + a);
        prop_assert!(a + b >= a);
        prop_assert!(a + b >= b);
        prop_assert_eq!((a + b) - b <= a + SimDuration::from_nanos(1.0), true);
    }

    #[test]
    fn duration_subtraction_saturates(a in arb_duration(), b in arb_duration()) {
        let d = a - b;
        prop_assert!(d >= SimDuration::ZERO);
        if a >= b {
            prop_assert!((d.as_secs() - (a.as_secs() - b.as_secs())).abs() < 1e-15);
        } else {
            prop_assert_eq!(d, SimDuration::ZERO);
        }
    }

    #[test]
    fn scaling_distributes_over_addition(
        a in arb_duration(),
        b in arb_duration(),
        k in 0.0f64..1e3,
    ) {
        let lhs = (a + b) * k;
        let rhs = a * k + b * k;
        prop_assert!((lhs.as_secs() - rhs.as_secs()).abs() <= 1e-9 * lhs.as_secs().max(1e-30));
    }

    #[test]
    fn min_max_partition(a in arb_duration(), b in arb_duration()) {
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(lo <= hi);
        prop_assert_eq!(lo + hi, a + b);
    }

    #[test]
    fn breakdown_total_equals_sum_of_entries(
        entries in proptest::collection::vec((arb_stage(), arb_duration()), 0..24),
    ) {
        let breakdown: TimingBreakdown = entries.iter().copied().collect();
        let expected: SimDuration = entries.iter().map(|(_, d)| *d).sum();
        prop_assert!(
            (breakdown.total().as_secs() - expected.as_secs()).abs()
                <= 1e-9 * expected.as_secs().max(1e-30)
        );
        // Per-stage accumulation matches a manual tally.
        for (stage, _) in &entries {
            let manual: SimDuration = entries
                .iter()
                .filter(|(s, _)| s == stage)
                .map(|(_, d)| *d)
                .sum();
            prop_assert!(
                (breakdown.get(*stage).as_secs() - manual.as_secs()).abs()
                    <= 1e-9 * manual.as_secs().max(1e-30)
            );
        }
    }

    #[test]
    fn breakdown_merge_adds_totals(
        a in proptest::collection::vec((arb_stage(), arb_duration()), 0..12),
        b in proptest::collection::vec((arb_stage(), arb_duration()), 0..12),
    ) {
        let ba: TimingBreakdown = a.into_iter().collect();
        let bb: TimingBreakdown = b.into_iter().collect();
        let mut merged = ba.clone();
        merged.merge(&bb);
        let want = ba.total() + bb.total();
        prop_assert!(
            (merged.total().as_secs() - want.as_secs()).abs()
                <= 1e-9 * want.as_secs().max(1e-30)
        );
    }

    #[test]
    fn breakdown_scaling_scales_total(
        entries in proptest::collection::vec((arb_stage(), arb_duration()), 1..12),
        k in 0.0f64..100.0,
    ) {
        let b: TimingBreakdown = entries.into_iter().collect();
        let scaled = b.scaled(k);
        prop_assert!(
            (scaled.total().as_secs() - b.total().as_secs() * k).abs()
                <= 1e-9 * (b.total().as_secs() * k).max(1e-30)
        );
    }

    #[test]
    fn dominant_is_maximal(
        entries in proptest::collection::vec((arb_stage(), arb_duration()), 1..12),
    ) {
        let b: TimingBreakdown = entries.into_iter().collect();
        let (_, top) = b.dominant().unwrap();
        for (_, d) in b.iter() {
            prop_assert!(d <= top);
        }
    }

    #[test]
    fn fractions_sum_to_one(
        entries in proptest::collection::vec((arb_stage(), 1.0f64..1e6), 1..12),
    ) {
        let b: TimingBreakdown = entries
            .into_iter()
            .map(|(s, us)| (s, SimDuration::from_micros(us)))
            .collect();
        let total: f64 = b.iter().map(|(s, _)| b.fraction(s)).sum::<f64>();
        // Stages are deduplicated by `iter`, so fractions over distinct
        // stages must sum to 1.
        prop_assert!((total - 1.0).abs() < 1e-9, "fractions sum {total}");
    }

    #[test]
    fn bandwidth_transfer_scales_linearly(gb in 0.1f64..100.0, bytes in 0u64..1 << 40) {
        let bw = Bandwidth::from_gb_per_sec(gb);
        let one = bw.transfer_time(bytes);
        let two = bw.transfer_time(bytes * 2);
        prop_assert!((two.as_secs() - 2.0 * one.as_secs()).abs() <= 1e-9 * two.as_secs().max(1e-30));
    }

    #[test]
    fn clock_cycles_compose(mhz in 1.0f64..5_000.0, a in 0u64..1 << 30, b in 0u64..1 << 30) {
        let c = ClockRate::from_mhz(mhz);
        let lhs = c.cycles(a + b);
        let rhs = c.cycles(a) + c.cycles(b);
        prop_assert!((lhs.as_secs() - rhs.as_secs()).abs() <= 1e-9 * lhs.as_secs().max(1e-30));
    }

    #[test]
    fn cache_cost_monotone_in_working_set(ws_a in 1u64..1 << 36, ws_b in 1u64..1 << 36) {
        let h = CacheHierarchy::new(
            vec![
                CacheLevel::new(32 << 10, SimDuration::from_nanos(1.5)),
                CacheLevel::new(1 << 20, SimDuration::from_nanos(5.0)),
                CacheLevel::new(32 << 20, SimDuration::from_nanos(20.0)),
            ],
            SimDuration::from_nanos(90.0),
        );
        let (lo, hi) = if ws_a <= ws_b { (ws_a, ws_b) } else { (ws_b, ws_a) };
        prop_assert!(h.access_cost(lo) <= h.access_cost(hi));
        prop_assert!(h.access_cost(hi) <= SimDuration::from_nanos(90.0));
        prop_assert!(h.access_cost(lo) >= SimDuration::from_nanos(1.5));
    }
}
