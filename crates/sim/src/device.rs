//! The [`DeviceLedger`] slot-reservation model shared by the consolidation
//! analysis and the serving engine.
//!
//! Both `pipeline::concurrency` (offline makespan analysis) and
//! `mlscore-serve` (discrete-event serving simulation) need the same
//! primitive: a device with a fixed number of concurrent execution slots
//! (an FPGA card is one exclusive slot, a GPU exposes N streams, a CPU has
//! one seat per pool worker), where each unit of work occupies one slot for
//! a known duration and work beyond the slot count queues. Keeping the
//! reservation arithmetic here, in one place, guarantees the two analyses
//! cannot drift apart.

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimInstant};

/// Per-slot occupancy ledger for one device.
///
/// Reservations are greedy earliest-free-slot (ties broken by lowest slot
/// index), which is exact for the FIFO dispatch both users perform: work is
/// placed on the slot that frees first, starting no earlier than its ready
/// time.
///
/// # Example
///
/// ```
/// use mlscore_sim::{DeviceLedger, SimDuration, SimInstant};
///
/// let mut fpga = DeviceLedger::new(1);
/// let job = SimDuration::from_millis(4.0);
/// let (s0, e0) = fpga.reserve(SimInstant::ZERO, job);
/// let (s1, _) = fpga.reserve(SimInstant::ZERO, job);
/// assert_eq!(s0, SimInstant::ZERO);
/// assert_eq!(s1, e0); // exclusive device: second pass queues
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceLedger {
    free_at: Vec<SimInstant>,
    busy: SimDuration,
    reservations: u64,
}

impl DeviceLedger {
    /// Creates a ledger with `slots` concurrent execution slots, all free
    /// at the epoch.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    pub fn new(slots: usize) -> Self {
        assert!(slots > 0, "a device needs at least one slot");
        Self {
            free_at: vec![SimInstant::ZERO; slots],
            busy: SimDuration::ZERO,
            reservations: 0,
        }
    }

    /// Number of concurrent execution slots.
    pub fn slots(&self) -> usize {
        self.free_at.len()
    }

    /// Returns `true` if some slot is free at (or before) `at`.
    pub fn has_free_slot(&self, at: SimInstant) -> bool {
        self.free_at.iter().any(|&t| t <= at)
    }

    /// The earliest instant any slot frees.
    pub fn next_free(&self) -> SimInstant {
        *self.free_at.iter().min().expect("at least one slot")
    }

    /// The instant the last reserved work completes (the epoch if nothing
    /// was reserved).
    pub fn completion(&self) -> SimInstant {
        *self.free_at.iter().max().expect("at least one slot")
    }

    /// Reserves the earliest-free slot for `dur` of work that becomes ready
    /// at `ready`, returning the `(start, end)` the work occupies. Ties
    /// between equally free slots go to the lowest index, so replays are
    /// deterministic.
    pub fn reserve(&mut self, ready: SimInstant, dur: SimDuration) -> (SimInstant, SimInstant) {
        let slot = self
            .free_at
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.cmp(b.1).then(a.0.cmp(&b.0)))
            .map(|(i, _)| i)
            .expect("at least one slot");
        let start = if self.free_at[slot] > ready {
            self.free_at[slot]
        } else {
            ready
        };
        let end = start + dur;
        self.free_at[slot] = end;
        self.busy += dur;
        self.reservations += 1;
        (start, end)
    }

    /// Total slot-seconds of reserved work.
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Number of reservations made.
    pub fn reservations(&self) -> u64 {
        self.reservations
    }

    /// Fraction of slot-capacity used over `[epoch, horizon]`: busy time
    /// over `slots x horizon`. Zero for a zero horizon.
    pub fn utilization(&self, horizon: SimDuration) -> f64 {
        if horizon.is_zero() {
            0.0
        } else {
            self.busy.as_secs() / (horizon.as_secs() * self.slots() as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: f64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn single_slot_serializes_work() {
        let mut d = DeviceLedger::new(1);
        let (s0, e0) = d.reserve(SimInstant::ZERO, ms(10.0));
        let (s1, e1) = d.reserve(SimInstant::ZERO, ms(5.0));
        assert_eq!(s0, SimInstant::ZERO);
        assert_eq!(s1, e0);
        assert_eq!(e1, SimInstant::ZERO + ms(15.0));
        assert_eq!(d.completion(), e1);
        assert_eq!(d.busy_time(), ms(15.0));
        assert_eq!(d.reservations(), 2);
    }

    #[test]
    fn multi_slot_runs_concurrently_then_queues() {
        let mut d = DeviceLedger::new(2);
        let (_, e0) = d.reserve(SimInstant::ZERO, ms(10.0));
        let (s1, _) = d.reserve(SimInstant::ZERO, ms(10.0));
        assert_eq!(s1, SimInstant::ZERO, "second stream is concurrent");
        let (s2, _) = d.reserve(SimInstant::ZERO, ms(1.0));
        assert_eq!(s2, e0, "third job waits for the earliest slot");
    }

    #[test]
    fn identical_jobs_complete_in_ceil_q_over_slots_rounds() {
        // The algebraic form `ceil(q / slots) * dur` the consolidation
        // analysis used to hard-code for one card must fall out of the
        // ledger for any card count.
        for slots in [1usize, 2, 3, 4] {
            let mut d = DeviceLedger::new(slots);
            let q = 10u32;
            for _ in 0..q {
                d.reserve(SimInstant::ZERO, ms(7.0));
            }
            let rounds = (q as usize).div_ceil(slots) as f64;
            assert_eq!(d.completion(), SimInstant::ZERO + ms(7.0) * rounds);
        }
    }

    #[test]
    fn ready_time_defers_start() {
        let mut d = DeviceLedger::new(2);
        let ready = SimInstant::from_secs(1.0);
        let (s, e) = d.reserve(ready, ms(2.0));
        assert_eq!(s, ready);
        assert_eq!(e, ready + ms(2.0));
        assert!(d.has_free_slot(ready));
        assert_eq!(d.next_free(), SimInstant::ZERO);
    }

    #[test]
    fn utilization_accounts_slot_capacity() {
        let mut d = DeviceLedger::new(2);
        d.reserve(SimInstant::ZERO, ms(10.0));
        // 10 ms busy over 2 slots x 10 ms horizon = 50%.
        assert!((d.utilization(ms(10.0)) - 0.5).abs() < 1e-12);
        assert_eq!(d.utilization(SimDuration::ZERO), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_rejected() {
        let _ = DeviceLedger::new(0);
    }
}
