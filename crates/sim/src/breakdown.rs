//! Stage taxonomy and per-stage timing breakdowns.
//!
//! Figures 7 and 11 of the paper are stacked-bar breakdowns of where time goes
//! in the FPGA offload path and in the end-to-end T-SQL query. The
//! [`TimingBreakdown`] type is the common currency: every backend and the
//! pipeline simulator produce one, and the figure generators render them.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// A named stage of the scoring or query pipeline.
///
/// The variants cover the union of the stages in Fig. 6 (offload overhead
/// decomposition), Fig. 7 (FPGA scoring-time components), and Fig. 11
/// (end-to-end query components). Each stage belongs to a [`StageClass`]
/// mapping it onto the paper's `O` / `L` / `C` taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Stage {
    /// Transferring the model (and any non-overlapped input data) to the
    /// accelerator (`L` in Fig. 6).
    InputTransfer,
    /// Configuring the accelerator and setting up the communication link —
    /// CSR writes for the FPGA (`O`).
    AcceleratorSetup,
    /// The scoring computation itself (`C_A` on an accelerator, `C_H` on the
    /// host CPU).
    Scoring,
    /// Signalling task completion back to the host (interrupt) (`O`).
    CompletionSignal,
    /// Copying scoring results back to host memory (`L`).
    ResultTransfer,
    /// Host-side driver/API call overhead around the offload (`O`).
    SoftwareOverhead,
    /// Deserializing the ML model inside the Python process (Fig. 11).
    ModelPreprocessing,
    /// Extracting features / preparing input data for the scoring engine
    /// (Fig. 11). For GPU-RAPIDS this includes the cuDF conversion.
    DataPreprocessing,
    /// Launching the external Python process (Fig. 11).
    PythonInvocation,
    /// Transparent copy of data and results between SQL Server and the
    /// external Python process (Fig. 11).
    DataTransfer,
    /// Assembling prediction results into the returned DataFrame.
    PostProcessing,
}

impl Stage {
    /// The coarse overhead class of this stage in the paper's `O`/`L`/`C`
    /// decomposition (Fig. 6), extended with `Pipeline` for the
    /// application-level stages of Fig. 11.
    pub fn class(self) -> StageClass {
        match self {
            Stage::InputTransfer | Stage::ResultTransfer => StageClass::Transfer,
            Stage::AcceleratorSetup | Stage::CompletionSignal | Stage::SoftwareOverhead => {
                StageClass::Overhead
            }
            Stage::Scoring => StageClass::Compute,
            Stage::ModelPreprocessing
            | Stage::DataPreprocessing
            | Stage::PythonInvocation
            | Stage::DataTransfer
            | Stage::PostProcessing => StageClass::Pipeline,
        }
    }

    /// All stages that appear in the Fig. 7 FPGA scoring-time breakdown, in
    /// the paper's plotting order.
    pub fn fpga_breakdown_order() -> [Stage; 6] {
        [
            Stage::InputTransfer,
            Stage::AcceleratorSetup,
            Stage::Scoring,
            Stage::CompletionSignal,
            Stage::ResultTransfer,
            Stage::SoftwareOverhead,
        ]
    }

    /// All stages that appear in the Fig. 11 end-to-end query breakdown, in
    /// the paper's plotting order.
    pub fn query_breakdown_order() -> [Stage; 5] {
        [
            Stage::PythonInvocation,
            Stage::DataTransfer,
            Stage::ModelPreprocessing,
            Stage::DataPreprocessing,
            Stage::Scoring,
        ]
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Stage::InputTransfer => "input transfer",
            Stage::AcceleratorSetup => "accelerator setup",
            Stage::Scoring => "scoring",
            Stage::CompletionSignal => "completion signal",
            Stage::ResultTransfer => "result transfer",
            Stage::SoftwareOverhead => "software overhead",
            Stage::ModelPreprocessing => "model pre-processing",
            Stage::DataPreprocessing => "data pre-processing",
            Stage::PythonInvocation => "python invocation",
            Stage::DataTransfer => "data transfer",
            Stage::PostProcessing => "post-processing",
        };
        f.write_str(name)
    }
}

/// Coarse classification of a [`Stage`] per the paper's Fig. 6 taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StageClass {
    /// `O` — setup, signalling, and host software costs of an offload.
    Overhead,
    /// `L` — data movement between host and accelerator.
    Transfer,
    /// `C` — the scoring computation itself.
    Compute,
    /// Application/analytics pipeline stages outside the offload itself.
    Pipeline,
}

/// An ordered collection of `(stage, duration)` entries.
///
/// Stages are kept in insertion order (matching plotting order) and adding a
/// duration to an existing stage accumulates into it.
///
/// # Example
///
/// ```
/// use mlscore_sim::{SimDuration, Stage, TimingBreakdown};
///
/// let mut b = TimingBreakdown::new();
/// b.add(Stage::Scoring, SimDuration::from_millis(2.0));
/// b.add(Stage::Scoring, SimDuration::from_millis(1.0));
/// assert_eq!(b.get(Stage::Scoring), SimDuration::from_millis(3.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimingBreakdown {
    entries: Vec<(Stage, SimDuration)>,
}

impl TimingBreakdown {
    /// Creates an empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a breakdown holding a single stage.
    pub fn of(stage: Stage, d: SimDuration) -> Self {
        let mut b = Self::new();
        b.add(stage, d);
        b
    }

    /// Adds `d` to `stage`, accumulating if the stage is already present.
    pub fn add(&mut self, stage: Stage, d: SimDuration) {
        if let Some(entry) = self.entries.iter_mut().find(|(s, _)| *s == stage) {
            entry.1 += d;
        } else {
            self.entries.push((stage, d));
        }
    }

    /// The duration recorded for `stage` (zero if absent).
    pub fn get(&self, stage: Stage) -> SimDuration {
        self.entries
            .iter()
            .find(|(s, _)| *s == stage)
            .map(|(_, d)| *d)
            .unwrap_or(SimDuration::ZERO)
    }

    /// Total duration across all stages.
    pub fn total(&self) -> SimDuration {
        self.entries.iter().map(|(_, d)| *d).sum()
    }

    /// Total duration attributed to a given [`StageClass`].
    pub fn total_class(&self, class: StageClass) -> SimDuration {
        self.entries
            .iter()
            .filter(|(s, _)| s.class() == class)
            .map(|(_, d)| *d)
            .sum()
    }

    /// The stage with the largest share of time, if any.
    pub fn dominant(&self) -> Option<(Stage, SimDuration)> {
        self.entries.iter().copied().max_by_key(|(_, d)| *d)
    }

    /// Fraction of total time spent in `stage` (0 when the total is zero).
    pub fn fraction(&self, stage: Stage) -> f64 {
        let total = self.total();
        if total.is_zero() {
            0.0
        } else {
            self.get(stage).ratio(total)
        }
    }

    /// Merges another breakdown into this one, stage by stage.
    pub fn merge(&mut self, other: &TimingBreakdown) {
        for (stage, d) in &other.entries {
            self.add(*stage, *d);
        }
    }

    /// Returns a copy with every stage scaled by `factor`.
    ///
    /// Useful for amortizing a per-batch breakdown over batches.
    pub fn scaled(&self, factor: f64) -> TimingBreakdown {
        TimingBreakdown {
            entries: self
                .entries
                .iter()
                .map(|(s, d)| (*s, *d * factor))
                .collect(),
        }
    }

    /// Iterates over `(stage, duration)` entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (Stage, SimDuration)> + '_ {
        self.entries.iter().copied()
    }

    /// Number of distinct stages recorded.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no stage has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl fmt::Display for TimingBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.entries.is_empty() {
            return write!(f, "(empty breakdown)");
        }
        let total = self.total();
        for (i, (stage, d)) in self.entries.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(
                f,
                "{stage:<22} {d:>12}  ({:5.1}%)",
                d.ratio(total) * 100.0,
                stage = stage.to_string(),
                d = d.to_string(),
            )?;
        }
        writeln!(f)?;
        write!(f, "{:<22} {:>12}", "TOTAL", total.to_string())
    }
}

impl FromIterator<(Stage, SimDuration)> for TimingBreakdown {
    fn from_iter<I: IntoIterator<Item = (Stage, SimDuration)>>(iter: I) -> Self {
        let mut b = TimingBreakdown::new();
        for (s, d) in iter {
            b.add(s, d);
        }
        b
    }
}

impl Extend<(Stage, SimDuration)> for TimingBreakdown {
    fn extend<I: IntoIterator<Item = (Stage, SimDuration)>>(&mut self, iter: I) {
        for (s, d) in iter {
            self.add(s, d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: f64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn add_accumulates_per_stage() {
        let mut b = TimingBreakdown::new();
        b.add(Stage::Scoring, ms(1.0));
        b.add(Stage::Scoring, ms(2.0));
        b.add(Stage::InputTransfer, ms(0.5));
        assert_eq!(b.get(Stage::Scoring), ms(3.0));
        assert_eq!(b.len(), 2);
        assert_eq!(b.total(), ms(3.5));
    }

    #[test]
    fn missing_stage_reads_zero() {
        let b = TimingBreakdown::new();
        assert_eq!(b.get(Stage::ResultTransfer), SimDuration::ZERO);
        assert!(b.is_empty());
        assert!(b.dominant().is_none());
    }

    #[test]
    fn dominant_and_fraction() {
        let mut b = TimingBreakdown::new();
        b.add(Stage::SoftwareOverhead, ms(1.0));
        b.add(Stage::Scoring, ms(3.0));
        let (stage, d) = b.dominant().unwrap();
        assert_eq!(stage, Stage::Scoring);
        assert_eq!(d, ms(3.0));
        assert!((b.fraction(Stage::Scoring) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn class_totals_follow_fig6_taxonomy() {
        let mut b = TimingBreakdown::new();
        b.add(Stage::InputTransfer, ms(1.0));
        b.add(Stage::ResultTransfer, ms(1.0));
        b.add(Stage::AcceleratorSetup, ms(0.25));
        b.add(Stage::CompletionSignal, ms(0.25));
        b.add(Stage::SoftwareOverhead, ms(0.5));
        b.add(Stage::Scoring, ms(4.0));
        assert_eq!(b.total_class(StageClass::Transfer), ms(2.0));
        assert_eq!(b.total_class(StageClass::Overhead), ms(1.0));
        assert_eq!(b.total_class(StageClass::Compute), ms(4.0));
        assert_eq!(b.total_class(StageClass::Pipeline), SimDuration::ZERO);
    }

    #[test]
    fn merge_and_scale() {
        let mut a = TimingBreakdown::of(Stage::Scoring, ms(2.0));
        let b = TimingBreakdown::of(Stage::Scoring, ms(1.0));
        a.merge(&b);
        assert_eq!(a.get(Stage::Scoring), ms(3.0));
        let half = a.scaled(0.5);
        assert_eq!(half.get(Stage::Scoring), ms(1.5));
    }

    #[test]
    fn from_iterator_collects() {
        let b: TimingBreakdown = [
            (Stage::Scoring, ms(1.0)),
            (Stage::Scoring, ms(1.0)),
            (Stage::DataTransfer, ms(2.0)),
        ]
        .into_iter()
        .collect();
        assert_eq!(b.get(Stage::Scoring), ms(2.0));
        assert_eq!(b.get(Stage::DataTransfer), ms(2.0));
    }

    #[test]
    fn display_includes_stage_and_total() {
        let mut b = TimingBreakdown::new();
        b.add(Stage::Scoring, ms(1.0));
        let s = format!("{b}");
        assert!(s.contains("scoring"));
        assert!(s.contains("TOTAL"));
    }

    #[test]
    fn stage_orders_cover_paper_figures() {
        assert_eq!(Stage::fpga_breakdown_order().len(), 6);
        assert_eq!(Stage::query_breakdown_order().len(), 5);
        // Every FPGA breakdown stage is an offload-level class.
        for s in Stage::fpga_breakdown_order() {
            assert_ne!(s.class(), StageClass::Pipeline);
        }
    }
}
