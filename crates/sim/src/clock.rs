//! Injectable time sources.
//!
//! Simulated components never read the wall clock directly (lint `D001`):
//! anything that needs "now" takes a [`Clock`] so tests and the
//! discrete-event engines stay deterministic, and only the `repro`/bench
//! boundary injects [`WallClock`] — the single blessed adapter over
//! `std::time::Instant`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::time::{SimDuration, SimInstant};

/// A source of "now" on the simulated timeline.
///
/// Implementations must be monotone: successive `now()` calls never go
/// backwards.
pub trait Clock: Send + Sync {
    /// The current instant.
    fn now(&self) -> SimInstant;
}

/// A hand-advanced clock for tests and calibration: starts at
/// [`SimInstant::ZERO`] and moves only when told to.
#[derive(Debug, Default)]
pub struct ManualClock {
    // Nanoseconds, atomically stepped so shared references can advance it.
    nanos: AtomicU64,
}

impl ManualClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// A clock already advanced to `now`.
    pub fn at(now: SimInstant) -> Self {
        let clock = Self::new();
        clock.advance(now.duration_since(SimInstant::ZERO));
        clock
    }

    /// Moves the clock forward by `d`.
    pub fn advance(&self, d: SimDuration) {
        self.nanos
            .fetch_add(d.as_nanos().round() as u64, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now(&self) -> SimInstant {
        SimInstant::ZERO + SimDuration::from_nanos(self.nanos.load(Ordering::Relaxed) as f64)
    }
}

/// The real clock, anchored at construction so readings land on the
/// simulated timeline. Inject this only at the `repro`/bench boundary,
/// where measuring the host machine is the point.
#[derive(Debug)]
pub struct WallClock {
    anchor: Instant,
}

impl WallClock {
    /// A wall clock anchored at "now".
    pub fn new() -> Self {
        Self {
            // analyze: allow(D001, reason="the one blessed wall-clock adapter; every real measurement routes through this anchor")
            anchor: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> SimInstant {
        SimInstant::ZERO + SimDuration::from_secs(self.anchor.elapsed().as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_starts_at_zero_and_advances() {
        let clock = ManualClock::new();
        assert_eq!(clock.now(), SimInstant::ZERO);
        clock.advance(SimDuration::from_millis(2.5));
        clock.advance(SimDuration::from_millis(1.5));
        let t = clock.now();
        assert!((t.as_secs() - 0.004).abs() < 1e-12, "got {t:?}");
        let at = ManualClock::at(t);
        assert_eq!(at.now(), t);
    }

    #[test]
    fn wall_clock_is_monotone_and_spans_real_work() {
        let clock = WallClock::new();
        let t0 = clock.now();
        let mut acc = 0u64;
        for i in 0..10_000u64 {
            acc = acc.wrapping_add(i * i);
        }
        std::hint::black_box(acc);
        let t1 = clock.now();
        assert!(t1 >= t0);
        assert!(t1.duration_since(t0) >= SimDuration::ZERO);
    }

    #[test]
    fn clock_is_object_safe() {
        let clocks: Vec<Box<dyn Clock>> =
            vec![Box::new(ManualClock::new()), Box::new(WallClock::new())];
        for c in &clocks {
            let _ = c.now();
        }
    }
}
