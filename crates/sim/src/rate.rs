//! Bandwidth, clock-rate, and transfer-time helpers.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// A data-movement bandwidth in bytes per second.
///
/// # Example
///
/// ```
/// use mlscore_sim::Bandwidth;
///
/// let pcie3x16 = Bandwidth::from_gb_per_sec(12.0);
/// let t = pcie3x16.transfer_time(112_000_000); // 1M HIGGS rows
/// assert!((t.as_millis() - 9.33).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// Creates a bandwidth from bytes per second.
    ///
    /// # Panics
    ///
    /// Debug-asserts that the value is finite and positive.
    pub fn from_bytes_per_sec(bps: f64) -> Self {
        debug_assert!(bps.is_finite() && bps > 0.0, "invalid bandwidth: {bps}");
        Bandwidth(bps)
    }

    /// Creates a bandwidth from gigabytes (1e9 bytes) per second.
    pub fn from_gb_per_sec(gbps: f64) -> Self {
        Self::from_bytes_per_sec(gbps * 1e9)
    }

    /// The bandwidth in bytes per second.
    pub fn bytes_per_sec(self) -> f64 {
        self.0
    }

    /// The bandwidth in gigabytes per second.
    pub fn gb_per_sec(self) -> f64 {
        self.0 / 1e9
    }

    /// Time to move `bytes` at this bandwidth (pure streaming, no latency).
    pub fn transfer_time(self, bytes: u64) -> SimDuration {
        SimDuration::from_secs(bytes as f64 / self.0)
    }

    /// Returns this bandwidth derated by `efficiency` in `(0, 1]`,
    /// e.g. protocol/DMA efficiency on a PCIe link.
    ///
    /// # Panics
    ///
    /// Debug-asserts `0 < efficiency <= 1`.
    pub fn derated(self, efficiency: f64) -> Bandwidth {
        debug_assert!(
            efficiency > 0.0 && efficiency <= 1.0,
            "invalid efficiency: {efficiency}"
        );
        Bandwidth(self.0 * efficiency)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} GB/s", self.gb_per_sec())
    }
}

/// A clock frequency in hertz.
///
/// # Example
///
/// ```
/// use mlscore_sim::ClockRate;
///
/// let fpga = ClockRate::from_mhz(250.0);
/// assert_eq!(fpga.cycle_time().as_nanos(), 4.0);
/// assert_eq!(fpga.cycles(1_000_000).as_millis(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct ClockRate(f64);

impl ClockRate {
    /// Creates a clock rate from hertz.
    ///
    /// # Panics
    ///
    /// Debug-asserts that the value is finite and positive.
    pub fn from_hz(hz: f64) -> Self {
        debug_assert!(hz.is_finite() && hz > 0.0, "invalid clock rate: {hz}");
        ClockRate(hz)
    }

    /// Creates a clock rate from megahertz.
    pub fn from_mhz(mhz: f64) -> Self {
        Self::from_hz(mhz * 1e6)
    }

    /// Creates a clock rate from gigahertz.
    pub fn from_ghz(ghz: f64) -> Self {
        Self::from_hz(ghz * 1e9)
    }

    /// The rate in hertz.
    pub fn hz(self) -> f64 {
        self.0
    }

    /// Duration of one clock cycle.
    pub fn cycle_time(self) -> SimDuration {
        SimDuration::from_secs(1.0 / self.0)
    }

    /// Duration of `n` clock cycles.
    pub fn cycles(self, n: u64) -> SimDuration {
        SimDuration::from_secs(n as f64 / self.0)
    }
}

impl fmt::Display for ClockRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.0} MHz", self.0 / 1e6)
    }
}

/// Transfer time for `bytes` over a link with fixed `latency` plus streaming
/// at `bandwidth`.
///
/// This is the standard latency-bandwidth (alpha-beta) model used for every
/// host/accelerator copy in the reproduction.
pub fn transfer_time(bytes: u64, latency: SimDuration, bandwidth: Bandwidth) -> SimDuration {
    latency + bandwidth.transfer_time(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_transfer_time() {
        let bw = Bandwidth::from_gb_per_sec(10.0);
        assert_eq!(bw.transfer_time(10_000_000_000).as_secs(), 1.0);
        assert_eq!(bw.transfer_time(0), SimDuration::ZERO);
    }

    #[test]
    fn bandwidth_derating() {
        let raw = Bandwidth::from_gb_per_sec(15.75);
        let eff = raw.derated(0.8);
        assert!((eff.gb_per_sec() - 12.6).abs() < 1e-9);
    }

    #[test]
    fn clock_cycles() {
        let c = ClockRate::from_mhz(250.0);
        assert_eq!(c.cycle_time(), SimDuration::from_nanos(4.0));
        assert_eq!(c.cycles(250), SimDuration::from_micros(1.0));
        assert_eq!(ClockRate::from_ghz(2.6).hz(), 2.6e9);
    }

    #[test]
    fn alpha_beta_transfer() {
        let t = transfer_time(
            1_000_000,
            SimDuration::from_micros(5.0),
            Bandwidth::from_gb_per_sec(1.0),
        );
        assert!((t.as_micros() - 1005.0).abs() < 1e-9);
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            format!("{}", Bandwidth::from_gb_per_sec(12.0)),
            "12.00 GB/s"
        );
        assert_eq!(format!("{}", ClockRate::from_mhz(250.0)), "250 MHz");
    }
}
