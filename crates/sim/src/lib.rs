//! Simulated-time primitives shared by every `mlscore` device and pipeline model.
//!
//! The reproduction measures *modelled* time: every backend (CPU cost model,
//! GPU analytic model, FPGA cycle model, DBMS pipeline) reports a
//! [`TimingBreakdown`] built from [`SimDuration`] values. Keeping time in a
//! dedicated newtype (rather than `std::time::Duration`) lets models work in
//! fractional nanoseconds, scale breakdowns analytically, and stay fully
//! deterministic across machines.
//!
//! # Example
//!
//! ```
//! use mlscore_sim::{SimDuration, Stage, TimingBreakdown};
//!
//! let mut b = TimingBreakdown::new();
//! b.add(Stage::InputTransfer, SimDuration::from_micros(420.0));
//! b.add(Stage::Scoring, SimDuration::from_millis(4.0));
//! assert!(b.total() > SimDuration::from_millis(4.0));
//! assert_eq!(b.dominant().unwrap().0, Stage::Scoring);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod breakdown;
pub mod cache;
pub mod clock;
pub mod device;
pub mod rate;
pub mod time;

pub use breakdown::{Stage, StageClass, TimingBreakdown};
pub use cache::{CacheHierarchy, CacheLevel};
pub use clock::{Clock, ManualClock, WallClock};
pub use device::DeviceLedger;
pub use rate::{transfer_time, Bandwidth, ClockRate};
pub use time::{SimDuration, SimInstant};
