//! The [`SimDuration`] and [`SimInstant`] simulated-time types.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A span of simulated time, stored as `f64` seconds.
///
/// Unlike `std::time::Duration`, a `SimDuration` can hold sub-nanosecond
/// values (an FPGA clock tick at 250 MHz is 4 ns; a single pipelined scoring
/// slot may be a fraction of that after amortization) and supports scaling by
/// arbitrary `f64` factors, which analytic cost models need.
///
/// Values are expected to be non-negative and finite; constructors debug-assert
/// this. Ordering uses IEEE `total_cmp`, so `SimDuration` is `Ord`-comparable
/// through [`SimDuration::min`]/[`SimDuration::max`] and `partial_cmp` never
/// surprises for the valid (finite) domain.
///
/// # Example
///
/// ```
/// use mlscore_sim::SimDuration;
///
/// let cycle = SimDuration::from_nanos(4.0); // 250 MHz
/// let million_records = cycle * 1_000_000.0;
/// assert_eq!(million_records, SimDuration::from_millis(4.0));
/// assert_eq!(format!("{million_records}"), "4.000ms");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SimDuration(f64);

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0.0);

    /// Creates a duration from seconds.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `secs` is finite and non-negative.
    pub fn from_secs(secs: f64) -> Self {
        debug_assert!(secs.is_finite() && secs >= 0.0, "invalid duration: {secs}");
        SimDuration(secs)
    }

    /// Creates a duration from milliseconds.
    pub fn from_millis(ms: f64) -> Self {
        Self::from_secs(ms * 1e-3)
    }

    /// Creates a duration from microseconds.
    pub fn from_micros(us: f64) -> Self {
        Self::from_secs(us * 1e-6)
    }

    /// Creates a duration from nanoseconds.
    pub fn from_nanos(ns: f64) -> Self {
        Self::from_secs(ns * 1e-9)
    }

    /// The duration in seconds.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// The duration in milliseconds.
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// The duration in microseconds.
    pub fn as_micros(self) -> f64 {
        self.0 * 1e6
    }

    /// The duration in nanoseconds.
    pub fn as_nanos(self) -> f64 {
        self.0 * 1e9
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0.total_cmp(&other.0).is_le() {
            self
        } else {
            other
        }
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0.total_cmp(&other.0).is_ge() {
            self
        } else {
            other
        }
    }

    /// Returns `true` if this is exactly zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// The ratio `self / other`, i.e. how many times `other` fits in `self`.
    ///
    /// Useful for speedup computations: `baseline.ratio(accelerated)` is the
    /// speedup of the accelerated backend over the baseline.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `other` is non-zero.
    pub fn ratio(self, other: SimDuration) -> f64 {
        debug_assert!(!other.is_zero(), "ratio against zero duration");
        self.0 / other.0
    }

    /// Converts record count and this total duration into a throughput in
    /// records per second.
    pub fn throughput(self, records: u64) -> f64 {
        if self.is_zero() {
            f64::INFINITY
        } else {
            records as f64 / self.0
        }
    }
}

impl Eq for SimDuration {}

impl PartialOrd for SimDuration {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimDuration {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration((self.0 - rhs.0).max(0.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<f64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: f64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

/// A point on the simulated timeline, stored as `f64` seconds since the
/// simulation epoch (the start of the modelled query).
///
/// `SimInstant` is to [`SimDuration`] what `std::time::Instant` is to
/// `std::time::Duration`: adding a duration advances an instant, and
/// subtracting two instants yields the duration between them. Cost models
/// thread an instant through their stage arithmetic so span tracing can
/// place each stage on an absolute timeline.
///
/// # Example
///
/// ```
/// use mlscore_sim::{SimDuration, SimInstant};
///
/// let t0 = SimInstant::ZERO;
/// let t1 = t0 + SimDuration::from_micros(250.0);
/// assert_eq!(t1 - t0, SimDuration::from_micros(250.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SimInstant(f64);

impl SimInstant {
    /// The simulation epoch.
    pub const ZERO: SimInstant = SimInstant(0.0);

    /// Creates an instant `secs` seconds after the epoch.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `secs` is finite and non-negative.
    pub fn from_secs(secs: f64) -> Self {
        debug_assert!(secs.is_finite() && secs >= 0.0, "invalid instant: {secs}");
        SimInstant(secs)
    }

    /// Seconds since the simulation epoch.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Microseconds since the simulation epoch (Perfetto's `ts` unit).
    pub fn as_micros(self) -> f64 {
        self.0 * 1e6
    }

    /// The duration from `earlier` to `self`, saturating to zero if
    /// `earlier` is actually later.
    pub fn duration_since(self, earlier: SimInstant) -> SimDuration {
        SimDuration((self.0 - earlier.0).max(0.0))
    }
}

impl Eq for SimInstant {}

impl PartialOrd for SimInstant {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimInstant {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Add<SimDuration> for SimInstant {
    type Output = SimInstant;
    fn add(self, rhs: SimDuration) -> SimInstant {
        SimInstant(self.0 + rhs.as_secs())
    }
}

impl AddAssign<SimDuration> for SimInstant {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.as_secs();
    }
}

impl Sub<SimInstant> for SimInstant {
    type Output = SimDuration;
    fn sub(self, rhs: SimInstant) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl fmt::Display for SimInstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    /// Renders with an auto-selected unit: `ns`, `µs`, `ms`, or `s`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0;
        if s == 0.0 {
            write!(f, "0ns")
        } else if s < 1e-6 {
            write!(f, "{:.1}ns", s * 1e9)
        } else if s < 1e-3 {
            write!(f, "{:.2}µs", s * 1e6)
        } else if s < 1.0 {
            write!(f, "{:.3}ms", s * 1e3)
        } else {
            write!(f, "{:.3}s", s)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors_roundtrip() {
        assert_eq!(SimDuration::from_millis(1.0).as_micros(), 1000.0);
        assert_eq!(SimDuration::from_micros(1.0).as_nanos(), 1000.0);
        assert!((SimDuration::from_nanos(500.0).as_secs() - 5e-7).abs() < 1e-18);
        assert_eq!(SimDuration::from_secs(2.0).as_millis(), 2000.0);
    }

    #[test]
    fn arithmetic() {
        let a = SimDuration::from_millis(3.0);
        let b = SimDuration::from_millis(1.0);
        assert_eq!(a + b, SimDuration::from_millis(4.0));
        assert_eq!(a - b, SimDuration::from_millis(2.0));
        assert_eq!(a * 2.0, SimDuration::from_millis(6.0));
        assert_eq!(a / 3.0, SimDuration::from_millis(1.0));
    }

    #[test]
    fn subtraction_saturates_at_zero() {
        let a = SimDuration::from_millis(1.0);
        let b = SimDuration::from_millis(3.0);
        assert_eq!(a - b, SimDuration::ZERO);
    }

    #[test]
    fn min_max_ordering() {
        let a = SimDuration::from_micros(10.0);
        let b = SimDuration::from_micros(20.0);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert!(a < b);
    }

    #[test]
    fn ratio_is_speedup() {
        let cpu = SimDuration::from_millis(697.0);
        let fpga = SimDuration::from_millis(10.0);
        assert!((cpu.ratio(fpga) - 69.7).abs() < 1e-9);
    }

    #[test]
    fn throughput_records_per_second() {
        let t = SimDuration::from_millis(10.0);
        assert_eq!(t.throughput(1_000_000), 1e8);
        assert_eq!(SimDuration::ZERO.throughput(1), f64::INFINITY);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12.0)), "12.0ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12.0)), "12.00µs");
        assert_eq!(format!("{}", SimDuration::from_millis(12.0)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(1.5)), "1.500s");
        assert_eq!(format!("{}", SimDuration::ZERO), "0ns");
    }

    #[test]
    fn sum_over_iterator() {
        let total: SimDuration = (0..4).map(|_| SimDuration::from_micros(25.0)).sum();
        assert_eq!(total, SimDuration::from_micros(100.0));
    }

    #[test]
    fn instant_advances_by_duration() {
        let t0 = SimInstant::ZERO;
        let t1 = t0 + SimDuration::from_millis(2.0);
        let mut t2 = t1;
        t2 += SimDuration::from_millis(3.0);
        assert_eq!(t1 - t0, SimDuration::from_millis(2.0));
        assert_eq!(t2 - t0, SimDuration::from_millis(5.0));
        assert!(t0 < t1 && t1 < t2);
    }

    #[test]
    fn instant_duration_since_saturates() {
        let early = SimInstant::from_secs(1.0);
        let late = SimInstant::from_secs(3.0);
        assert_eq!(late.duration_since(early), SimDuration::from_secs(2.0));
        assert_eq!(early.duration_since(late), SimDuration::ZERO);
    }

    #[test]
    fn instant_display_and_micros() {
        let t = SimInstant::from_secs(0.001);
        assert_eq!(t.as_micros(), 1000.0);
        assert_eq!(format!("{t}"), "t+1.000ms");
    }
}
