//! A small working-set cache model.
//!
//! The paper attributes the CPU's and GPU's falling behind at large model /
//! record sizes to cache misses and memory traffic (§IV-C, citing forest
//! packing \[40\] and runtime tree optimizations \[41\]). We model that effect
//! with a capacity-based hierarchy: an access to a working set that fits in
//! level *i* costs that level's latency; between levels the cost is
//! interpolated smoothly so sweeps do not produce artificial cliffs.

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// One level of a cache hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheLevel {
    /// Capacity in bytes.
    pub capacity_bytes: u64,
    /// Average access latency when the working set fits in this level.
    pub access: SimDuration,
}

impl CacheLevel {
    /// Creates a level with the given capacity (bytes) and access latency.
    pub fn new(capacity_bytes: u64, access: SimDuration) -> Self {
        Self {
            capacity_bytes,
            access,
        }
    }
}

/// A multi-level cache hierarchy ending in main memory.
///
/// # Example
///
/// ```
/// use mlscore_sim::{CacheHierarchy, CacheLevel, SimDuration};
///
/// let xeon = CacheHierarchy::new(
///     vec![
///         CacheLevel::new(32 * 1024, SimDuration::from_nanos(1.5)),
///         CacheLevel::new(1024 * 1024, SimDuration::from_nanos(5.0)),
///         CacheLevel::new(36 * 1024 * 1024, SimDuration::from_nanos(18.0)),
///     ],
///     SimDuration::from_nanos(90.0),
/// );
/// // A tiny model scores out of L1:
/// assert_eq!(xeon.access_cost(16 * 1024), SimDuration::from_nanos(1.5));
/// // A model far larger than LLC pays memory latency:
/// assert_eq!(xeon.access_cost(1 << 30), SimDuration::from_nanos(90.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheHierarchy {
    levels: Vec<CacheLevel>,
    memory_access: SimDuration,
}

impl CacheHierarchy {
    /// Creates a hierarchy from innermost-to-outermost `levels` plus the main
    /// memory access latency.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty or capacities are not strictly increasing.
    pub fn new(levels: Vec<CacheLevel>, memory_access: SimDuration) -> Self {
        assert!(
            !levels.is_empty(),
            "cache hierarchy needs at least one level"
        );
        for pair in levels.windows(2) {
            assert!(
                pair[0].capacity_bytes < pair[1].capacity_bytes,
                "cache capacities must be strictly increasing"
            );
        }
        Self {
            levels,
            memory_access,
        }
    }

    /// The cache levels, innermost first.
    pub fn levels(&self) -> &[CacheLevel] {
        &self.levels
    }

    /// Main memory access latency.
    pub fn memory_access(&self) -> SimDuration {
        self.memory_access
    }

    /// Capacity of the outermost (last-level) cache in bytes.
    pub fn llc_capacity(&self) -> u64 {
        self.levels.last().expect("non-empty").capacity_bytes
    }

    /// Expected cost of one access given a resident working set of
    /// `working_set_bytes`.
    ///
    /// If the working set fits in level *i* the cost is that level's latency.
    /// When it spills past a level, the cost blends between the two
    /// neighbouring levels in proportion to the fraction of the working set
    /// that still fits (a standard capacity-miss approximation), reaching the
    /// next level's latency when the set is 4x the smaller capacity.
    pub fn access_cost(&self, working_set_bytes: u64) -> SimDuration {
        let ws = working_set_bytes.max(1) as f64;
        let mut prev = self.levels[0];
        if ws <= prev.capacity_bytes as f64 {
            return prev.access;
        }
        for level in self.levels.iter().skip(1).copied() {
            if ws <= level.capacity_bytes as f64 {
                return Self::blend(prev, level.access, ws);
            }
            prev = level;
        }
        Self::blend(prev, self.memory_access, ws)
    }

    /// Blend between `inner`'s latency and `outer_access` as the working set
    /// grows past `inner`'s capacity; saturation at 4x the inner capacity.
    fn blend(inner: CacheLevel, outer_access: SimDuration, ws: f64) -> SimDuration {
        let cap = inner.capacity_bytes as f64;
        let frac = ((ws / cap).log2() / 2.0).clamp(0.0, 1.0);
        inner.access * (1.0 - frac) + outer_access * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_level() -> CacheHierarchy {
        CacheHierarchy::new(
            vec![
                CacheLevel::new(32 << 10, SimDuration::from_nanos(1.0)),
                CacheLevel::new(1 << 20, SimDuration::from_nanos(4.0)),
                CacheLevel::new(32 << 20, SimDuration::from_nanos(16.0)),
            ],
            SimDuration::from_nanos(80.0),
        )
    }

    #[test]
    fn fits_in_l1() {
        let h = three_level();
        assert_eq!(h.access_cost(1), SimDuration::from_nanos(1.0));
        assert_eq!(h.access_cost(32 << 10), SimDuration::from_nanos(1.0));
    }

    #[test]
    fn monotone_in_working_set() {
        let h = three_level();
        let mut prev = SimDuration::ZERO;
        for shift in 10..32 {
            let cost = h.access_cost(1u64 << shift);
            assert!(cost >= prev, "cost must be non-decreasing (shift {shift})");
            prev = cost;
        }
    }

    #[test]
    fn saturates_at_memory_latency() {
        let h = three_level();
        assert_eq!(h.access_cost(16 << 30), SimDuration::from_nanos(80.0));
    }

    #[test]
    fn blending_between_levels_is_partial() {
        let h = three_level();
        // 2x L1 capacity: halfway in log2 terms towards saturation at 4x.
        let c = h.access_cost(64 << 10);
        assert!(c > SimDuration::from_nanos(1.0));
        assert!(c < SimDuration::from_nanos(4.0));
    }

    #[test]
    fn llc_capacity_reported() {
        assert_eq!(three_level().llc_capacity(), 32 << 20);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_non_increasing_capacities() {
        CacheHierarchy::new(
            vec![
                CacheLevel::new(1 << 20, SimDuration::from_nanos(4.0)),
                CacheLevel::new(1 << 20, SimDuration::from_nanos(8.0)),
            ],
            SimDuration::from_nanos(80.0),
        );
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn rejects_empty_hierarchy() {
        CacheHierarchy::new(vec![], SimDuration::from_nanos(80.0));
    }
}
