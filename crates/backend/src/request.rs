//! The scoring request handed to a backend.

use mlscore_data::TabularFrame;
use mlscore_forest::{ForestError, RandomForest};

use crate::error::BackendError;

/// A batch scoring request: a model plus the records to score.
///
/// # Example
///
/// ```
/// use mlscore_backend::ScoringRequest;
/// use mlscore_data::Dataset;
/// use mlscore_forest::{ForestConfig, RandomForest};
///
/// let forest = RandomForest::synthetic_full(
///     &ForestConfig::classification(4, 4, 3).with_depth(5),
///     1,
/// );
/// let data = Dataset::iris(100, 2).normalized();
/// let req = ScoringRequest::new(&forest, data.frame())?;
/// assert_eq!(req.n_records(), 100);
/// # Ok::<(), mlscore_backend::BackendError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ScoringRequest<'a> {
    forest: &'a RandomForest,
    frame: &'a TabularFrame,
}

impl<'a> ScoringRequest<'a> {
    /// Builds a request, validating that the frame width matches the model.
    ///
    /// # Errors
    ///
    /// Returns [`ForestError::FeatureWidthMismatch`] (wrapped) when the
    /// frame's feature count differs from the model's.
    pub fn new(forest: &'a RandomForest, frame: &'a TabularFrame) -> Result<Self, BackendError> {
        if forest.n_features() != frame.n_features() {
            return Err(ForestError::FeatureWidthMismatch {
                expected: forest.n_features(),
                got: frame.n_features(),
            }
            .into());
        }
        Ok(Self { forest, frame })
    }

    /// The model to score with.
    pub fn forest(&self) -> &'a RandomForest {
        self.forest
    }

    /// The records to score.
    pub fn frame(&self) -> &'a TabularFrame {
        self.frame
    }

    /// Number of records in the batch.
    pub fn n_records(&self) -> usize {
        self.frame.n_rows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlscore_forest::ForestConfig;

    #[test]
    fn width_mismatch_rejected() {
        let forest =
            RandomForest::synthetic_full(&ForestConfig::classification(1, 5, 2).with_depth(2), 1);
        let frame = TabularFrame::from_rows(vec![0.0; 8], 4).unwrap();
        let err = ScoringRequest::new(&forest, &frame).unwrap_err();
        assert!(matches!(
            err,
            BackendError::Forest(ForestError::FeatureWidthMismatch {
                expected: 5,
                got: 4
            })
        ));
    }

    #[test]
    fn accessors() {
        let forest =
            RandomForest::synthetic_full(&ForestConfig::classification(1, 2, 2).with_depth(2), 1);
        let frame = TabularFrame::from_rows(vec![0.0; 8], 2).unwrap();
        let req = ScoringRequest::new(&forest, &frame).unwrap();
        assert_eq!(req.n_records(), 4);
        assert_eq!(req.forest().n_features(), 2);
        assert_eq!(req.frame().n_rows(), 4);
    }
}
