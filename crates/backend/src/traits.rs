//! The [`ScoringBackend`] trait.

use mlscore_forest::{ModelStats, Predictions};
use mlscore_sim::{SimInstant, TimingBreakdown};
use mlscore_telemetry::{Scope, Tracer};

use crate::error::BackendError;
use crate::request::ScoringRequest;

/// A hardware backend that can score random forest batches.
///
/// Implementations are *functionally real* — [`ScoringBackend::score`]
/// computes actual predictions — while [`ScoringBackend::estimate`] reports
/// the backend's deterministic, calibrated timing model. Keeping the two
/// separate lets property tests assert prediction agreement across wildly
/// different execution strategies, while figure generation runs entirely on
/// modelled time.
///
/// The trait is object-safe; schedulers hold `Box<dyn ScoringBackend>`.
pub trait ScoringBackend {
    /// Short name matching the paper's figure legends (e.g.
    /// `"CPU_SKLearn"`, `"GPU-HB"`, `"FPGA"`).
    fn name(&self) -> &str;

    /// Checks whether this backend can run the given model.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::Unsupported`] with the reason (e.g.
    /// GPU-RAPIDS rejects non-binary classification; the FPGA engine rejects
    /// trees deeper than its configured capacity).
    fn supports(&self, stats: &ModelStats) -> Result<(), BackendError> {
        let _ = stats;
        Ok(())
    }

    /// Functionally scores the batch.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::Unsupported`] for models this backend cannot
    /// run, or a wrapped model error.
    fn score(&self, request: &ScoringRequest<'_>) -> Result<Predictions, BackendError>;

    /// Functionally scores the batch while recording *measured* wall-clock
    /// execution detail on `tracer`.
    ///
    /// CPU backends that execute on the shared
    /// [`ExecPool`](mlscore_exec::ExecPool) record one
    /// [`Scope::Detail`] span per pool worker, anchored at `start` on the
    /// simulated timeline (1 ns measured ↦ 1 ns simulated), so a Perfetto
    /// trace shows the pool's real occupancy. Detail spans are ignored by
    /// breakdown folds, so modelled accounting is unaffected. The default
    /// implementation just forwards to [`ScoringBackend::score`].
    ///
    /// # Errors
    ///
    /// Fails exactly when [`ScoringBackend::score`] fails.
    fn score_traced(
        &self,
        request: &ScoringRequest<'_>,
        tracer: &Tracer,
        start: SimInstant,
    ) -> Result<Predictions, BackendError> {
        let _ = (tracer, start);
        self.score(request)
    }

    /// Estimates the *overall model scoring time* breakdown (the Fig. 7
    /// quantity: everything from invoking the scoring call to having results
    /// in host memory) for scoring `n_records` with a model of the given
    /// shape.
    fn estimate(&self, stats: &ModelStats, n_records: u64) -> TimingBreakdown;

    /// Like [`ScoringBackend::estimate`], but also records the offload
    /// stages as [`Scope::Offload`] spans on `tracer`, starting at `start`
    /// on the simulated timeline.
    ///
    /// The contract every implementation (and the default) upholds:
    /// folding the recorded `Offload` spans in recording order —
    /// [`Trace::breakdown`](mlscore_telemetry::Trace::breakdown) — yields a
    /// breakdown **equal** to the returned one, stage order and `f64` sums
    /// included. Backends with internal structure worth seeing (FPGA
    /// passes, PCIe streams, CPU workers) additionally record
    /// [`Scope::Detail`] spans, which breakdowns ignore.
    ///
    /// The default implementation replays the direct estimate as one
    /// sequential span per stage.
    fn estimate_traced(
        &self,
        stats: &ModelStats,
        n_records: u64,
        tracer: &Tracer,
        start: SimInstant,
    ) -> TimingBreakdown {
        let b = self.estimate(stats, n_records);
        let mut t = start;
        for (stage, d) in b.iter() {
            t = tracer
                .span(stage.to_string(), t)
                .stage(stage)
                .scope(Scope::Offload)
                .track(self.name(), "offload")
                .meta("backend", self.name())
                .finish_after(d);
        }
        b
    }
}

/// Blanket impl so `Box<dyn ScoringBackend>` works wherever a backend does.
impl<B: ScoringBackend + ?Sized> ScoringBackend for Box<B> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn supports(&self, stats: &ModelStats) -> Result<(), BackendError> {
        (**self).supports(stats)
    }

    fn score(&self, request: &ScoringRequest<'_>) -> Result<Predictions, BackendError> {
        (**self).score(request)
    }

    fn score_traced(
        &self,
        request: &ScoringRequest<'_>,
        tracer: &Tracer,
        start: SimInstant,
    ) -> Result<Predictions, BackendError> {
        (**self).score_traced(request, tracer, start)
    }

    fn estimate(&self, stats: &ModelStats, n_records: u64) -> TimingBreakdown {
        (**self).estimate(stats, n_records)
    }

    fn estimate_traced(
        &self,
        stats: &ModelStats,
        n_records: u64,
        tracer: &Tracer,
        start: SimInstant,
    ) -> TimingBreakdown {
        (**self).estimate_traced(stats, n_records, tracer, start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlscore_sim::{SimDuration, Stage};

    #[test]
    fn trait_is_object_safe() {
        fn _takes_dyn(_b: &dyn ScoringBackend) {}
    }

    /// A backend with only `estimate` implemented, to exercise the default
    /// `estimate_traced` replay.
    struct FixedBackend;

    impl ScoringBackend for FixedBackend {
        fn name(&self) -> &str {
            "fixed"
        }

        fn score(&self, _request: &ScoringRequest<'_>) -> Result<Predictions, BackendError> {
            Ok(Predictions::Classes(vec![]))
        }

        fn estimate(&self, _stats: &ModelStats, n_records: u64) -> TimingBreakdown {
            let mut b = TimingBreakdown::new();
            b.add(Stage::SoftwareOverhead, SimDuration::from_micros(150.0));
            b.add(
                Stage::Scoring,
                SimDuration::from_nanos(70.0) * n_records as f64,
            );
            b
        }
    }

    fn fixed_stats() -> ModelStats {
        use mlscore_forest::{ForestConfig, RandomForest};
        ModelStats::of(&RandomForest::synthetic_full(
            &ForestConfig::classification(2, 4, 2).with_depth(3),
            1,
        ))
    }

    #[test]
    fn default_traced_replay_reconstructs_exactly() {
        let backend = FixedBackend;
        let tracer = Tracer::new();
        let stats = fixed_stats();
        let direct = backend.estimate(&stats, 12_345);
        let traced = backend.estimate_traced(&stats, 12_345, &tracer, SimInstant::ZERO);
        assert_eq!(direct, traced);
        let trace = tracer.take();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.breakdown(Scope::Offload), direct);
        // Spans are laid out back to back.
        assert_eq!(trace.events()[1].start, trace.events()[0].end());
    }

    #[test]
    fn boxed_backend_forwards_estimate_traced() {
        let boxed: Box<dyn ScoringBackend> = Box::new(FixedBackend);
        let tracer = Tracer::new();
        let stats = fixed_stats();
        let b = boxed.estimate_traced(&stats, 10, &tracer, SimInstant::ZERO);
        assert_eq!(tracer.take().breakdown(Scope::Offload), b);
    }
}
