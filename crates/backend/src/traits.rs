//! The [`ScoringBackend`] trait.

use mlscore_forest::{ModelStats, Predictions};
use mlscore_sim::TimingBreakdown;

use crate::error::BackendError;
use crate::request::ScoringRequest;

/// A hardware backend that can score random forest batches.
///
/// Implementations are *functionally real* — [`ScoringBackend::score`]
/// computes actual predictions — while [`ScoringBackend::estimate`] reports
/// the backend's deterministic, calibrated timing model. Keeping the two
/// separate lets property tests assert prediction agreement across wildly
/// different execution strategies, while figure generation runs entirely on
/// modelled time.
///
/// The trait is object-safe; schedulers hold `Box<dyn ScoringBackend>`.
pub trait ScoringBackend {
    /// Short name matching the paper's figure legends (e.g.
    /// `"CPU_SKLearn"`, `"GPU-HB"`, `"FPGA"`).
    fn name(&self) -> &str;

    /// Checks whether this backend can run the given model.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::Unsupported`] with the reason (e.g.
    /// GPU-RAPIDS rejects non-binary classification; the FPGA engine rejects
    /// trees deeper than its configured capacity).
    fn supports(&self, stats: &ModelStats) -> Result<(), BackendError> {
        let _ = stats;
        Ok(())
    }

    /// Functionally scores the batch.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::Unsupported`] for models this backend cannot
    /// run, or a wrapped model error.
    fn score(&self, request: &ScoringRequest<'_>) -> Result<Predictions, BackendError>;

    /// Estimates the *overall model scoring time* breakdown (the Fig. 7
    /// quantity: everything from invoking the scoring call to having results
    /// in host memory) for scoring `n_records` with a model of the given
    /// shape.
    fn estimate(&self, stats: &ModelStats, n_records: u64) -> TimingBreakdown;
}

/// Blanket impl so `Box<dyn ScoringBackend>` works wherever a backend does.
impl<B: ScoringBackend + ?Sized> ScoringBackend for Box<B> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn supports(&self, stats: &ModelStats) -> Result<(), BackendError> {
        (**self).supports(stats)
    }

    fn score(&self, request: &ScoringRequest<'_>) -> Result<Predictions, BackendError> {
        (**self).score(request)
    }

    fn estimate(&self, stats: &ModelStats, n_records: u64) -> TimingBreakdown {
        (**self).estimate(stats, n_records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_is_object_safe() {
        fn _takes_dyn(_b: &dyn ScoringBackend) {}
    }
}
