//! The [`ScoringBackend`] trait.

use std::sync::Arc;

use mlscore_data::{RecordStream, TabularFrame};
use mlscore_forest::{ModelBundle, ModelStats, Predictions, RandomForest};
use mlscore_sim::{SimInstant, TimingBreakdown};
use mlscore_telemetry::{Scope, Tracer};

use crate::artifact::{compile, CompiledModel, Lowered};
use crate::error::BackendError;
use crate::request::ScoringRequest;

/// One chunk scored off a [`RecordStream`] by
/// [`ScoringBackend::score_prepared_stream`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamChunk {
    /// Rows in the chunk.
    pub rows: usize,
    /// The scoring kernel the executor dispatched for this chunk, when
    /// the backend has a kernel tier (`None` for offload devices and for
    /// the materializing default path).
    pub kernel: Option<&'static str>,
}

/// The result of scoring a [`RecordStream`] against a prepared model.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamOutcome {
    /// Folded predictions for every streamed record, in pull order.
    pub predictions: Predictions,
    /// Total rows scored.
    pub rows: usize,
    /// Per-chunk accounting, in pull order.
    pub chunks: Vec<StreamChunk>,
}

/// A hardware backend that can score random forest batches.
///
/// Implementations are *functionally real* — [`ScoringBackend::score`]
/// computes actual predictions — while [`ScoringBackend::estimate`] reports
/// the backend's deterministic, calibrated timing model. Keeping the two
/// separate lets property tests assert prediction agreement across wildly
/// different execution strategies, while figure generation runs entirely on
/// modelled time.
///
/// # Two-phase scoring
///
/// Scoring splits into a *compile* phase and a *score* phase:
/// [`ScoringBackend::lower`] turns a deserialized model into the backend's
/// scoring representation ([`Lowered`]) once, and
/// [`ScoringBackend::score_lowered`] scores batches against it repeatedly.
/// [`ScoringBackend::prepare`] runs the whole compile pass from a
/// serialized [`ModelBundle`], producing a cacheable [`CompiledModel`]
/// consumed by [`ScoringBackend::score_prepared`].
///
/// `score` and `score_lowered` have default implementations defined in
/// terms of each other, mirroring `PartialEq::{eq, ne}`: a backend **must
/// implement at least one** of them (both defaults together recurse
/// forever). Backends with a real lowering step implement `lower` +
/// `score_lowered` and get the one-shot `score` (compile-per-call) for
/// free; trivial backends just implement `score`.
///
/// The trait is object-safe; schedulers hold `Box<dyn ScoringBackend>`.
pub trait ScoringBackend {
    /// Short name matching the paper's figure legends (e.g.
    /// `"CPU_SKLearn"`, `"GPU-HB"`, `"FPGA"`).
    fn name(&self) -> &str;

    /// Checks whether this backend can run the given model.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::Unsupported`] with the reason (e.g.
    /// GPU-RAPIDS rejects non-binary classification; the FPGA engine rejects
    /// trees deeper than its configured capacity).
    fn supports(&self, stats: &ModelStats) -> Result<(), BackendError> {
        let _ = stats;
        Ok(())
    }

    /// Fingerprint of every configuration knob that changes what
    /// [`ScoringBackend::lower`] produces — the third component of the
    /// artifact-cache key. Backends whose lowering has no knobs (the
    /// default) return an empty string.
    fn cache_config(&self) -> String {
        String::new()
    }

    /// Compiles a deserialized model into this backend's scoring
    /// representation.
    ///
    /// The default is [`Lowered::Reference`] — score the pointer trees
    /// as-is, nothing to pre-compute.
    ///
    /// # Errors
    ///
    /// Returns a [`BackendError`] when the model cannot be lowered (e.g. a
    /// tree exceeds the FPGA engine's depth capacity).
    fn lower(&self, forest: &RandomForest) -> Result<Lowered, BackendError> {
        let _ = forest;
        Ok(Lowered::Reference)
    }

    /// Functionally scores the batch, compiling on the fly.
    ///
    /// The default lowers the model and delegates to
    /// [`ScoringBackend::score_lowered`] — the one-shot compose of the two
    /// phases.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::Unsupported`] for models this backend cannot
    /// run, or a wrapped model error.
    fn score(&self, request: &ScoringRequest<'_>) -> Result<Predictions, BackendError> {
        let lowered = self.lower(request.forest())?;
        self.score_lowered(request.forest(), &lowered, request.frame())
    }

    /// Functionally scores the batch against an already-lowered model.
    ///
    /// `forest` is the source model `lowered` was compiled from; reference
    /// backends score it directly and ignore `lowered`.
    ///
    /// The default ignores `lowered` and delegates to
    /// [`ScoringBackend::score`] (see the trait docs: implement at least
    /// one of the two).
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::Artifact`] when `lowered` is not a form this
    /// backend produces, otherwise fails as [`ScoringBackend::score`] does.
    fn score_lowered(
        &self,
        forest: &RandomForest,
        lowered: &Lowered,
        frame: &TabularFrame,
    ) -> Result<Predictions, BackendError> {
        let _ = lowered;
        let request = ScoringRequest::new(forest, frame)?;
        self.score(&request)
    }

    /// Functionally scores the batch while recording *measured* wall-clock
    /// execution detail on `tracer`.
    ///
    /// CPU backends that execute on the shared
    /// [`ExecPool`](mlscore_exec::ExecPool) record one
    /// [`Scope::Detail`] span per pool worker, anchored at `start` on the
    /// simulated timeline (1 ns measured ↦ 1 ns simulated), so a Perfetto
    /// trace shows the pool's real occupancy. Detail spans are ignored by
    /// breakdown folds, so modelled accounting is unaffected.
    ///
    /// The default lowers and forwards to
    /// [`ScoringBackend::score_lowered_traced`].
    ///
    /// # Errors
    ///
    /// Fails exactly when [`ScoringBackend::score`] fails.
    fn score_traced(
        &self,
        request: &ScoringRequest<'_>,
        tracer: &Tracer,
        start: SimInstant,
    ) -> Result<Predictions, BackendError> {
        let lowered = self.lower(request.forest())?;
        self.score_lowered_traced(request.forest(), &lowered, request.frame(), tracer, start)
    }

    /// [`ScoringBackend::score_lowered`] with measured execution detail, as
    /// in [`ScoringBackend::score_traced`].
    ///
    /// The default drops the tracer and delegates to
    /// [`ScoringBackend::score_lowered`] — it must *not* route back through
    /// `score_traced`, whose default lowers again (and would recurse).
    ///
    /// # Errors
    ///
    /// Fails exactly when [`ScoringBackend::score_lowered`] fails.
    fn score_lowered_traced(
        &self,
        forest: &RandomForest,
        lowered: &Lowered,
        frame: &TabularFrame,
        tracer: &Tracer,
        start: SimInstant,
    ) -> Result<Predictions, BackendError> {
        let _ = (tracer, start);
        self.score_lowered(forest, lowered, frame)
    }

    /// Runs the full compile pass on a serialized bundle: deserialize →
    /// shape stats → [`ScoringBackend::supports`] →
    /// [`ScoringBackend::lower`], tagged with this backend's artifact key.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::Forest`] for undeserializable bundles and
    /// propagates `supports`/`lower` failures.
    fn prepare(&self, bundle: &ModelBundle) -> Result<Arc<CompiledModel>, BackendError> {
        compile(self, bundle)
    }

    /// Scores a batch against a prepared model — the warm path that skips
    /// deserialize + lower.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::Artifact`] if `model` was compiled for a
    /// different backend or feature width, otherwise fails as
    /// [`ScoringBackend::score_lowered`] does.
    fn score_prepared(
        &self,
        model: &CompiledModel,
        frame: &TabularFrame,
    ) -> Result<Predictions, BackendError> {
        model.ensure_scorable(self.name(), frame.n_features())?;
        self.score_lowered(model.forest(), model.lowered(), frame)
    }

    /// Scores every chunk of a pull-based [`RecordStream`] against a
    /// prepared model — the fused warm path: a cache-resident model scores
    /// straight off the scanner, no marshaled batch ever materializes.
    ///
    /// CPU backends override this to feed chunks directly into their
    /// kernels (reusing the stream's scratch); the default — correct for
    /// offload devices whose transfer granularity is the whole batch —
    /// drains the stream into one frame and scores it in a single
    /// [`ScoringBackend::score_prepared`] pass. Either way the contract
    /// is the same: predictions are bit-exact with scoring the stream's
    /// records as one staged frame, and `chunks` reports each pulled
    /// chunk in order.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::Artifact`] if `model` was compiled for a
    /// different backend or feature width, otherwise fails as
    /// [`ScoringBackend::score_prepared`] does.
    fn score_prepared_stream(
        &self,
        model: &CompiledModel,
        stream: &mut dyn RecordStream,
    ) -> Result<StreamOutcome, BackendError> {
        model.ensure_scorable(self.name(), stream.n_features())?;
        let (rows_hint, _) = stream.size_hint();
        let n_features = stream.n_features();
        let mut data = Vec::with_capacity(rows_hint * n_features);
        let mut chunks = Vec::new();
        while let Some(chunk) = stream.next_chunk() {
            data.extend_from_slice(chunk.as_slice());
            chunks.push(StreamChunk {
                rows: chunk.n_rows(),
                kernel: None,
            });
        }
        let frame = TabularFrame::from_rows(data, n_features)
            .map_err(|e| BackendError::unsupported(self.name(), format!("streamed frame: {e}")))?;
        let predictions = self.score_prepared(model, &frame)?;
        Ok(StreamOutcome {
            predictions,
            rows: frame.n_rows(),
            chunks,
        })
    }

    /// [`ScoringBackend::score_prepared`] with measured execution detail,
    /// as in [`ScoringBackend::score_traced`].
    ///
    /// # Errors
    ///
    /// Fails exactly when [`ScoringBackend::score_prepared`] fails.
    fn score_prepared_traced(
        &self,
        model: &CompiledModel,
        frame: &TabularFrame,
        tracer: &Tracer,
        start: SimInstant,
    ) -> Result<Predictions, BackendError> {
        model.ensure_scorable(self.name(), frame.n_features())?;
        self.score_lowered_traced(model.forest(), model.lowered(), frame, tracer, start)
    }

    /// Reports which CPU scoring kernel this backend's executor would pick
    /// for the given model shape and batch size, with the cost model's
    /// per-kernel estimates.
    ///
    /// `None` (the default) means the backend has no kernel tier to choose
    /// from — it offloads to fixed hardware or a single code path. Backends
    /// executing on the shared [`ExecPool`](mlscore_exec::ExecPool) with
    /// the vectorized tier return the
    /// [`KernelChoice`](mlscore_exec::KernelChoice) their score path will
    /// dispatch on, so schedulers and benches can surface the pick without
    /// scoring anything.
    fn kernel_choice(
        &self,
        stats: &ModelStats,
        n_records: u64,
    ) -> Option<mlscore_exec::KernelChoice> {
        let _ = (stats, n_records);
        None
    }

    /// Estimates the *overall model scoring time* breakdown (the Fig. 7
    /// quantity: everything from invoking the scoring call to having results
    /// in host memory) for scoring `n_records` with a model of the given
    /// shape.
    fn estimate(&self, stats: &ModelStats, n_records: u64) -> TimingBreakdown;

    /// Like [`ScoringBackend::estimate`], but also records the offload
    /// stages as [`Scope::Offload`] spans on `tracer`, starting at `start`
    /// on the simulated timeline.
    ///
    /// The contract every implementation (and the default) upholds:
    /// folding the recorded `Offload` spans in recording order —
    /// [`Trace::breakdown`](mlscore_telemetry::Trace::breakdown) — yields a
    /// breakdown **equal** to the returned one, stage order and `f64` sums
    /// included. Backends with internal structure worth seeing (FPGA
    /// passes, PCIe streams, CPU workers) additionally record
    /// [`Scope::Detail`] spans, which breakdowns ignore.
    ///
    /// The default implementation replays the direct estimate as one
    /// sequential span per stage.
    fn estimate_traced(
        &self,
        stats: &ModelStats,
        n_records: u64,
        tracer: &Tracer,
        start: SimInstant,
    ) -> TimingBreakdown {
        let b = self.estimate(stats, n_records);
        let mut t = start;
        for (stage, d) in b.iter() {
            t = tracer
                .span(stage.to_string(), t)
                .stage(stage)
                .scope(Scope::Offload)
                .track(self.name(), "offload")
                .meta("backend", self.name())
                .finish_after(d);
        }
        b
    }

    /// [`ScoringBackend::estimate`] against a prepared model's shape — the
    /// warm-path timing, which covers scoring only (compile time is paid at
    /// [`ScoringBackend::prepare`] and amortized by the cache).
    fn estimate_prepared(&self, model: &CompiledModel, n_records: u64) -> TimingBreakdown {
        self.estimate(model.stats(), n_records)
    }

    /// Traced variant of [`ScoringBackend::estimate_prepared`]; see
    /// [`ScoringBackend::estimate_traced`] for the span contract.
    fn estimate_prepared_traced(
        &self,
        model: &CompiledModel,
        n_records: u64,
        tracer: &Tracer,
        start: SimInstant,
    ) -> TimingBreakdown {
        self.estimate_traced(model.stats(), n_records, tracer, start)
    }
}

/// Blanket impl so `Box<dyn ScoringBackend>` works wherever a backend does.
impl<B: ScoringBackend + ?Sized> ScoringBackend for Box<B> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn supports(&self, stats: &ModelStats) -> Result<(), BackendError> {
        (**self).supports(stats)
    }

    fn cache_config(&self) -> String {
        (**self).cache_config()
    }

    fn lower(&self, forest: &RandomForest) -> Result<Lowered, BackendError> {
        (**self).lower(forest)
    }

    fn score(&self, request: &ScoringRequest<'_>) -> Result<Predictions, BackendError> {
        (**self).score(request)
    }

    fn score_lowered(
        &self,
        forest: &RandomForest,
        lowered: &Lowered,
        frame: &TabularFrame,
    ) -> Result<Predictions, BackendError> {
        (**self).score_lowered(forest, lowered, frame)
    }

    fn score_traced(
        &self,
        request: &ScoringRequest<'_>,
        tracer: &Tracer,
        start: SimInstant,
    ) -> Result<Predictions, BackendError> {
        (**self).score_traced(request, tracer, start)
    }

    fn score_lowered_traced(
        &self,
        forest: &RandomForest,
        lowered: &Lowered,
        frame: &TabularFrame,
        tracer: &Tracer,
        start: SimInstant,
    ) -> Result<Predictions, BackendError> {
        (**self).score_lowered_traced(forest, lowered, frame, tracer, start)
    }

    fn prepare(&self, bundle: &ModelBundle) -> Result<Arc<CompiledModel>, BackendError> {
        (**self).prepare(bundle)
    }

    fn score_prepared(
        &self,
        model: &CompiledModel,
        frame: &TabularFrame,
    ) -> Result<Predictions, BackendError> {
        (**self).score_prepared(model, frame)
    }

    fn score_prepared_stream(
        &self,
        model: &CompiledModel,
        stream: &mut dyn RecordStream,
    ) -> Result<StreamOutcome, BackendError> {
        (**self).score_prepared_stream(model, stream)
    }

    fn score_prepared_traced(
        &self,
        model: &CompiledModel,
        frame: &TabularFrame,
        tracer: &Tracer,
        start: SimInstant,
    ) -> Result<Predictions, BackendError> {
        (**self).score_prepared_traced(model, frame, tracer, start)
    }

    fn kernel_choice(
        &self,
        stats: &ModelStats,
        n_records: u64,
    ) -> Option<mlscore_exec::KernelChoice> {
        (**self).kernel_choice(stats, n_records)
    }

    fn estimate(&self, stats: &ModelStats, n_records: u64) -> TimingBreakdown {
        (**self).estimate(stats, n_records)
    }

    fn estimate_traced(
        &self,
        stats: &ModelStats,
        n_records: u64,
        tracer: &Tracer,
        start: SimInstant,
    ) -> TimingBreakdown {
        (**self).estimate_traced(stats, n_records, tracer, start)
    }

    fn estimate_prepared(&self, model: &CompiledModel, n_records: u64) -> TimingBreakdown {
        (**self).estimate_prepared(model, n_records)
    }

    fn estimate_prepared_traced(
        &self,
        model: &CompiledModel,
        n_records: u64,
        tracer: &Tracer,
        start: SimInstant,
    ) -> TimingBreakdown {
        (**self).estimate_prepared_traced(model, n_records, tracer, start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlscore_sim::{SimDuration, Stage};

    #[test]
    fn trait_is_object_safe() {
        fn _takes_dyn(_b: &dyn ScoringBackend) {}
    }

    /// A backend with only `estimate` implemented, to exercise the default
    /// `estimate_traced` replay.
    struct FixedBackend;

    impl ScoringBackend for FixedBackend {
        fn name(&self) -> &str {
            "fixed"
        }

        fn score(&self, _request: &ScoringRequest<'_>) -> Result<Predictions, BackendError> {
            Ok(Predictions::Classes(vec![]))
        }

        fn estimate(&self, _stats: &ModelStats, n_records: u64) -> TimingBreakdown {
            let mut b = TimingBreakdown::new();
            b.add(Stage::SoftwareOverhead, SimDuration::from_micros(150.0));
            b.add(
                Stage::Scoring,
                SimDuration::from_nanos(70.0) * n_records as f64,
            );
            b
        }
    }

    fn fixed_stats() -> ModelStats {
        use mlscore_forest::{ForestConfig, RandomForest};
        ModelStats::of(&RandomForest::synthetic_full(
            &ForestConfig::classification(2, 4, 2).with_depth(3),
            1,
        ))
    }

    #[test]
    fn default_traced_replay_reconstructs_exactly() {
        let backend = FixedBackend;
        let tracer = Tracer::new();
        let stats = fixed_stats();
        let direct = backend.estimate(&stats, 12_345);
        let traced = backend.estimate_traced(&stats, 12_345, &tracer, SimInstant::ZERO);
        assert_eq!(direct, traced);
        let trace = tracer.take();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.breakdown(Scope::Offload), direct);
        // Spans are laid out back to back.
        assert_eq!(trace.events()[1].start, trace.events()[0].end());
    }

    #[test]
    fn boxed_backend_forwards_estimate_traced() {
        let boxed: Box<dyn ScoringBackend> = Box::new(FixedBackend);
        let tracer = Tracer::new();
        let stats = fixed_stats();
        let b = boxed.estimate_traced(&stats, 10, &tracer, SimInstant::ZERO);
        assert_eq!(tracer.take().breakdown(Scope::Offload), b);
    }

    #[test]
    fn score_only_backend_gets_two_phase_defaults() {
        use mlscore_data::TabularFrame;
        use mlscore_forest::{ForestConfig, ModelBundle, RandomForest};

        // FixedBackend implements only `score`; the mutual defaults must
        // carry it through the whole prepared path.
        let backend = FixedBackend;
        let forest =
            RandomForest::synthetic_full(&ForestConfig::classification(2, 4, 2).with_depth(3), 1);
        let bundle = ModelBundle::serialize(&forest);
        let model = backend.prepare(&bundle).unwrap();
        assert_eq!(model.key().backend, "fixed");
        assert!(matches!(model.lowered(), crate::Lowered::Reference));
        let frame = TabularFrame::from_rows(vec![0.0; 8], 4).unwrap();
        let prepared = backend.score_prepared(model.as_ref(), &frame).unwrap();
        let request = ScoringRequest::new(model.forest(), &frame).unwrap();
        assert_eq!(prepared, backend.score(&request).unwrap());
        assert_eq!(
            backend.estimate_prepared(model.as_ref(), 7),
            backend.estimate(model.stats(), 7)
        );
        // Compiled for "fixed" — another backend must refuse it.
        let err = model.ensure_scorable("other", 4).unwrap_err();
        assert!(matches!(err, BackendError::Artifact { .. }));
    }

    #[test]
    fn default_stream_path_materializes_and_matches_prepared() {
        use mlscore_data::{FrameScanner, TabularFrame};
        use mlscore_forest::{ForestConfig, ModelBundle, RandomForest};

        struct Echo;
        impl ScoringBackend for Echo {
            fn name(&self) -> &str {
                "echo"
            }
            fn score(&self, request: &ScoringRequest<'_>) -> Result<Predictions, BackendError> {
                // Deterministic per-row output so chunk order matters.
                Ok(Predictions::Values(
                    request.frame().rows().map(|r| r[0]).collect(),
                ))
            }
            fn estimate(&self, _stats: &ModelStats, _n: u64) -> TimingBreakdown {
                TimingBreakdown::new()
            }
        }

        let backend = Echo;
        let forest = RandomForest::synthetic_full(&ForestConfig::regression(2, 4).with_depth(3), 1);
        let model = backend.prepare(&ModelBundle::serialize(&forest)).unwrap();
        let frame = TabularFrame::from_rows((0..40).map(|i| i as f32).collect(), 4).unwrap();
        let mut scanner = FrameScanner::new(&frame, 3);
        let outcome = backend
            .score_prepared_stream(model.as_ref(), &mut scanner)
            .unwrap();
        assert_eq!(outcome.rows, 10);
        assert_eq!(outcome.chunks.len(), 4);
        assert!(outcome.chunks.iter().all(|c| c.kernel.is_none()));
        assert_eq!(
            outcome.predictions,
            backend.score_prepared(model.as_ref(), &frame).unwrap()
        );
        // Width mismatch is refused before any pull.
        let narrow = TabularFrame::from_rows(vec![0.0; 6], 3).unwrap();
        let mut bad = FrameScanner::new(&narrow, 2);
        assert!(matches!(
            backend.score_prepared_stream(model.as_ref(), &mut bad),
            Err(BackendError::Artifact { .. })
        ));
    }
}
