//! The [`ScoringBackend`] abstraction and the CPU scoring backends.
//!
//! Every hardware backend in the study — the two CPU engines here, the GPU
//! strategies in `mlscore-gpu`, and the FPGA engine in `mlscore-fpga` —
//! implements [`ScoringBackend`]: it can *functionally* score a batch
//! (producing real predictions that property tests compare bit-for-bit
//! against reference traversal) and it can *estimate* a deterministic
//! [`TimingBreakdown`](mlscore_sim::TimingBreakdown) from a calibrated cost
//! model, which is what regenerates the paper's figures.
//!
//! The two CPU engines mirror the paper's §IV-A setup:
//!
//! * [`SklearnCpu`] — batch-optimized multi-threaded traversal
//!   ("CPU_SKLearn", 52 threads in the paper),
//! * [`OnnxCpu`] — flat-layout per-record scorer ("CPU_ONNX" with 1 thread,
//!   "CPU_ONNX_52th" with 52), cheap to invoke but not batch-optimized.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod cost;
pub mod error;
pub mod onnx;
pub mod request;
pub mod sklearn;
pub mod traits;

pub use artifact::{
    artifact_key, compile, compile_timed, compile_timed_with, ArtifactCache, ArtifactKey,
    CacheOutcome, CacheStats, CompiledModel, Lowered, PrepareTiming,
};
pub use cost::{parallel_efficiency, CpuSpec};
pub use error::BackendError;
pub use onnx::{OnnxCostParams, OnnxCpu};
pub use request::ScoringRequest;
pub use sklearn::{SklearnCostParams, SklearnCpu};
pub use traits::{ScoringBackend, StreamChunk, StreamOutcome};
