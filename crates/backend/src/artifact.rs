//! Compiled-model artifacts and the content-addressed artifact cache.
//!
//! The paper's Fig. 11 breakdown treats model pre-processing
//! (deserialization plus backend-specific lowering) as a first-class
//! overhead — and it amortizes: a model is immutable once trained, so its
//! lowered form can be compiled once and scored many times. This module is
//! the compile half of that split:
//!
//! * [`CompiledModel`] — a bundle deserialized, validated against a
//!   backend, and lowered into that backend's scoring representation
//!   ([`Lowered`]), tagged with the [`ArtifactKey`] it was compiled under;
//! * [`compile`] / [`compile_timed`] — the prepare pass itself
//!   (deserialize → stats → `supports` → `lower`);
//! * [`ArtifactCache`] — a content-hash-keyed, LRU-evicting cache of
//!   compiled models with hit/miss/eviction counters, so repeated queries
//!   against the same bundle skip the whole pass.
//!
//! The cache key is *content-addressed*: [`ModelBundle::content_hash`] over
//! the serialized bytes, crossed with the backend's name and its
//! [`cache_config`](crate::ScoringBackend::cache_config) fingerprint. Two
//! byte-identical bundles share an artifact; a backend configured
//! differently (say, a different FPGA tree-depth capacity) gets its own.

use std::any::Any;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};

use mlscore_exec::FlatImage;
use mlscore_forest::{ModelBundle, ModelStats, QuantizedForest, RandomForest};
use mlscore_sim::{Clock, SimDuration, WallClock};
use mlscore_telemetry::MetricsRegistry;

use crate::error::BackendError;
use crate::traits::ScoringBackend;

/// Metric names the cache reports under when given a registry.
pub const METRIC_HITS: &str = "artifact.hits";
/// See [`METRIC_HITS`].
pub const METRIC_MISSES: &str = "artifact.misses";
/// See [`METRIC_HITS`].
pub const METRIC_EVICTIONS: &str = "artifact.evictions";

/// The identity a compiled model was built under: which bytes, which
/// backend, which backend configuration.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArtifactKey {
    /// FNV-1a content hash of the serialized bundle bytes.
    pub content_hash: u64,
    /// [`ScoringBackend::name`] of the compiling backend.
    pub backend: String,
    /// [`ScoringBackend::cache_config`] fingerprint of the compiling
    /// backend (empty when the backend has no compile-relevant knobs).
    pub config: String,
}

/// Builds the cache identity `backend` would compile `bundle` under,
/// without compiling anything — the hook callers (the serving engine's
/// cache model, cache-warming tools) use to reason about hits and misses
/// up front. [`compile_timed`] and [`ArtifactCache::get_or_prepare_timed`]
/// derive their keys through this same function, so a key predicted here
/// is exactly the key the cache will use.
pub fn artifact_key<B: ScoringBackend + ?Sized>(backend: &B, bundle: &ModelBundle) -> ArtifactKey {
    ArtifactKey {
        content_hash: bundle.content_hash(),
        backend: backend.name().to_string(),
        config: backend.cache_config(),
    }
}

impl fmt::Display for ArtifactKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}×{}", self.content_hash, self.backend)?;
        if !self.config.is_empty() {
            write!(f, "×{}", self.config)?;
        }
        Ok(())
    }
}

/// A backend's lowered scoring representation of one model.
///
/// The common CPU forms get first-class variants so the exec kernels can
/// consume them without downcasts; accelerator backends carry their own
/// device-shaped layouts (FPGA node table + BRAM plan, GPU tensor arrays)
/// behind [`Lowered::Custom`], which keeps this crate free of dependencies
/// on the accelerator crates.
#[derive(Clone)]
pub enum Lowered {
    /// Score the pointer trees directly — no lowering (CPU_SKLearn).
    Reference,
    /// The Fig. 4b flat node image, pre-decoded for the lockstep kernel
    /// (CPU_ONNX).
    Flat(Arc<FlatImage>),
    /// The quantized node image.
    Quantized(Arc<QuantizedForest>),
    /// A backend-private layout; the owning backend downcasts it back.
    Custom(Arc<dyn Any + Send + Sync>),
}

impl fmt::Debug for Lowered {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lowered::Reference => f.write_str("Reference"),
            Lowered::Flat(img) => f.debug_tuple("Flat").field(img).finish(),
            Lowered::Quantized(q) => f.debug_tuple("Quantized").field(&q.n_features()).finish(),
            Lowered::Custom(_) => f.write_str("Custom(..)"),
        }
    }
}

/// A model compiled for one backend: the prepare-phase output that
/// [`ScoringBackend::score_prepared`] consumes.
#[derive(Debug, Clone)]
pub struct CompiledModel {
    key: ArtifactKey,
    forest: Arc<RandomForest>,
    stats: ModelStats,
    lowered: Lowered,
    model_bytes: usize,
}

impl CompiledModel {
    /// Assembles a compiled model. Prefer [`compile`] /
    /// [`ScoringBackend::prepare`], which run the full pass.
    pub fn new(
        key: ArtifactKey,
        forest: Arc<RandomForest>,
        stats: ModelStats,
        lowered: Lowered,
        model_bytes: usize,
    ) -> Self {
        Self {
            key,
            forest,
            stats,
            lowered,
            model_bytes,
        }
    }

    /// The cache identity this artifact was compiled under.
    pub fn key(&self) -> &ArtifactKey {
        &self.key
    }

    /// The deserialized source model.
    pub fn forest(&self) -> &RandomForest {
        &self.forest
    }

    /// Shape statistics of the source model (for `estimate_prepared`).
    pub fn stats(&self) -> &ModelStats {
        &self.stats
    }

    /// The backend-lowered scoring form.
    pub fn lowered(&self) -> &Lowered {
        &self.lowered
    }

    /// Serialized size of the source bundle, in bytes.
    pub fn model_bytes(&self) -> usize {
        self.model_bytes
    }

    /// Checks that this artifact may be scored by `backend_name` against
    /// `n_features`-wide records.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::Artifact`] naming the expected and actual
    /// backend or feature width — the debugging breadcrumb for cache-keyed
    /// misconfigurations.
    pub fn ensure_scorable(
        &self,
        backend_name: &str,
        n_features: usize,
    ) -> Result<(), BackendError> {
        if self.key.backend != backend_name {
            return Err(BackendError::artifact(
                backend_name,
                format!(
                    "artifact {} was compiled for backend {}, not {}",
                    self.key, self.key.backend, backend_name
                ),
            ));
        }
        if self.stats.n_features != n_features {
            return Err(BackendError::artifact(
                backend_name,
                format!(
                    "feature width mismatch for artifact {}: model expects {} features, frame has {}",
                    self.key, self.stats.n_features, n_features
                ),
            ));
        }
        Ok(())
    }
}

/// Measured cost of the two compile sub-steps, on the timeline of the
/// [`Clock`] that timed them. Zero on a cache hit.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PrepareTiming {
    /// Time spent in [`ModelBundle::deserialize`].
    pub deserialize: SimDuration,
    /// Time spent in [`ScoringBackend::lower`] (plus `supports`).
    pub lower: SimDuration,
}

/// How a query's model was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// No cache configured — compiled inline, artifact discarded.
    Bypass,
    /// Cache consulted, artifact absent — compiled and inserted (cold).
    Miss,
    /// Cache consulted, artifact present — compile skipped (warm).
    Hit,
}

/// Runs the full prepare pass for `backend`: deserialize the bundle,
/// validate support, lower, and tag with the artifact key.
///
/// # Errors
///
/// Propagates deserialization failures as [`BackendError::Forest`] and
/// `supports`/`lower` failures unchanged.
pub fn compile<B: ScoringBackend + ?Sized>(
    backend: &B,
    bundle: &ModelBundle,
) -> Result<Arc<CompiledModel>, BackendError> {
    compile_timed(backend, bundle).map(|(model, _)| model)
}

/// [`compile`], additionally reporting how long each sub-step took so the
/// pipeline can attribute cold-path compile spans. Timing comes from
/// [`WallClock`] — call this only at the `repro`/bench measurement
/// boundary; everything else should inject a clock via
/// [`compile_timed_with`] or [`ArtifactCache::with_clock`].
///
/// # Errors
///
/// Fails exactly when [`compile`] fails.
pub fn compile_timed<B: ScoringBackend + ?Sized>(
    backend: &B,
    bundle: &ModelBundle,
) -> Result<(Arc<CompiledModel>, PrepareTiming), BackendError> {
    compile_timed_with(backend, bundle, &WallClock::new())
}

/// [`compile_timed`] with an injected time source, so callers that must
/// stay deterministic (tests, the serving simulation) can time the pass on
/// a [`ManualClock`](mlscore_sim::ManualClock).
///
/// # Errors
///
/// Fails exactly when [`compile`] fails.
pub fn compile_timed_with<B: ScoringBackend + ?Sized>(
    backend: &B,
    bundle: &ModelBundle,
    clock: &dyn Clock,
) -> Result<(Arc<CompiledModel>, PrepareTiming), BackendError> {
    let t0 = clock.now();
    let forest = bundle.deserialize().map_err(BackendError::from)?;
    let deserialize = clock.now().duration_since(t0);
    let stats = ModelStats::of(&forest);
    let t1 = clock.now();
    backend.supports(&stats)?;
    let lowered = backend.lower(&forest)?;
    let lower = clock.now().duration_since(t1);
    let key = artifact_key(backend, bundle);
    let model = Arc::new(CompiledModel::new(
        key,
        Arc::new(forest),
        stats,
        lowered,
        bundle.len(),
    ));
    Ok((model, PrepareTiming { deserialize, lower }))
}

/// A point-in-time copy of the cache's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a compiled artifact.
    pub hits: u64,
    /// Lookups that had to compile.
    pub misses: u64,
    /// Artifacts evicted to stay within capacity.
    pub evictions: u64,
    /// Artifacts currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// Total lookups served (hits plus misses).
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups that hit, in `[0, 1]`; zero before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }

    /// Measured queries-per-compile: how many lookups each compiled
    /// artifact served on average (`lookups / misses`, at least 1). This is
    /// the `expected_reuse` input to
    /// `AdaptiveScheduler::choose_amortized` — a cache that hits often
    /// amortizes each compile over many queries.
    pub fn expected_reuse(&self) -> u64 {
        self.lookups().checked_div(self.misses).unwrap_or(1).max(1)
    }
}

struct CacheEntry {
    last_used: u64,
    model: Arc<CompiledModel>,
}

#[derive(Default)]
struct CacheInner {
    map: HashMap<ArtifactKey, CacheEntry>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A content-addressed cache of [`CompiledModel`]s with LRU eviction.
///
/// Keyed by [`ArtifactKey`] (bundle content hash × backend name × backend
/// config), so a bundle re-submitted byte-for-byte is a hit and skips
/// deserialize + lower entirely. Thread-safe; compiled artifacts are shared
/// out as `Arc`s, so an eviction never invalidates an in-flight query.
///
/// # Example
///
/// ```
/// use mlscore_backend::{ArtifactCache, CacheOutcome, OnnxCpu};
/// use mlscore_forest::{ForestConfig, ModelBundle, RandomForest};
///
/// let forest = RandomForest::synthetic_full(
///     &ForestConfig::classification(8, 4, 3).with_depth(6),
///     11,
/// );
/// let bundle = ModelBundle::serialize(&forest);
/// let backend = OnnxCpu::single_thread();
/// let cache = ArtifactCache::new(4);
/// let (_, outcome) = cache.get_or_prepare(&backend, &bundle).unwrap();
/// assert_eq!(outcome, CacheOutcome::Miss);
/// let (model, outcome) = cache.get_or_prepare(&backend, &bundle).unwrap();
/// assert_eq!(outcome, CacheOutcome::Hit);
/// assert_eq!(model.stats().n_trees, 8);
/// assert_eq!(cache.stats().hits, 1);
/// ```
pub struct ArtifactCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
    metrics: Option<Arc<MetricsRegistry>>,
    clock: Arc<dyn Clock>,
}

impl fmt::Debug for ArtifactCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stats = self.stats();
        f.debug_struct("ArtifactCache")
            .field("capacity", &self.capacity)
            .field("stats", &stats)
            .finish()
    }
}

impl ArtifactCache {
    /// Creates a cache holding at most `capacity` compiled artifacts.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "artifact cache capacity must be non-zero");
        Self {
            inner: Mutex::new(CacheInner::default()),
            capacity,
            metrics: None,
            clock: Arc::new(WallClock::new()),
        }
    }

    /// Mirrors hit/miss/eviction counters into `metrics` under
    /// [`METRIC_HITS`], [`METRIC_MISSES`], and [`METRIC_EVICTIONS`].
    pub fn with_metrics(mut self, metrics: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Replaces the time source that stamps [`PrepareTiming`] on misses.
    /// Defaults to [`WallClock`] (the cache sits at the measurement
    /// boundary); inject a manual clock for deterministic tests.
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Maximum number of resident artifacts.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("artifact cache poisoned");
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            entries: inner.map.len(),
        }
    }

    /// Looks up the artifact for (`bundle`, `backend`), compiling and
    /// inserting it on a miss.
    ///
    /// # Errors
    ///
    /// Fails exactly when [`compile`] fails; failures are not cached.
    pub fn get_or_prepare<B: ScoringBackend + ?Sized>(
        &self,
        backend: &B,
        bundle: &ModelBundle,
    ) -> Result<(Arc<CompiledModel>, CacheOutcome), BackendError> {
        self.get_or_prepare_timed(backend, bundle)
            .map(|(model, outcome, _)| (model, outcome))
    }

    /// [`ArtifactCache::get_or_prepare`], additionally reporting the
    /// compile sub-step timing ([`PrepareTiming::default`] on a hit).
    ///
    /// # Errors
    ///
    /// Fails exactly when [`compile`] fails; failures are not cached.
    pub fn get_or_prepare_timed<B: ScoringBackend + ?Sized>(
        &self,
        backend: &B,
        bundle: &ModelBundle,
    ) -> Result<(Arc<CompiledModel>, CacheOutcome, PrepareTiming), BackendError> {
        let key = artifact_key(backend, bundle);
        {
            let mut inner = self.inner.lock().expect("artifact cache poisoned");
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(entry) = inner.map.get_mut(&key) {
                entry.last_used = tick;
                let model = Arc::clone(&entry.model);
                inner.hits += 1;
                drop(inner);
                self.bump(METRIC_HITS);
                return Ok((model, CacheOutcome::Hit, PrepareTiming::default()));
            }
        }
        // Compile outside the lock: misses on distinct bundles proceed in
        // parallel. A racing miss on the same key wastes one compile but
        // stays correct — last insert wins and both callers hold valid Arcs.
        let (model, timing) = compile_timed_with(backend, bundle, self.clock.as_ref())?;
        let evicted = {
            let mut inner = self.inner.lock().expect("artifact cache poisoned");
            inner.tick += 1;
            let tick = inner.tick;
            inner.misses += 1;
            let mut evicted = 0u64;
            while inner.map.len() >= self.capacity && !inner.map.contains_key(&key) {
                let lru = inner
                    .map
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| k.clone())
                    .expect("non-empty map at capacity");
                inner.map.remove(&lru);
                inner.evictions += 1;
                evicted += 1;
            }
            inner.map.insert(
                key,
                CacheEntry {
                    last_used: tick,
                    model: Arc::clone(&model),
                },
            );
            evicted
        };
        self.bump(METRIC_MISSES);
        if let Some(m) = &self.metrics {
            if evicted > 0 {
                m.inc_counter(METRIC_EVICTIONS, evicted);
            }
        }
        Ok((model, CacheOutcome::Miss, timing))
    }

    fn bump(&self, name: &str) {
        if let Some(m) = &self.metrics {
            m.inc_counter(name, 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OnnxCpu, SklearnCpu};
    use mlscore_forest::ForestConfig;

    fn bundle(seed: u64) -> ModelBundle {
        ModelBundle::serialize(&RandomForest::synthetic_full(
            &ForestConfig::classification(6, 4, 3).with_depth(5),
            seed,
        ))
    }

    #[test]
    fn compile_tags_key_and_shape() {
        let b = bundle(3);
        let backend = OnnxCpu::single_thread();
        let model = compile(&backend, &b).unwrap();
        assert_eq!(model.key().content_hash, b.content_hash());
        assert_eq!(model.key().backend, "CPU_ONNX");
        assert_eq!(model.stats().n_trees, 6);
        assert_eq!(model.model_bytes(), b.len());
        assert!(matches!(model.lowered(), Lowered::Flat(_)));
    }

    #[test]
    fn hit_miss_and_metrics() {
        let metrics = Arc::new(MetricsRegistry::new());
        let cache = ArtifactCache::new(4).with_metrics(Arc::clone(&metrics));
        let backend = OnnxCpu::single_thread();
        let b = bundle(1);
        let (first, o1) = cache.get_or_prepare(&backend, &b).unwrap();
        let (second, o2) = cache.get_or_prepare(&backend, &b).unwrap();
        assert_eq!((o1, o2), (CacheOutcome::Miss, CacheOutcome::Hit));
        assert!(Arc::ptr_eq(&first, &second));
        // A byte-identical re-serialization is still a hit.
        let again = ModelBundle::from_bytes(bytes::Bytes::from(b.as_bytes().to_vec()));
        let (_, o3) = cache.get_or_prepare(&backend, &again).unwrap();
        assert_eq!(o3, CacheOutcome::Hit);
        assert_eq!(metrics.counter(METRIC_HITS), 2);
        assert_eq!(metrics.counter(METRIC_MISSES), 1);
        assert_eq!(metrics.counter(METRIC_EVICTIONS), 0);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 2,
                misses: 1,
                evictions: 0,
                entries: 1
            }
        );
    }

    #[test]
    fn distinct_backends_and_bundles_get_distinct_artifacts() {
        let cache = ArtifactCache::new(8);
        let b = bundle(1);
        let (onnx_model, _) = cache.get_or_prepare(&OnnxCpu::single_thread(), &b).unwrap();
        let (skl_model, o) = cache
            .get_or_prepare(&SklearnCpu::with_threads(1), &b)
            .unwrap();
        assert_eq!(o, CacheOutcome::Miss);
        assert_ne!(onnx_model.key(), skl_model.key());
        let (_, o) = cache
            .get_or_prepare(&OnnxCpu::single_thread(), &bundle(2))
            .unwrap();
        assert_eq!(o, CacheOutcome::Miss);
        assert_eq!(cache.stats().entries, 3);
    }

    #[test]
    fn lru_eviction_drops_least_recent() {
        let cache = ArtifactCache::new(2);
        let backend = OnnxCpu::single_thread();
        let (a, b, c) = (bundle(1), bundle(2), bundle(3));
        cache.get_or_prepare(&backend, &a).unwrap();
        cache.get_or_prepare(&backend, &b).unwrap();
        // Touch `a` so `b` becomes the LRU victim.
        let (_, o) = cache.get_or_prepare(&backend, &a).unwrap();
        assert_eq!(o, CacheOutcome::Hit);
        cache.get_or_prepare(&backend, &c).unwrap();
        assert_eq!(cache.stats().evictions, 1);
        let (_, o) = cache.get_or_prepare(&backend, &a).unwrap();
        assert_eq!(o, CacheOutcome::Hit);
        let (_, o) = cache.get_or_prepare(&backend, &b).unwrap();
        assert_eq!(o, CacheOutcome::Miss, "b should have been evicted");
    }

    #[test]
    fn mismatched_artifact_is_rejected_with_counts() {
        let b = bundle(1);
        let skl = SklearnCpu::with_threads(1);
        let model = compile(&skl, &b).unwrap();
        let err = model.ensure_scorable("CPU_ONNX", 4).unwrap_err();
        assert!(matches!(err, BackendError::Artifact { .. }));
        let err = model.ensure_scorable(skl.name(), 7).unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("expects 4"), "{msg}");
        assert!(msg.contains("frame has 7"), "{msg}");
    }

    #[test]
    fn miss_timing_is_populated_and_hit_timing_is_zero() {
        let cache = ArtifactCache::new(2);
        let backend = OnnxCpu::single_thread();
        let b = bundle(5);
        let (_, outcome, _miss_timing) = cache.get_or_prepare_timed(&backend, &b).unwrap();
        assert_eq!(outcome, CacheOutcome::Miss);
        let (_, outcome, hit_timing) = cache.get_or_prepare_timed(&backend, &b).unwrap();
        assert_eq!(outcome, CacheOutcome::Hit);
        assert_eq!(hit_timing, PrepareTiming::default());
    }

    #[test]
    #[should_panic(expected = "capacity must be non-zero")]
    fn zero_capacity_rejected() {
        let _ = ArtifactCache::new(0);
    }

    #[test]
    fn artifact_key_predicts_the_cache_key() {
        let b = bundle(9);
        let backend = OnnxCpu::single_thread();
        let predicted = artifact_key(&backend, &b);
        let model = compile(&backend, &b).unwrap();
        assert_eq!(&predicted, model.key());
        // Different backend, different key; same bytes, same hash.
        let other = artifact_key(&SklearnCpu::with_threads(1), &b);
        assert_ne!(predicted, other);
        assert_eq!(predicted.content_hash, other.content_hash);
    }

    #[test]
    fn cache_stats_reuse_and_hit_rate() {
        let empty = CacheStats::default();
        assert_eq!(empty.lookups(), 0);
        assert_eq!(empty.hit_rate(), 0.0);
        assert_eq!(empty.expected_reuse(), 1);

        let warm = CacheStats {
            hits: 9,
            misses: 3,
            evictions: 0,
            entries: 3,
        };
        assert_eq!(warm.lookups(), 12);
        assert!((warm.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(warm.expected_reuse(), 4);

        // All-hit steady state still reports a sane reuse.
        let perfect = CacheStats {
            hits: 10,
            misses: 0,
            evictions: 0,
            entries: 1,
        };
        assert_eq!(perfect.expected_reuse(), 1);
    }
}
