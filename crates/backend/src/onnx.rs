//! The ONNX-runtime-like CPU backend ("CPU_ONNX" / "CPU_ONNX_52th").
//!
//! Functionally, this engine first compiles the forest into the Fig. 4b
//! flat layout and scores it with the blocked lockstep kernel on the shared
//! work-stealing [`ExecPool`] — the same image the FPGA consumes. Its
//! timing model captures the paper's observation that ONNX "is not
//! currently optimized for batch scoring": the per-call overhead is small
//! (it wins below ~5K records), but the per-record cost is higher than
//! scikit-learn's batch path, so it loses at large batches.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use mlscore_data::{RecordStream, TabularFrame};
use mlscore_exec::{score_auto_batch, score_stream, ExecPool, FlatImage, KernelChoice, RunConfig};
use mlscore_forest::{ModelStats, Predictions, RandomForest};
use mlscore_sim::{SimDuration, SimInstant, Stage, TimingBreakdown};
use mlscore_telemetry::{Scope, Tracer};

use crate::artifact::{CompiledModel, Lowered};
use crate::cost::{effective_parallelism, CpuSpec};
use crate::error::BackendError;
use crate::traits::{ScoringBackend, StreamChunk, StreamOutcome};

/// Timing-model constants for the ONNX-like engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OnnxCostParams {
    /// Fixed cost of one scoring call (runtime session dispatch).
    pub call_overhead: SimDuration,
    /// Fixed per-record cost (per-record graph execution, no batch
    /// amortization).
    pub per_record: SimDuration,
    /// Multiplier on the cache-model visit cost relative to sklearn's batch
    /// path (flat records are 16 B vs. pointer nodes, roughly a wash).
    pub visit_factor: f64,
    /// Per-extra-thread cost of spinning up and joining the intra-op thread
    /// pool; ONNX's batch path parallelizes poorly, so wide thread counts
    /// pay a substantial fixed dispatch cost per call.
    pub thread_spinup: SimDuration,
}

impl Default for OnnxCostParams {
    fn default() -> Self {
        Self {
            call_overhead: SimDuration::from_micros(150.0),
            per_record: SimDuration::from_nanos(180.0),
            visit_factor: 1.0,
            thread_spinup: SimDuration::from_micros(17.0),
        }
    }
}

/// The ONNX-like CPU backend scoring over the flat node layout.
///
/// # Example
///
/// ```
/// use mlscore_backend::{OnnxCpu, ScoringBackend, ScoringRequest};
/// use mlscore_data::Dataset;
/// use mlscore_forest::{ForestConfig, RandomForest};
///
/// let forest = RandomForest::synthetic_full(
///     &ForestConfig::classification(4, 28, 2).with_depth(6),
///     1,
/// );
/// let data = Dataset::higgs(32, 9).normalized();
/// let req = ScoringRequest::new(&forest, data.frame())?;
/// let preds = OnnxCpu::single_thread().score(&req)?;
/// assert_eq!(preds.len(), 32);
/// # Ok::<(), mlscore_backend::BackendError>(())
/// ```
#[derive(Debug, Clone)]
pub struct OnnxCpu {
    spec: CpuSpec,
    threads: usize,
    params: OnnxCostParams,
    name: String,
}

impl OnnxCpu {
    /// The paper's "CPU_ONNX": single-threaded.
    pub fn single_thread() -> Self {
        Self::with_threads(1)
    }

    /// The paper's "CPU_ONNX_52th": 52 threads.
    pub fn paper_52th() -> Self {
        Self::with_threads(52)
    }

    /// A backend on the paper's Xeon with an explicit thread count.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn with_threads(threads: usize) -> Self {
        Self::new(CpuSpec::xeon_8171m(), threads, OnnxCostParams::default())
    }

    /// Fully custom construction.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(spec: CpuSpec, threads: usize, params: OnnxCostParams) -> Self {
        assert!(threads > 0, "need at least one thread");
        let name = if threads == 1 {
            "CPU_ONNX".to_string()
        } else {
            format!("CPU_ONNX_{threads}th")
        };
        Self {
            spec,
            threads,
            params,
            name,
        }
    }

    /// The thread count used for scoring.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Executor configuration for one scoring call. ONNX parallelizes
    /// across the ensemble's trees, so the worker count is additionally
    /// capped at the tree count (a single-tree model runs one thread).
    fn run_config(&self, n_trees: usize) -> RunConfig {
        RunConfig::for_threads(self.threads.min(n_trees.max(1)))
    }

    /// Extracts the flat image this backend lowers to.
    fn image_of<'a>(&self, lowered: &'a Lowered) -> Result<&'a FlatImage, BackendError> {
        match lowered {
            Lowered::Flat(image) => Ok(image),
            other => Err(BackendError::artifact(
                self.name(),
                format!("expected a flat image artifact, got {other:?}"),
            )),
        }
    }
}

impl ScoringBackend for OnnxCpu {
    fn name(&self) -> &str {
        &self.name
    }

    // Lowering compiles the forest into the pre-decoded flat image once;
    // the untraced and traced score paths both consume it (the seed built
    // the image separately in each, doubling the compile on traced runs).
    fn lower(&self, forest: &RandomForest) -> Result<Lowered, BackendError> {
        let image = FlatImage::from_forest(forest, forest.max_depth())?;
        Ok(Lowered::Flat(Arc::new(image)))
    }

    fn score_lowered(
        &self,
        forest: &RandomForest,
        lowered: &Lowered,
        frame: &TabularFrame,
    ) -> Result<Predictions, BackendError> {
        let image = self.image_of(lowered)?;
        // The cost model dispatches to whichever CPU kernel tier (blocked /
        // SIMD walk / QuickScorer) is fastest for this shape and batch; all
        // tiers are bit-exact, so this is a pure throughput decision.
        let (preds, _, _) = score_auto_batch(
            image,
            frame,
            ExecPool::global(),
            &self.run_config(forest.n_trees()),
        );
        Ok(preds)
    }

    fn score_lowered_traced(
        &self,
        forest: &RandomForest,
        lowered: &Lowered,
        frame: &TabularFrame,
        tracer: &Tracer,
        start: SimInstant,
    ) -> Result<Predictions, BackendError> {
        let image = self.image_of(lowered)?;
        let (preds, report, _) = score_auto_batch(
            image,
            frame,
            ExecPool::global(),
            &self.run_config(forest.n_trees()),
        );
        report.record_spans(tracer, start, self.name());
        Ok(preds)
    }

    // The fused path scores straight off the scanner: each pulled chunk is
    // dispatched to whichever kernel tier the cost model re-ranks for that
    // chunk's row count, with no whole-batch materialization in between.
    fn score_prepared_stream(
        &self,
        model: &CompiledModel,
        stream: &mut dyn RecordStream,
    ) -> Result<StreamOutcome, BackendError> {
        model.ensure_scorable(self.name(), stream.n_features())?;
        let image = self.image_of(model.lowered())?;
        let (predictions, report) = score_stream(
            image,
            stream,
            ExecPool::global(),
            &self.run_config(model.stats().n_trees),
        );
        Ok(StreamOutcome {
            predictions,
            rows: report.rows(),
            chunks: report
                .chunks()
                .iter()
                .map(|c| StreamChunk {
                    rows: c.rows,
                    kernel: Some(c.choice.kernel.name()),
                })
                .collect(),
        })
    }

    fn kernel_choice(&self, stats: &ModelStats, n_records: u64) -> Option<KernelChoice> {
        Some(KernelChoice::from_model_stats(stats, n_records as usize))
    }

    fn estimate(&self, stats: &ModelStats, n_records: u64) -> TimingBreakdown {
        self.estimate_traced(stats, n_records, &Tracer::disabled(), SimInstant::ZERO)
    }

    fn estimate_traced(
        &self,
        stats: &ModelStats,
        n_records: u64,
        tracer: &Tracer,
        start: SimInstant,
    ) -> TimingBreakdown {
        let per_record = self.params.per_record
            + self.spec.row_load_cost(stats)
            + self.spec.visit_cost(stats) * (stats.visits_per_record() * self.params.visit_factor);
        // ONNX parallelizes *within* one inference (across the ensemble's
        // trees), not across batch rows — a single-tree model gains nothing
        // from 52 threads, which is why the paper's best CPU for 1-tree
        // models is scikit-learn.
        let usable_threads = self.threads.min(stats.n_trees.max(1));
        let parallel = effective_parallelism(usable_threads, n_records);
        let compute = per_record * (n_records as f64 / parallel);
        let spinup = self.params.thread_spinup * (self.threads.saturating_sub(1)) as f64;
        let mut b = TimingBreakdown::new();
        b.add(Stage::SoftwareOverhead, self.params.call_overhead + spinup);
        b.add(Stage::Scoring, compute);

        // Two overhead spans whose left-to-right fold is the same sum the
        // direct breakdown adds, so reconstruction stays exact.
        let mut t = tracer
            .span("session dispatch", start)
            .stage(Stage::SoftwareOverhead)
            .scope(Scope::Offload)
            .track(self.name(), "offload")
            .meta("backend", self.name())
            .finish_after(self.params.call_overhead);
        if self.threads > 1 {
            t = tracer
                .span("thread-pool spinup", t)
                .stage(Stage::SoftwareOverhead)
                .scope(Scope::Offload)
                .track(self.name(), "offload")
                .meta("threads", self.threads.to_string())
                .finish_after(spinup);
        }
        tracer
            .span("flat-forest traversal", t)
            .stage(Stage::Scoring)
            .scope(Scope::Offload)
            .track(self.name(), "offload")
            .meta("usable_threads", usable_threads.to_string())
            .finish_after(compute);
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ScoringRequest;
    use mlscore_data::Dataset;
    use mlscore_forest::ForestConfig;

    fn higgs_setup() -> (RandomForest, Dataset) {
        let forest = RandomForest::synthetic_full(
            &ForestConfig::classification(10, 28, 2).with_depth(6),
            17,
        );
        (forest, Dataset::higgs(123, 6).normalized())
    }

    #[test]
    fn flat_scoring_matches_reference() {
        let (forest, data) = higgs_setup();
        let req = ScoringRequest::new(&forest, data.frame()).unwrap();
        for threads in [1, 4] {
            let preds = OnnxCpu::with_threads(threads).score(&req).unwrap();
            assert_eq!(preds, forest.predict_batch(data.frame().as_slice()));
        }
    }

    #[test]
    fn regression_matches_reference() {
        let forest = RandomForest::synthetic_full(&ForestConfig::regression(4, 5).with_depth(4), 3);
        let frame = mlscore_data::TabularFrame::from_rows(
            (0..50).map(|i| (i as f32 * 0.17) % 1.0).collect(),
            5,
        )
        .unwrap();
        let req = ScoringRequest::new(&forest, &frame).unwrap();
        let preds = OnnxCpu::single_thread().score(&req).unwrap();
        assert_eq!(preds, forest.predict_batch(frame.as_slice()));
    }

    #[test]
    fn stream_scoring_matches_prepared_and_names_kernels() {
        use mlscore_data::FrameScanner;
        use mlscore_forest::ModelBundle;
        let (forest, data) = higgs_setup();
        let bundle = ModelBundle::serialize(&forest);
        let backend = OnnxCpu::with_threads(4);
        let model = crate::artifact::compile(&backend, &bundle).unwrap();
        let want = backend.score_prepared(&model, data.frame()).unwrap();
        for chunk_rows in [1, 7, 64] {
            let mut scanner = FrameScanner::new(data.frame(), chunk_rows);
            let out = backend.score_prepared_stream(&model, &mut scanner).unwrap();
            assert_eq!(out.predictions, want, "chunk_rows={chunk_rows}");
            assert_eq!(out.rows, data.frame().n_rows());
            assert_eq!(out.chunks.len(), data.frame().n_rows().div_ceil(chunk_rows));
            assert!(
                out.chunks.iter().all(|c| c.kernel.is_some()),
                "ONNX chunks carry the dispatched kernel name"
            );
        }
    }

    #[test]
    fn onnx_beats_sklearn_at_small_batches_loses_at_large() {
        // The paper's ~5K-record crossover between CPU_ONNX (1 thread) and
        // CPU_SKLearn (52 threads) on a single-tree model.
        use crate::sklearn::SklearnCpu;
        use crate::traits::ScoringBackend as _;
        let forest =
            RandomForest::synthetic_full(&ForestConfig::classification(1, 4, 3).with_depth(10), 5);
        let stats = ModelStats::of(&forest);
        let onnx = OnnxCpu::single_thread();
        let sklearn = SklearnCpu::paper_default();
        let small = 100u64;
        let large = 1_000_000u64;
        assert!(onnx.estimate(&stats, small).total() < sklearn.estimate(&stats, small).total());
        assert!(onnx.estimate(&stats, large).total() > sklearn.estimate(&stats, large).total());
    }

    #[test]
    fn crossover_is_in_the_paper_band() {
        // Find where sklearn overtakes ONNX; the paper says ~5K records.
        use crate::sklearn::SklearnCpu;
        let forest =
            RandomForest::synthetic_full(&ForestConfig::classification(1, 4, 3).with_depth(10), 5);
        let stats = ModelStats::of(&forest);
        let onnx = OnnxCpu::single_thread();
        let sklearn = SklearnCpu::paper_default();
        let mut crossover = None;
        for exp in 0..24 {
            let n = 1u64 << exp;
            if sklearn.estimate(&stats, n).total() < onnx.estimate(&stats, n).total() {
                crossover = Some(n);
                break;
            }
        }
        let n = crossover.expect("sklearn must eventually win");
        assert!(
            (1_000..20_000).contains(&n),
            "ONNX/sklearn crossover at {n}, expected ~5K"
        );
    }

    #[test]
    fn estimate_call_overhead_smaller_than_sklearn() {
        use crate::sklearn::SklearnCostParams;
        let onnx = OnnxCostParams::default();
        let sk = SklearnCostParams::default();
        assert!(onnx.call_overhead < sk.call_overhead);
    }

    #[test]
    fn traced_estimate_reconstructs_exactly() {
        use mlscore_sim::SimInstant;
        use mlscore_telemetry::{Scope, Tracer};
        let (forest, _) = higgs_setup();
        let stats = ModelStats::of(&forest);
        for backend in [OnnxCpu::single_thread(), OnnxCpu::paper_52th()] {
            let tracer = Tracer::new();
            let traced = backend.estimate_traced(&stats, 50_000, &tracer, SimInstant::ZERO);
            assert_eq!(traced, backend.estimate(&stats, 50_000));
            assert_eq!(tracer.take().breakdown(Scope::Offload), traced);
        }
    }

    #[test]
    fn names_match_paper_legends() {
        assert_eq!(OnnxCpu::single_thread().name(), "CPU_ONNX");
        assert_eq!(OnnxCpu::paper_52th().name(), "CPU_ONNX_52th");
        assert_eq!(OnnxCpu::paper_52th().threads(), 52);
    }
}
