//! Backend error type.

use std::error::Error;
use std::fmt;

use mlscore_forest::ForestError;

/// Errors returned by scoring backends.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BackendError {
    /// A model/structure error bubbled up from the forest crate.
    Forest(ForestError),
    /// The backend cannot run this model (e.g. GPU-RAPIDS is binary-only;
    /// the FPGA engine caps tree depth at 10).
    Unsupported {
        /// Backend name.
        backend: String,
        /// Human-readable reason.
        reason: String,
    },
    /// A compiled artifact does not fit the request it was paired with —
    /// wrong backend, wrong feature width, or a lowered form the backend
    /// does not recognise. Usually a cache-keying bug on the caller's side.
    Artifact {
        /// Backend name.
        backend: String,
        /// What mismatched, with the expected and actual values spelled
        /// out for debugging cache-keyed misconfigurations.
        reason: String,
    },
}

impl BackendError {
    /// Convenience constructor for [`BackendError::Unsupported`].
    pub fn unsupported(backend: impl Into<String>, reason: impl Into<String>) -> Self {
        BackendError::Unsupported {
            backend: backend.into(),
            reason: reason.into(),
        }
    }

    /// Convenience constructor for [`BackendError::Artifact`].
    pub fn artifact(backend: impl Into<String>, reason: impl Into<String>) -> Self {
        BackendError::Artifact {
            backend: backend.into(),
            reason: reason.into(),
        }
    }
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::Forest(e) => write!(f, "model error: {e}"),
            BackendError::Unsupported { backend, reason } => {
                write!(f, "{backend} cannot score this model: {reason}")
            }
            BackendError::Artifact { backend, reason } => {
                write!(f, "{backend} rejected compiled artifact: {reason}")
            }
        }
    }
}

impl Error for BackendError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BackendError::Forest(e) => Some(e),
            BackendError::Unsupported { .. } | BackendError::Artifact { .. } => None,
        }
    }
}

impl From<ForestError> for BackendError {
    fn from(e: ForestError) -> Self {
        BackendError::Forest(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = BackendError::unsupported("gpu-rapids", "multi-class model");
        assert!(format!("{e}").contains("gpu-rapids"));
        assert!(e.source().is_none());
        let e: BackendError = ForestError::EmptyForest.into();
        assert!(e.source().is_some());
        assert!(format!("{e}").contains("no trees"));
    }
}
