//! The CPU specification and shared cost-model helpers.
//!
//! Calibration notes: the per-visit cost combines a pipeline base cost with
//! the cache model from `mlscore-sim`, evaluated at the model's live node
//! footprint inflated by a locality penalty (tree traversal is a
//! pointer-chase with poor spatial locality, and with many trees per record
//! the touched lines spread across the whole model image). The paper's
//! measured CPU numbers imply ~17–22 ns per node visit for multi-megabyte
//! models and a ~0.5 µs fixed per-record cost in scikit-learn (vote
//! aggregation and output assembly) — see DESIGN.md §5.

use serde::{Deserialize, Serialize};

use mlscore_forest::ModelStats;
use mlscore_sim::{CacheHierarchy, CacheLevel, ClockRate, SimDuration};

/// A host CPU description used by the CPU backends' timing models.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuSpec {
    /// Core clock.
    pub clock: ClockRate,
    /// Hardware thread count available to scoring.
    pub threads: usize,
    /// Cache hierarchy (per-core L1/L2 plus shared LLC).
    pub caches: CacheHierarchy,
    /// Multiplier applied to the model footprint before the cache lookup,
    /// accounting for pointer-chase locality and auxiliary structures.
    pub locality_penalty: f64,
    /// Per-byte cost of streaming a record row through the core.
    pub row_stream_per_byte: SimDuration,
}

impl CpuSpec {
    /// The paper's host: dual-socket Intel Xeon Platinum 8171M, 26 cores /
    /// 52 threads per socket at 2.6 GHz (the paper uses up to 52 threads,
    /// i.e. one socket). Cache latencies are typical Skylake-SP values.
    pub fn xeon_8171m() -> Self {
        Self {
            clock: ClockRate::from_ghz(2.6),
            threads: 52,
            caches: CacheHierarchy::new(
                vec![
                    CacheLevel::new(32 << 10, SimDuration::from_nanos(1.5)),
                    CacheLevel::new(1 << 20, SimDuration::from_nanos(5.0)),
                    CacheLevel::new(36308992, SimDuration::from_nanos(20.0)), // 34.6 MB LLC
                ],
                SimDuration::from_nanos(90.0),
            ),
            locality_penalty: 4.0,
            row_stream_per_byte: SimDuration::from_nanos(0.15),
        }
    }

    /// Expected cost of one decision-node visit for a model of the given
    /// shape: a base ALU/branch cost plus the cache access implied by the
    /// model's (locality-inflated) working set.
    pub fn visit_cost(&self, stats: &ModelStats) -> SimDuration {
        let base = self.clock.cycles(3);
        let working_set = (stats.live_layout_bytes() as f64 * self.locality_penalty) as u64;
        base + self.caches.access_cost(working_set)
    }

    /// Per-record cost of loading the feature row.
    pub fn row_load_cost(&self, stats: &ModelStats) -> SimDuration {
        self.row_stream_per_byte * stats.row_bytes() as f64
    }
}

/// Parallel scaling efficiency for `threads` software threads: linear
/// speedup derated by a per-thread coherence/imbalance tax (52 threads reach
/// ~75% efficiency, matching the paper's best-case CPU scaling).
pub fn parallel_efficiency(threads: usize) -> f64 {
    if threads <= 1 {
        return 1.0;
    }
    (1.0 - 0.005 * (threads as f64 - 1.0)).max(0.3)
}

/// Effective parallelism for a batch: you cannot use more threads than
/// records, and scaling is derated by [`parallel_efficiency`].
pub fn effective_parallelism(threads: usize, n_records: u64) -> f64 {
    let usable = (threads as u64).min(n_records.max(1)) as usize;
    usable as f64 * parallel_efficiency(usable)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlscore_forest::{ForestConfig, RandomForest};

    fn stats(n_trees: usize, depth: usize, n_features: usize) -> ModelStats {
        ModelStats::of(&RandomForest::synthetic_full(
            &ForestConfig::classification(n_trees, n_features, 2).with_depth(depth),
            1,
        ))
    }

    #[test]
    fn visit_cost_grows_with_model_size() {
        let cpu = CpuSpec::xeon_8171m();
        let small = cpu.visit_cost(&stats(1, 6, 4));
        let big = cpu.visit_cost(&stats(128, 10, 28));
        assert!(big > small * 2.0, "small {small}, big {big}");
    }

    #[test]
    fn big_model_visit_cost_matches_paper_implied_range() {
        // 128 trees x depth 10 => ~4.2 MB live; paper-implied visits cost
        // ~17-25 ns on the Xeon.
        let cpu = CpuSpec::xeon_8171m();
        let v = cpu.visit_cost(&stats(128, 10, 28)).as_nanos();
        assert!((14.0..30.0).contains(&v), "visit cost {v} ns");
    }

    #[test]
    fn row_load_scales_with_features() {
        let cpu = CpuSpec::xeon_8171m();
        let iris = cpu.row_load_cost(&stats(1, 4, 4));
        let higgs = cpu.row_load_cost(&stats(1, 4, 28));
        assert_eq!(higgs, iris * 7.0);
    }

    #[test]
    fn parallel_efficiency_bounds() {
        assert_eq!(parallel_efficiency(1), 1.0);
        let e52 = parallel_efficiency(52);
        assert!((0.7..0.8).contains(&e52), "e52 {e52}");
        assert!(parallel_efficiency(1000) >= 0.3);
    }

    #[test]
    fn effective_parallelism_caps_at_records() {
        assert_eq!(effective_parallelism(52, 1), 1.0);
        assert!(effective_parallelism(52, 10) <= 10.0);
        assert!(effective_parallelism(52, 1_000_000) > 35.0);
    }
}
