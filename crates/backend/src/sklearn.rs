//! The scikit-learn-like CPU backend ("CPU_SKLearn").
//!
//! Functionally, a blocked multi-threaded tree traversal on the shared
//! work-stealing [`ExecPool`] (spawned once per process, reused across
//! calls). The timing model mirrors what the paper measured for
//! scikit-learn batch scoring: a ~1 ms per-call overhead (the Python-side
//! dispatch that makes sklearn lose to ONNX below a few thousand records),
//! a fixed per-record cost (vote aggregation, output assembly), and a
//! per-node-visit cost from the cache model, divided by the effective
//! thread parallelism.

use serde::{Deserialize, Serialize};

use mlscore_data::{RecordStream, TabularFrame};
use mlscore_exec::{kernel, ExecPool, RunConfig};
use mlscore_forest::{ModelStats, Predictions, RandomForest};
use mlscore_sim::{SimDuration, SimInstant, Stage, TimingBreakdown};
use mlscore_telemetry::{Scope, Tracer};

use crate::artifact::{CompiledModel, Lowered};
use crate::cost::{effective_parallelism, CpuSpec};
use crate::error::BackendError;
use crate::traits::{ScoringBackend, StreamChunk, StreamOutcome};

/// Timing-model constants for the sklearn-like engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SklearnCostParams {
    /// Fixed cost of one scoring call (Python dispatch, array setup).
    pub call_overhead: SimDuration,
    /// Fixed per-record cost (vote accumulation, result assembly).
    pub per_record: SimDuration,
    /// Additional per-record cost per feature column — the Python/NumPy row
    /// handling tax that makes wide HIGGS rows far more expensive per
    /// record than narrow IRIS rows (visible in the paper's 1-tree curves).
    pub per_record_per_feature: SimDuration,
}

impl Default for SklearnCostParams {
    fn default() -> Self {
        Self {
            call_overhead: SimDuration::from_millis(1.0),
            per_record: SimDuration::from_nanos(350.0),
            per_record_per_feature: SimDuration::from_nanos(100.0),
        }
    }
}

/// The "CPU_SKLearn" backend: batch-optimized, multi-threaded traversal.
///
/// # Example
///
/// ```
/// use mlscore_backend::{ScoringBackend, ScoringRequest, SklearnCpu};
/// use mlscore_data::Dataset;
/// use mlscore_forest::{ForestConfig, RandomForest};
///
/// let forest = RandomForest::synthetic_full(
///     &ForestConfig::classification(8, 4, 3).with_depth(6),
///     3,
/// );
/// let data = Dataset::iris(64, 5).normalized();
/// let backend = SklearnCpu::with_threads(4);
/// let req = ScoringRequest::new(&forest, data.frame())?;
/// let preds = backend.score(&req)?;
/// assert_eq!(preds.len(), 64);
/// # Ok::<(), mlscore_backend::BackendError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SklearnCpu {
    spec: CpuSpec,
    threads: usize,
    params: SklearnCostParams,
    name: String,
}

impl SklearnCpu {
    /// The paper's configuration: the Xeon 8171M with 52 threads.
    pub fn paper_default() -> Self {
        Self::with_threads(52)
    }

    /// A backend on the paper's Xeon with an explicit thread count.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn with_threads(threads: usize) -> Self {
        Self::new(CpuSpec::xeon_8171m(), threads, SklearnCostParams::default())
    }

    /// Fully custom construction.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(spec: CpuSpec, threads: usize, params: SklearnCostParams) -> Self {
        assert!(threads > 0, "need at least one thread");
        let name = if threads == 1 {
            "CPU_SKLearn_1th".to_string()
        } else {
            format!("CPU_SKLearn_{threads}th")
        };
        Self {
            spec,
            threads,
            params,
            name,
        }
    }

    /// The thread count used for scoring.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Executor configuration for one scoring call.
    fn run_config(&self) -> RunConfig {
        RunConfig::for_threads(self.threads)
    }
}

impl ScoringBackend for SklearnCpu {
    fn name(&self) -> &str {
        &self.name
    }

    // sklearn has no lowering step — the batch kernel walks the pointer
    // trees directly, so the default `lower` (Lowered::Reference) holds and
    // compile/warm scoring differ only in the skipped deserialize.

    fn score_lowered(
        &self,
        forest: &RandomForest,
        lowered: &Lowered,
        frame: &TabularFrame,
    ) -> Result<Predictions, BackendError> {
        let _ = lowered;
        let (preds, _) =
            kernel::score_forest_batch(forest, frame, ExecPool::global(), &self.run_config());
        Ok(preds)
    }

    fn score_lowered_traced(
        &self,
        forest: &RandomForest,
        lowered: &Lowered,
        frame: &TabularFrame,
        tracer: &Tracer,
        start: SimInstant,
    ) -> Result<Predictions, BackendError> {
        let _ = lowered;
        let (preds, report) =
            kernel::score_forest_batch(forest, frame, ExecPool::global(), &self.run_config());
        report.record_spans(tracer, start, self.name());
        Ok(preds)
    }

    // The fused path walks the pointer trees one chunk at a time, folding
    // per-chunk predictions in pull order — bit-exact with the whole-frame
    // batch kernel since every record is fully scored within one chunk.
    fn score_prepared_stream(
        &self,
        model: &CompiledModel,
        stream: &mut dyn RecordStream,
    ) -> Result<StreamOutcome, BackendError> {
        model.ensure_scorable(self.name(), stream.n_features())?;
        let forest = model.forest();
        let cfg = self.run_config();
        let mut chunks = Vec::new();
        let mut rows = 0;
        let mut out: Option<Predictions> = None;
        while let Some(chunk) = stream.next_chunk() {
            if chunk.is_empty() {
                continue;
            }
            let (preds, _) = kernel::score_forest_batch(forest, chunk, ExecPool::global(), &cfg);
            rows += chunk.n_rows();
            chunks.push(StreamChunk {
                rows: chunk.n_rows(),
                kernel: None,
            });
            match &mut out {
                None => out = Some(preds),
                Some(acc) => acc.append(&preds),
            }
        }
        let predictions = out.unwrap_or_else(|| {
            let empty = TabularFrame::with_capacity(0, model.stats().n_features);
            kernel::score_forest_batch(forest, &empty, ExecPool::global(), &cfg).0
        });
        Ok(StreamOutcome {
            predictions,
            rows,
            chunks,
        })
    }

    fn estimate(&self, stats: &ModelStats, n_records: u64) -> TimingBreakdown {
        self.estimate_traced(stats, n_records, &Tracer::disabled(), SimInstant::ZERO)
    }

    fn estimate_traced(
        &self,
        stats: &ModelStats,
        n_records: u64,
        tracer: &Tracer,
        start: SimInstant,
    ) -> TimingBreakdown {
        let per_record = self.params.per_record
            + self.params.per_record_per_feature * stats.n_features as f64
            + self.spec.row_load_cost(stats)
            + self.spec.visit_cost(stats) * stats.visits_per_record();
        let parallel = effective_parallelism(self.threads, n_records);
        let compute = per_record * (n_records as f64 / parallel);
        let mut b = TimingBreakdown::new();
        b.add(Stage::SoftwareOverhead, self.params.call_overhead);
        b.add(Stage::Scoring, compute);

        let t = tracer
            .span("python dispatch", start)
            .stage(Stage::SoftwareOverhead)
            .scope(Scope::Offload)
            .track(self.name(), "offload")
            .meta("backend", self.name())
            .finish_after(self.params.call_overhead);
        tracer
            .span("batch traversal", t)
            .stage(Stage::Scoring)
            .scope(Scope::Offload)
            .track(self.name(), "offload")
            .meta("threads", self.threads.to_string())
            .finish_after(compute);
        if tracer.is_enabled() {
            // Worker lanes: the batch is chunked across threads that all run
            // for (modelled) the same duration.
            let workers = self
                .threads
                .min(n_records.max(1) as usize)
                .min(MAX_WORKER_LANES);
            for w in 0..workers {
                tracer
                    .span(format!("chunk {w}"), t)
                    .track(self.name(), format!("worker{w}"))
                    .meta("records", (n_records / workers as u64).to_string())
                    .finish_after(compute);
            }
        }
        b
    }
}

/// Cap on per-worker detail lanes so a 52-thread trace stays readable.
const MAX_WORKER_LANES: usize = 8;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ScoringRequest;
    use mlscore_data::Dataset;
    use mlscore_forest::ForestConfig;

    fn iris_setup() -> (RandomForest, Dataset) {
        let forest =
            RandomForest::synthetic_full(&ForestConfig::classification(12, 4, 3).with_depth(7), 9);
        (forest, Dataset::iris(257, 4).normalized())
    }

    #[test]
    fn multithreaded_matches_reference() {
        let (forest, data) = iris_setup();
        let req = ScoringRequest::new(&forest, data.frame()).unwrap();
        let preds = SklearnCpu::with_threads(8).score(&req).unwrap();
        let reference = forest.predict_batch(data.frame().as_slice());
        assert_eq!(preds, reference);
    }

    #[test]
    fn single_thread_matches_reference() {
        let (forest, data) = iris_setup();
        let req = ScoringRequest::new(&forest, data.frame()).unwrap();
        let preds = SklearnCpu::with_threads(1).score(&req).unwrap();
        assert_eq!(preds, forest.predict_batch(data.frame().as_slice()));
    }

    #[test]
    fn regression_scoring_works() {
        let forest = RandomForest::synthetic_full(&ForestConfig::regression(6, 3).with_depth(5), 2);
        let frame = mlscore_data::TabularFrame::from_rows(
            (0..60).map(|i| (i as f32 * 0.31) % 1.0).collect(),
            3,
        )
        .unwrap();
        let req = ScoringRequest::new(&forest, &frame).unwrap();
        let preds = SklearnCpu::with_threads(3).score(&req).unwrap();
        assert_eq!(preds, forest.predict_batch(frame.as_slice()));
    }

    #[test]
    fn stream_scoring_matches_prepared() {
        use mlscore_data::FrameScanner;
        use mlscore_forest::ModelBundle;
        let (forest, data) = iris_setup();
        let bundle = ModelBundle::serialize(&forest);
        let backend = SklearnCpu::with_threads(4);
        let model = crate::artifact::compile(&backend, &bundle).unwrap();
        let want = backend.score_prepared(&model, data.frame()).unwrap();
        for chunk_rows in [1, 13, 512] {
            let mut scanner = FrameScanner::new(data.frame(), chunk_rows);
            let out = backend.score_prepared_stream(&model, &mut scanner).unwrap();
            assert_eq!(out.predictions, want, "chunk_rows={chunk_rows}");
            assert_eq!(out.rows, data.frame().n_rows());
        }
    }

    #[test]
    fn estimate_has_call_overhead_floor() {
        let (forest, _) = iris_setup();
        let stats = ModelStats::of(&forest);
        let b = SklearnCpu::paper_default().estimate(&stats, 1);
        assert!(b.total() >= SimDuration::from_millis(1.0));
        assert!(b.get(Stage::SoftwareOverhead) >= SimDuration::from_millis(1.0));
    }

    #[test]
    fn estimate_scales_roughly_linearly_at_large_n() {
        let (forest, _) = iris_setup();
        let stats = ModelStats::of(&forest);
        let backend = SklearnCpu::paper_default();
        let t1 = backend.estimate(&stats, 1_000_000).get(Stage::Scoring);
        let t2 = backend.estimate(&stats, 2_000_000).get(Stage::Scoring);
        assert!((t2.ratio(t1) - 2.0).abs() < 0.01);
    }

    #[test]
    fn more_threads_score_faster_in_model() {
        let (forest, _) = iris_setup();
        let stats = ModelStats::of(&forest);
        let t1 = SklearnCpu::with_threads(1)
            .estimate(&stats, 1_000_000)
            .total();
        let t52 = SklearnCpu::with_threads(52)
            .estimate(&stats, 1_000_000)
            .total();
        assert!(t1.ratio(t52) > 20.0);
    }

    #[test]
    fn name_reflects_threads() {
        assert_eq!(SklearnCpu::paper_default().name(), "CPU_SKLearn_52th");
        assert_eq!(SklearnCpu::with_threads(1).name(), "CPU_SKLearn_1th");
        assert_eq!(SklearnCpu::with_threads(4).threads(), 4);
    }

    #[test]
    fn traced_estimate_reconstructs_exactly() {
        use mlscore_sim::SimInstant;
        use mlscore_telemetry::{Scope, Tracer};
        let (forest, _) = iris_setup();
        let stats = ModelStats::of(&forest);
        let backend = SklearnCpu::with_threads(4);
        let tracer = Tracer::new();
        let traced = backend.estimate_traced(&stats, 10_000, &tracer, SimInstant::ZERO);
        assert_eq!(traced, backend.estimate(&stats, 10_000));
        let trace = tracer.take();
        assert_eq!(trace.breakdown(Scope::Offload), traced);
        // 2 offload spans + 4 worker detail lanes.
        assert_eq!(trace.len(), 6);
    }

    #[test]
    fn score_traced_records_worker_detail_spans() {
        use mlscore_sim::SimInstant;
        use mlscore_telemetry::{Scope, Tracer};
        let (forest, data) = iris_setup();
        let req = ScoringRequest::new(&forest, data.frame()).unwrap();
        let backend = SklearnCpu::with_threads(4);
        let tracer = Tracer::new();
        let preds = backend
            .score_traced(&req, &tracer, SimInstant::ZERO)
            .unwrap();
        assert_eq!(preds, forest.predict_batch(data.frame().as_slice()));
        let trace = tracer.take();
        assert!(!trace.is_empty(), "expected worker spans");
        assert!(trace.events().iter().all(|e| e.scope == Scope::Detail));
        // Detail spans never perturb the modelled breakdown folds.
        assert!(trace.breakdown(Scope::Offload).total().as_secs() == 0.0);
    }

    #[test]
    fn empty_batch_is_fine() {
        let (forest, _) = iris_setup();
        let frame = mlscore_data::TabularFrame::from_rows(vec![], 4).unwrap();
        let req = ScoringRequest::new(&forest, &frame).unwrap();
        let preds = SklearnCpu::with_threads(4).score(&req).unwrap();
        assert!(preds.is_empty());
    }
}
