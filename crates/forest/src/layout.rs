//! The paper's flat node memory layout (Fig. 4b).
//!
//! Each node is stored as four 32-bit words. For a decision node the words
//! are `[left, right, attribute, value]`; for a leaf node the first word is
//! negative and the second holds the outcome (class id, or the value for
//! regression). The FPGA inference engine reads trees in exactly this format
//! from its per-PE tree memories, and the ONNX-like CPU backend scores over
//! it directly.
//!
//! The paper sizes each tree memory for a *full* binary tree with no missing
//! nodes ("each tree consumes a memory footprint equaling 2^10 words" for
//! depth-10 trees). We follow Fig. 4b exactly — leaves are real records —
//! so a tree of depth `d` is padded to `2^(d+1)` four-word records (2047
//! live records for a full depth-10 tree, rounded to a power of two for
//! indexing); BRAM accounting in `mlscore-fpga` uses this capacity.

use serde::{Deserialize, Serialize};

use crate::error::ForestError;
use crate::forest::{RandomForest, Task};
use crate::node::{LeafValue, Node};
use crate::tree::DecisionTree;

/// Number of 32-bit words per node record.
pub const NODE_WORDS: usize = 4;

/// Bytes per node record.
pub const NODE_BYTES: usize = NODE_WORDS * 4;

/// One flat node record decoded from its four-word encoding — the typed
/// view layout builders (the executor's lockstep, SIMD, and QuickScorer
/// images) consume instead of re-parsing the raw words themselves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NodeRecord {
    /// A decision record: `x[feature] <= threshold` selects `left`,
    /// otherwise `right`.
    Decision {
        /// Left-child record index.
        left: u32,
        /// Right-child record index.
        right: u32,
        /// Feature column tested.
        feature: u32,
        /// Split threshold.
        threshold: f32,
    },
    /// A leaf record carrying its raw outcome word (class id as `f32` for
    /// classification, the value for regression).
    Leaf {
        /// The outcome word.
        payload: f32,
    },
}

/// A decision tree encoded in the Fig. 4b flat format, padded to a
/// power-of-two record capacity.
///
/// # Example
///
/// ```
/// use mlscore_forest::{DecisionTree, FlatTree, Node};
///
/// let tree = DecisionTree::from_nodes(vec![
///     Node::decision(0, 0.5, 1, 2),
///     Node::class_leaf(0),
///     Node::class_leaf(1),
/// ])?;
/// let flat = FlatTree::from_tree(&tree, 10)?;
/// assert_eq!(flat.score(&[0.7]), 1.0);
/// assert_eq!(flat.capacity_records(), 2048); // 2^(10+1)
/// # Ok::<(), mlscore_forest::ForestError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlatTree {
    words: Vec<f32>,
    live_records: usize,
    max_depth: usize,
}

impl FlatTree {
    /// Record capacity for a given maximum depth: `2^(depth+1)`.
    pub fn capacity_for_depth(max_depth: usize) -> usize {
        1usize << (max_depth + 1)
    }

    /// Encodes `tree` into the flat format with capacity for `max_depth`
    /// levels.
    ///
    /// # Errors
    ///
    /// Returns [`ForestError::DepthExceeded`] if the tree is deeper than
    /// `max_depth` (the FPGA engine's limit is 10; deeper trees must stay on
    /// the CPU or use split execution).
    pub fn from_tree(tree: &DecisionTree, max_depth: usize) -> Result<Self, ForestError> {
        let depth = tree.depth();
        if depth > max_depth {
            return Err(ForestError::DepthExceeded { depth, max_depth });
        }
        let capacity = Self::capacity_for_depth(max_depth);
        debug_assert!(tree.len() <= capacity);
        let mut words = Vec::with_capacity(capacity * NODE_WORDS);
        for node in tree.nodes() {
            match *node {
                Node::Decision {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    words.push(left as f32);
                    words.push(right as f32);
                    words.push(feature as f32);
                    words.push(threshold);
                }
                Node::Leaf(LeafValue::Class(c)) => {
                    words.extend_from_slice(&[-1.0, c as f32, 0.0, 0.0]);
                }
                Node::Leaf(LeafValue::Value(v)) => {
                    words.extend_from_slice(&[-1.0, v, 0.0, 0.0]);
                }
            }
        }
        // Pad to capacity with sentinel leaves so the memory image is the
        // full-tree footprint the paper assumes.
        words.resize(capacity * NODE_WORDS, 0.0);
        for i in tree.len()..capacity {
            words[i * NODE_WORDS] = -1.0;
        }
        Ok(Self {
            words,
            live_records: tree.len(),
            max_depth,
        })
    }

    /// The raw word image (what the FPGA's tree memory holds).
    pub fn words(&self) -> &[f32] {
        &self.words
    }

    /// Number of live (non-padding) node records.
    pub fn live_records(&self) -> usize {
        self.live_records
    }

    /// Total record capacity including padding.
    pub fn capacity_records(&self) -> usize {
        self.words.len() / NODE_WORDS
    }

    /// The maximum depth this encoding supports.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Memory footprint of the padded image in bytes.
    pub fn footprint_bytes(&self) -> usize {
        self.words.len() * 4
    }

    /// Memory footprint of only the live records in bytes (what a non-padded
    /// software scorer touches).
    pub fn live_bytes(&self) -> usize {
        self.live_records * NODE_BYTES
    }

    /// Decodes one node record (live or padding) into its typed view.
    ///
    /// Padding records decode as sentinel leaves, exactly as the PE
    /// datapath would read them.
    ///
    /// # Panics
    ///
    /// Panics if `i >= capacity_records()`.
    pub fn record(&self, i: usize) -> NodeRecord {
        let w = &self.words[i * NODE_WORDS..(i + 1) * NODE_WORDS];
        if w[0] < 0.0 {
            NodeRecord::Leaf { payload: w[1] }
        } else {
            NodeRecord::Decision {
                left: w[0] as u32,
                right: w[1] as u32,
                feature: w[2] as u32,
                threshold: w[3],
            }
        }
    }

    /// Iterates the decoded records of the whole padded image, in index
    /// order (padding decodes as sentinel leaves).
    pub fn records(&self) -> impl Iterator<Item = NodeRecord> + '_ {
        (0..self.capacity_records()).map(|i| self.record(i))
    }

    /// Number of leaf records among the live (non-padding) records.
    pub fn n_live_leaves(&self) -> usize {
        (0..self.live_records)
            .filter(|&i| matches!(self.record(i), NodeRecord::Leaf { .. }))
            .count()
    }

    /// Scores one record, returning the raw outcome word (class id as `f32`
    /// for classification, value for regression).
    ///
    /// This mirrors the PE datapath: repeatedly read a 4-word record, test
    /// the attribute, and branch, until the first word is negative.
    ///
    /// # Panics
    ///
    /// Panics if a decision record references a feature beyond `x.len()`.
    // analyze: hot
    pub fn score(&self, x: &[f32]) -> f32 {
        let mut idx = 0usize;
        loop {
            let base = idx * NODE_WORDS;
            let w0 = self.words[base];
            if w0 < 0.0 {
                return self.words[base + 1];
            }
            let right = self.words[base + 1];
            let feature = self.words[base + 2] as usize;
            let threshold = self.words[base + 3];
            idx = if x[feature] <= threshold {
                w0 as usize
            } else {
                right as usize
            };
        }
    }

    /// Scores one record, counting node records visited (used by cycle
    /// models).
    // analyze: hot
    pub fn score_counting(&self, x: &[f32]) -> (f32, usize) {
        let mut idx = 0usize;
        let mut visited = 1usize;
        loop {
            let base = idx * NODE_WORDS;
            let w0 = self.words[base];
            if w0 < 0.0 {
                return (self.words[base + 1], visited);
            }
            let right = self.words[base + 1];
            let feature = self.words[base + 2] as usize;
            let threshold = self.words[base + 3];
            idx = if x[feature] <= threshold {
                w0 as usize
            } else {
                right as usize
            };
            visited += 1;
        }
    }

    /// Decodes the live records back into a [`DecisionTree`].
    ///
    /// # Errors
    ///
    /// Returns [`ForestError::Corrupt`] if record fields are not decodable
    /// (only possible for hand-built images).
    pub fn to_tree(&self, task: Task) -> Result<DecisionTree, ForestError> {
        let mut nodes = Vec::with_capacity(self.live_records);
        for i in 0..self.live_records {
            let base = i * NODE_WORDS;
            let w0 = self.words[base];
            if w0 < 0.0 {
                let outcome = self.words[base + 1];
                let leaf = match task {
                    Task::Classification { .. } => {
                        if outcome < 0.0 || outcome.fract() != 0.0 {
                            return Err(ForestError::Corrupt(format!(
                                "record {i}: non-integer class {outcome}"
                            )));
                        }
                        LeafValue::Class(outcome as u32)
                    }
                    Task::Regression => LeafValue::Value(outcome),
                };
                nodes.push(Node::Leaf(leaf));
            } else {
                let left = self.words[base];
                let right = self.words[base + 1];
                let feature = self.words[base + 2];
                if left.fract() != 0.0 || right.fract() != 0.0 || feature.fract() != 0.0 {
                    return Err(ForestError::Corrupt(format!(
                        "record {i}: non-integer index field"
                    )));
                }
                nodes.push(Node::decision(
                    feature as u16,
                    self.words[base + 3],
                    left as u32,
                    right as u32,
                ));
            }
        }
        DecisionTree::from_nodes(nodes)
    }
}

/// A whole forest in the flat format — the model image transferred to the
/// FPGA's tree memories.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlatForest {
    trees: Vec<FlatTree>,
    n_features: usize,
    task: Task,
}

impl FlatForest {
    /// Encodes every tree of `forest` at the given capacity depth.
    ///
    /// # Errors
    ///
    /// Returns [`ForestError::DepthExceeded`] if any tree is deeper than
    /// `max_depth`.
    pub fn from_forest(forest: &RandomForest, max_depth: usize) -> Result<Self, ForestError> {
        let trees = forest
            .trees()
            .iter()
            .map(|t| FlatTree::from_tree(t, max_depth))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            trees,
            n_features: forest.n_features(),
            task: forest.task(),
        })
    }

    /// The encoded trees.
    pub fn trees(&self) -> &[FlatTree] {
        &self.trees
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Number of features the model expects.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// The learning task.
    pub fn task(&self) -> Task {
        self.task
    }

    /// Total padded model image size in bytes (what is DMA'd to the
    /// accelerator).
    pub fn footprint_bytes(&self) -> usize {
        self.trees.iter().map(FlatTree::footprint_bytes).sum()
    }

    /// Scores one record: majority vote (classification) or average
    /// (regression) over all trees, using the same combination rules as
    /// [`RandomForest`].
    ///
    /// Vote counting reuses a thread-local scratch buffer, so repeated
    /// calls allocate nothing; batch callers that manage their own scratch
    /// should use [`FlatForest::score_one_with`] directly.
    pub fn score_one(&self, x: &[f32]) -> f32 {
        match self.task {
            Task::Classification { .. } => {
                VOTE_SCRATCH.with(|s| self.score_one_with(x, &mut s.borrow_mut()))
            }
            Task::Regression => {
                let sum: f32 = self.trees.iter().map(|t| t.score(x)).sum();
                sum / self.trees.len() as f32
            }
        }
    }

    /// Scores one record using a caller-provided vote scratch buffer. The
    /// buffer is cleared and resized to the class count on every call
    /// (regression ignores it), so a loop can pass the same `Vec` for
    /// every record and never reallocate.
    // analyze: hot
    pub fn score_one_with(&self, x: &[f32], votes: &mut Vec<u32>) -> f32 {
        match self.task {
            Task::Classification { n_classes } => {
                votes.clear();
                votes.resize(n_classes as usize, 0);
                for tree in &self.trees {
                    votes[tree.score(x) as usize] += 1;
                }
                RandomForest::majority(votes) as f32
            }
            Task::Regression => {
                let sum: f32 = self.trees.iter().map(|t| t.score(x)).sum();
                sum / self.trees.len() as f32
            }
        }
    }

    /// Sequentially scores a row-major batch with one reused vote scratch,
    /// returning the raw outcome word per record.
    ///
    /// This is the sequential reference the parallel executor kernels are
    /// tested bit-exact against.
    ///
    /// # Panics
    ///
    /// Panics if `records.len()` is not a multiple of the feature count.
    pub fn score_batch(&self, records: &[f32]) -> Vec<f32> {
        assert_eq!(
            records.len() % self.n_features,
            0,
            "records length must be a multiple of n_features"
        );
        let mut votes = Vec::new();
        records
            .chunks_exact(self.n_features)
            .map(|row| self.score_one_with(row, &mut votes))
            .collect()
    }
}

thread_local! {
    static VOTE_SCRATCH: std::cell::RefCell<Vec<u32>> = const { std::cell::RefCell::new(Vec::new()) };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::ForestConfig;

    fn stump() -> DecisionTree {
        DecisionTree::from_nodes(vec![
            Node::decision(0, 0.5, 1, 2),
            Node::class_leaf(0),
            Node::class_leaf(1),
        ])
        .unwrap()
    }

    #[test]
    fn capacity_is_power_of_two() {
        assert_eq!(FlatTree::capacity_for_depth(10), 2048);
        assert_eq!(FlatTree::capacity_for_depth(0), 2);
    }

    #[test]
    fn flat_scoring_matches_tree() {
        let tree = stump();
        let flat = FlatTree::from_tree(&tree, 4).unwrap();
        for x in [0.0f32, 0.25, 0.5, 0.75, 1.0] {
            assert_eq!(
                flat.score(&[x]) as u32,
                tree.predict(&[x]).as_class().unwrap()
            );
        }
    }

    #[test]
    fn depth_limit_enforced() {
        let cfg = ForestConfig::classification(1, 4, 2).with_depth(11);
        let forest = RandomForest::synthetic_full(&cfg, 5);
        let err = FlatForest::from_forest(&forest, 10).unwrap_err();
        assert!(matches!(
            err,
            ForestError::DepthExceeded {
                depth: 11,
                max_depth: 10
            }
        ));
    }

    #[test]
    fn padding_fills_to_capacity_with_sentinels() {
        let flat = FlatTree::from_tree(&stump(), 3).unwrap();
        assert_eq!(flat.capacity_records(), 16);
        assert_eq!(flat.live_records(), 3);
        assert_eq!(flat.footprint_bytes(), 16 * NODE_BYTES);
        assert_eq!(flat.live_bytes(), 3 * NODE_BYTES);
        // Padding records are leaves.
        for i in 3..16 {
            assert!(flat.words()[i * NODE_WORDS] < 0.0);
        }
    }

    #[test]
    fn roundtrip_to_tree() {
        let cfg = ForestConfig::classification(1, 5, 3).with_depth(6);
        let forest = RandomForest::synthetic_full(&cfg, 21);
        let tree = &forest.trees()[0];
        let flat = FlatTree::from_tree(tree, 8).unwrap();
        let back = flat.to_tree(forest.task()).unwrap();
        assert_eq!(&back, tree);
    }

    #[test]
    fn forest_votes_match_reference() {
        let cfg = ForestConfig::classification(16, 4, 3).with_depth(7);
        let forest = RandomForest::synthetic_full(&cfg, 33);
        let flat = FlatForest::from_forest(&forest, 10).unwrap();
        for i in 0..50 {
            let x: Vec<f32> = (0..4)
                .map(|j| ((i * 7 + j * 13) % 100) as f32 / 100.0)
                .collect();
            assert_eq!(
                flat.score_one(&x) as u32,
                forest.predict_one(&x).as_class().unwrap(),
                "record {i}"
            );
        }
    }

    #[test]
    fn regression_flat_average() {
        let trees = vec![
            DecisionTree::leaf(LeafValue::Value(2.0)),
            DecisionTree::leaf(LeafValue::Value(4.0)),
        ];
        let forest = RandomForest::from_trees(trees, 1, Task::Regression).unwrap();
        let flat = FlatForest::from_forest(&forest, 2).unwrap();
        assert_eq!(flat.score_one(&[0.0]), 3.0);
    }

    #[test]
    fn score_batch_and_scratch_paths_agree() {
        let cfg = ForestConfig::classification(12, 4, 3).with_depth(6);
        let forest = RandomForest::synthetic_full(&cfg, 17);
        let flat = FlatForest::from_forest(&forest, 6).unwrap();
        let records: Vec<f32> = (0..40).map(|i| (i as f32 * 0.173) % 1.0).collect();
        let batch = flat.score_batch(&records);
        let mut votes = Vec::new();
        for (i, row) in records.chunks_exact(4).enumerate() {
            assert_eq!(batch[i], flat.score_one(row));
            assert_eq!(batch[i], flat.score_one_with(row, &mut votes));
        }
        // Regression path ignores the scratch but must agree too.
        let rcfg = ForestConfig::regression(5, 4).with_depth(4);
        let rforest = RandomForest::synthetic_full(&rcfg, 3);
        let rflat = FlatForest::from_forest(&rforest, 4).unwrap();
        let rbatch = rflat.score_batch(&records);
        for (i, row) in records.chunks_exact(4).enumerate() {
            assert_eq!(rbatch[i].to_bits(), rflat.score_one(row).to_bits());
        }
    }

    #[test]
    fn footprint_scales_with_trees_and_depth() {
        let small = FlatForest::from_forest(
            &RandomForest::synthetic_full(&ForestConfig::classification(1, 4, 2).with_depth(6), 1),
            6,
        )
        .unwrap();
        let big = FlatForest::from_forest(
            &RandomForest::synthetic_full(
                &ForestConfig::classification(128, 4, 2).with_depth(10),
                1,
            ),
            10,
        )
        .unwrap();
        assert_eq!(small.footprint_bytes(), 128 * NODE_BYTES);
        assert_eq!(big.footprint_bytes(), 128 * 2048 * NODE_BYTES);
    }

    #[test]
    fn record_view_matches_raw_words() {
        let cfg = ForestConfig::classification(1, 5, 3).with_depth(6);
        let forest = RandomForest::synthetic_full(&cfg, 21);
        let flat = FlatTree::from_tree(&forest.trees()[0], 7).unwrap();
        let mut leaves = 0usize;
        for (i, rec) in flat.records().enumerate() {
            let base = i * NODE_WORDS;
            match rec {
                NodeRecord::Decision {
                    left,
                    right,
                    feature,
                    threshold,
                } => {
                    assert_eq!(left as f32, flat.words()[base]);
                    assert_eq!(right as f32, flat.words()[base + 1]);
                    assert_eq!(feature as f32, flat.words()[base + 2]);
                    assert_eq!(threshold.to_bits(), flat.words()[base + 3].to_bits());
                }
                NodeRecord::Leaf { payload } => {
                    assert!(flat.words()[base] < 0.0);
                    assert_eq!(payload.to_bits(), flat.words()[base + 1].to_bits());
                    if i < flat.live_records() {
                        leaves += 1;
                    }
                }
            }
        }
        assert_eq!(flat.n_live_leaves(), leaves);
        // A full depth-6 tree has 64 leaves and 63 decisions.
        assert_eq!(leaves, 64);
        assert_eq!(flat.live_records(), 127);
    }

    #[test]
    fn score_counting_path_length_bounded_by_depth() {
        let cfg = ForestConfig::classification(1, 4, 2).with_depth(9);
        let forest = RandomForest::synthetic_full(&cfg, 2);
        let flat = FlatTree::from_tree(&forest.trees()[0], 10).unwrap();
        let (_, visited) = flat.score_counting(&[0.3, 0.6, 0.1, 0.9]);
        assert_eq!(visited, 10); // full tree: depth+1 records on every path
    }
}
