//! The binary model-bundle format.
//!
//! In the paper, models live in database tables in serialized binary form
//! (ONNX or a custom format) and the Python script deserializes them before
//! scoring — the "model pre-processing" stage of Fig. 11. This module is our
//! custom format: a small, versioned, length-checked binary encoding whose
//! deserialization cost is what the pipeline simulator charges to that stage.
//!
//! Layout (all little-endian):
//!
//! ```text
//! magic  b"MLSB"        4 bytes
//! version u16           currently 1
//! task    u8            0 = classification, 1 = regression
//! n_classes u32         0 for regression
//! n_features u32
//! n_trees u32
//! per tree:
//!   n_nodes u32
//!   per node:
//!     tag u8            0 = decision, 1 = leaf
//!     decision: feature u16, threshold f32, left u32, right u32
//!     leaf:     class u32 (classification) | value f32 (regression)
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::ForestError;
use crate::forest::{RandomForest, Task};
use crate::node::{LeafValue, Node};
use crate::tree::DecisionTree;

const MAGIC: &[u8; 4] = b"MLSB";
const VERSION: u16 = 1;

/// A serialized random forest — the bytes a DBMS would store in a model
/// table.
///
/// # Example
///
/// ```
/// use mlscore_forest::{ForestConfig, ModelBundle, RandomForest};
///
/// let forest = RandomForest::synthetic_full(
///     &ForestConfig::classification(4, 4, 3).with_depth(5),
///     7,
/// );
/// let bundle = ModelBundle::serialize(&forest);
/// let restored = bundle.deserialize()?;
/// assert_eq!(restored, forest);
/// # Ok::<(), mlscore_forest::ForestError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelBundle {
    bytes: Bytes,
}

impl ModelBundle {
    /// Serializes a forest into a bundle.
    pub fn serialize(forest: &RandomForest) -> Self {
        let mut buf = BytesMut::with_capacity(64 + forest.n_nodes() * 16);
        buf.put_slice(MAGIC);
        buf.put_u16_le(VERSION);
        match forest.task() {
            Task::Classification { n_classes } => {
                buf.put_u8(0);
                buf.put_u32_le(n_classes);
            }
            Task::Regression => {
                buf.put_u8(1);
                buf.put_u32_le(0);
            }
        }
        buf.put_u32_le(forest.n_features() as u32);
        buf.put_u32_le(forest.n_trees() as u32);
        for tree in forest.trees() {
            buf.put_u32_le(tree.len() as u32);
            for node in tree.nodes() {
                match *node {
                    Node::Decision {
                        feature,
                        threshold,
                        left,
                        right,
                    } => {
                        buf.put_u8(0);
                        buf.put_u16_le(feature);
                        buf.put_f32_le(threshold);
                        buf.put_u32_le(left);
                        buf.put_u32_le(right);
                    }
                    Node::Leaf(LeafValue::Class(c)) => {
                        buf.put_u8(1);
                        buf.put_u32_le(c);
                    }
                    Node::Leaf(LeafValue::Value(v)) => {
                        buf.put_u8(1);
                        buf.put_f32_le(v);
                    }
                }
            }
        }
        Self {
            bytes: buf.freeze(),
        }
    }

    /// Wraps raw bytes (e.g. read from storage) as a bundle without
    /// validating them; validation happens at [`ModelBundle::deserialize`].
    pub fn from_bytes(bytes: Bytes) -> Self {
        Self { bytes }
    }

    /// The serialized bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Serialized size in bytes — the "model size" the pipeline simulator
    /// charges for SQL-to-Python transfer and deserialization.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Returns `true` if the bundle holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Content hash of the serialized bytes (64-bit FNV-1a).
    ///
    /// This is the content-addressing half of an artifact-cache key: two
    /// bundles with identical bytes — and therefore identical deserialized
    /// models — hash equal, so a compiled artifact can be reused without
    /// re-parsing the bundle. The hash is deterministic across processes
    /// (unlike `std`'s seeded hashers).
    pub fn content_hash(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        for &b in self.bytes.iter() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        h
    }

    /// Parses the bundle back into a forest, validating structure.
    ///
    /// # Errors
    ///
    /// Returns [`ForestError::BadMagic`], [`ForestError::UnsupportedVersion`],
    /// or [`ForestError::Corrupt`] for malformed input, and any structural
    /// validation error from [`RandomForest::from_trees`].
    pub fn deserialize(&self) -> Result<RandomForest, ForestError> {
        let mut buf = self.bytes.clone();
        if buf.remaining() < 4 || &buf.copy_to_bytes(4)[..] != MAGIC {
            return Err(ForestError::BadMagic);
        }
        let version = take_u16(&mut buf, "version")?;
        if version != VERSION {
            return Err(ForestError::UnsupportedVersion(version));
        }
        let task_tag = take_u8(&mut buf, "task")?;
        let n_classes = take_u32(&mut buf, "n_classes")?;
        let task = match task_tag {
            0 => {
                if n_classes == 0 {
                    return Err(ForestError::Corrupt("classifier with zero classes".into()));
                }
                Task::Classification { n_classes }
            }
            1 => Task::Regression,
            t => return Err(ForestError::Corrupt(format!("unknown task tag {t}"))),
        };
        let n_features = take_u32(&mut buf, "n_features")? as usize;
        let n_trees = take_u32(&mut buf, "n_trees")? as usize;
        let mut trees = Vec::with_capacity(n_trees.min(1 << 20));
        for t in 0..n_trees {
            let n_nodes = take_u32(&mut buf, "n_nodes")? as usize;
            let mut nodes = Vec::with_capacity(n_nodes.min(1 << 24));
            for n in 0..n_nodes {
                let tag = take_u8(&mut buf, "node tag")?;
                match tag {
                    0 => {
                        let feature = take_u16(&mut buf, "feature")?;
                        let threshold = take_f32(&mut buf, "threshold")?;
                        let left = take_u32(&mut buf, "left")?;
                        let right = take_u32(&mut buf, "right")?;
                        nodes.push(Node::decision(feature, threshold, left, right));
                    }
                    1 => match task {
                        Task::Classification { .. } => {
                            nodes.push(Node::class_leaf(take_u32(&mut buf, "class")?));
                        }
                        Task::Regression => {
                            nodes.push(Node::value_leaf(take_f32(&mut buf, "value")?));
                        }
                    },
                    other => {
                        return Err(ForestError::Corrupt(format!(
                            "tree {t} node {n}: unknown node tag {other}"
                        )))
                    }
                }
            }
            trees.push(DecisionTree::from_nodes(nodes)?);
        }
        if buf.has_remaining() {
            return Err(ForestError::Corrupt(format!(
                "{} trailing bytes",
                buf.remaining()
            )));
        }
        RandomForest::from_trees(trees, n_features, task)
    }
}

fn take_u8(buf: &mut Bytes, what: &str) -> Result<u8, ForestError> {
    if buf.remaining() < 1 {
        return Err(ForestError::Corrupt(format!("truncated at {what}")));
    }
    Ok(buf.get_u8())
}

fn take_u16(buf: &mut Bytes, what: &str) -> Result<u16, ForestError> {
    if buf.remaining() < 2 {
        return Err(ForestError::Corrupt(format!("truncated at {what}")));
    }
    Ok(buf.get_u16_le())
}

fn take_u32(buf: &mut Bytes, what: &str) -> Result<u32, ForestError> {
    if buf.remaining() < 4 {
        return Err(ForestError::Corrupt(format!("truncated at {what}")));
    }
    Ok(buf.get_u32_le())
}

fn take_f32(buf: &mut Bytes, what: &str) -> Result<f32, ForestError> {
    if buf.remaining() < 4 {
        return Err(ForestError::Corrupt(format!("truncated at {what}")));
    }
    Ok(buf.get_f32_le())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::ForestConfig;

    fn sample_forest() -> RandomForest {
        RandomForest::synthetic_full(&ForestConfig::classification(3, 5, 4).with_depth(4), 17)
    }

    #[test]
    fn roundtrip_classifier() {
        let forest = sample_forest();
        let bundle = ModelBundle::serialize(&forest);
        assert_eq!(bundle.deserialize().unwrap(), forest);
    }

    #[test]
    fn roundtrip_regressor() {
        let forest = RandomForest::synthetic_full(&ForestConfig::regression(2, 3).with_depth(3), 5);
        let bundle = ModelBundle::serialize(&forest);
        assert_eq!(bundle.deserialize().unwrap(), forest);
    }

    #[test]
    fn bad_magic_rejected() {
        let bundle = ModelBundle::from_bytes(Bytes::from_static(b"NOPE\x01\x00"));
        assert_eq!(bundle.deserialize().unwrap_err(), ForestError::BadMagic);
    }

    #[test]
    fn unsupported_version_rejected() {
        let forest = sample_forest();
        let mut raw = ModelBundle::serialize(&forest).as_bytes().to_vec();
        raw[4] = 99;
        let err = ModelBundle::from_bytes(Bytes::from(raw))
            .deserialize()
            .unwrap_err();
        assert_eq!(err, ForestError::UnsupportedVersion(99));
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let forest = sample_forest();
        let raw = ModelBundle::serialize(&forest).as_bytes().to_vec();
        // Cut at a sampling of prefixes; all must fail cleanly, never panic.
        for cut in [0, 3, 5, 7, 11, 15, 16, raw.len() / 2, raw.len() - 1] {
            let bundle = ModelBundle::from_bytes(Bytes::from(raw[..cut].to_vec()));
            assert!(bundle.deserialize().is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let forest = sample_forest();
        let mut raw = ModelBundle::serialize(&forest).as_bytes().to_vec();
        raw.push(0xAB);
        let err = ModelBundle::from_bytes(Bytes::from(raw))
            .deserialize()
            .unwrap_err();
        assert!(matches!(err, ForestError::Corrupt(_)));
    }

    #[test]
    fn unknown_node_tag_rejected() {
        let forest = sample_forest();
        let mut raw = ModelBundle::serialize(&forest).as_bytes().to_vec();
        // First node tag lives right after the 19-byte header + 4-byte node count.
        raw[23] = 7;
        let err = ModelBundle::from_bytes(Bytes::from(raw))
            .deserialize()
            .unwrap_err();
        assert!(matches!(err, ForestError::Corrupt(_)));
    }

    #[test]
    fn content_hash_is_deterministic_and_content_addressed() {
        let forest = sample_forest();
        let a = ModelBundle::serialize(&forest);
        let b = ModelBundle::serialize(&forest);
        assert_eq!(a.content_hash(), b.content_hash());
        // FNV-1a of the empty input is the offset basis.
        assert_eq!(
            ModelBundle::from_bytes(Bytes::new()).content_hash(),
            0xcbf2_9ce4_8422_2325
        );
        // A different model hashes differently; so does a single flipped bit.
        let other =
            RandomForest::synthetic_full(&ForestConfig::classification(3, 5, 4).with_depth(4), 18);
        assert_ne!(
            a.content_hash(),
            ModelBundle::serialize(&other).content_hash()
        );
        let mut raw = a.as_bytes().to_vec();
        raw[10] ^= 1;
        assert_ne!(
            a.content_hash(),
            ModelBundle::from_bytes(Bytes::from(raw)).content_hash()
        );
    }

    #[test]
    fn zero_class_classifier_rejected() {
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u16_le(VERSION);
        buf.put_u8(0); // classification
        buf.put_u32_le(0); // zero classes
        buf.put_u32_le(1);
        buf.put_u32_le(0);
        let err = ModelBundle::from_bytes(buf.freeze())
            .deserialize()
            .unwrap_err();
        assert!(matches!(err, ForestError::Corrupt(_)));
    }

    #[test]
    fn size_grows_with_model() {
        let small = ModelBundle::serialize(&RandomForest::synthetic_full(
            &ForestConfig::classification(1, 4, 2).with_depth(3),
            1,
        ));
        let big = ModelBundle::serialize(&RandomForest::synthetic_full(
            &ForestConfig::classification(128, 4, 2).with_depth(10),
            1,
        ));
        assert!(big.len() > 100 * small.len());
        assert!(!small.is_empty());
    }
}
