//! Tree node types.

use serde::{Deserialize, Serialize};

/// The value stored in a leaf node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LeafValue {
    /// Classification outcome: a class id in `0..n_classes`.
    Class(u32),
    /// Regression outcome: a predicted value.
    Value(f32),
}

impl LeafValue {
    /// The class id, if this is a classification leaf.
    pub fn as_class(self) -> Option<u32> {
        match self {
            LeafValue::Class(c) => Some(c),
            LeafValue::Value(_) => None,
        }
    }

    /// The numeric value, if this is a regression leaf.
    pub fn as_value(self) -> Option<f32> {
        match self {
            LeafValue::Class(_) => None,
            LeafValue::Value(v) => Some(v),
        }
    }
}

/// One node of a decision tree.
///
/// The decision rule follows the scikit-learn convention used throughout the
/// workspace: an input goes **left** when `x[feature] <= threshold` and
/// right otherwise. Children are stored as indices into the owning tree's
/// node vector and must be *forward* references (child index greater than
/// the parent's), which makes trees acyclic by construction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Node {
    /// An internal decision node.
    Decision {
        /// The comparison attribute (feature column).
        feature: u16,
        /// The comparison value.
        threshold: f32,
        /// Index of the child taken when `x[feature] <= threshold`.
        left: u32,
        /// Index of the child taken otherwise.
        right: u32,
    },
    /// A terminal node carrying the scoring outcome.
    Leaf(LeafValue),
}

impl Node {
    /// Convenience constructor for a decision node.
    pub fn decision(feature: u16, threshold: f32, left: u32, right: u32) -> Self {
        Node::Decision {
            feature,
            threshold,
            left,
            right,
        }
    }

    /// Convenience constructor for a classification leaf.
    pub fn class_leaf(class: u32) -> Self {
        Node::Leaf(LeafValue::Class(class))
    }

    /// Convenience constructor for a regression leaf.
    pub fn value_leaf(value: f32) -> Self {
        Node::Leaf(LeafValue::Value(value))
    }

    /// Returns `true` if this node is a leaf.
    pub fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_accessors() {
        assert_eq!(LeafValue::Class(2).as_class(), Some(2));
        assert_eq!(LeafValue::Class(2).as_value(), None);
        assert_eq!(LeafValue::Value(1.5).as_value(), Some(1.5));
        assert_eq!(LeafValue::Value(1.5).as_class(), None);
    }

    #[test]
    fn constructors_and_is_leaf() {
        assert!(Node::class_leaf(0).is_leaf());
        assert!(Node::value_leaf(0.5).is_leaf());
        assert!(!Node::decision(1, 0.5, 1, 2).is_leaf());
    }
}
