//! Impurity-based feature importance, and the [`TrainedModel`] wrapper
//! returned by detailed training.

use serde::{Deserialize, Serialize};

use crate::forest::RandomForest;

/// A trained model plus training byproducts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainedModel {
    /// The forest itself.
    pub forest: RandomForest,
    /// Mean-decrease-in-impurity feature importances, normalized to sum to
    /// 1 (all zeros when no split was ever made).
    pub feature_importances: Vec<f64>,
}

impl TrainedModel {
    /// Indices of features ordered from most to least important.
    pub fn ranked_features(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.feature_importances.len()).collect();
        order.sort_by(|&a, &b| {
            self.feature_importances[b]
                .partial_cmp(&self.feature_importances[a])
                .expect("importances are finite")
        });
        order
    }

    /// The single most important feature, if any importance is non-zero.
    pub fn top_feature(&self) -> Option<usize> {
        let top = *self.ranked_features().first()?;
        (self.feature_importances[top] > 0.0).then_some(top)
    }
}

/// Accumulates weighted impurity decreases during training; finalized into
/// normalized importances.
#[derive(Debug, Clone, Default)]
pub(crate) struct ImportanceAccumulator {
    totals: Vec<f64>,
}

impl ImportanceAccumulator {
    pub(crate) fn new(n_features: usize) -> Self {
        Self {
            totals: vec![0.0; n_features],
        }
    }

    /// Records a split on `feature` with the given weighted impurity
    /// decrease (`n_node/n_total * (impurity_parent - weighted_children)`).
    pub(crate) fn record(&mut self, feature: usize, weighted_decrease: f64) {
        self.totals[feature] += weighted_decrease.max(0.0);
    }

    /// Normalizes into importances summing to 1 (or all zeros).
    pub(crate) fn finalize(self) -> Vec<f64> {
        let sum: f64 = self.totals.iter().sum();
        if sum <= 0.0 {
            return self.totals;
        }
        self.totals.into_iter().map(|v| v / sum).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{ForestBuilder, TrainOptions};

    #[test]
    fn accumulator_normalizes() {
        let mut acc = ImportanceAccumulator::new(3);
        acc.record(0, 3.0);
        acc.record(2, 1.0);
        acc.record(0, 0.0);
        let imp = acc.finalize();
        assert!((imp[0] - 0.75).abs() < 1e-12);
        assert_eq!(imp[1], 0.0);
        assert!((imp[2] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn no_splits_means_zero_importances() {
        let acc = ImportanceAccumulator::new(2);
        assert_eq!(acc.finalize(), vec![0.0, 0.0]);
    }

    #[test]
    fn informative_feature_dominates() {
        // Feature 0 fully determines the label; feature 1 is noise.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..200 {
            let class = (i % 2) as u32;
            x.push(class as f32); // feature 0: the label itself
            x.push(((i * 37) % 100) as f32 / 100.0); // feature 1: noise
            y.push(class);
        }
        let trained = ForestBuilder::new(
            10,
            TrainOptions {
                max_depth: 4,
                feature_candidates: Some(2),
                ..Default::default()
            },
        )
        .train_classifier_detailed(&x, 2, &y, 2)
        .unwrap();
        assert_eq!(trained.top_feature(), Some(0));
        assert!(trained.feature_importances[0] > 0.9);
        assert_eq!(trained.ranked_features()[0], 0);
        let sum: f64 = trained.feature_importances.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }
}
