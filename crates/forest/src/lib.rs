//! Random forest models for the `mlscore` workspace.
//!
//! This crate implements the ML model at the heart of the paper: decision
//! trees and random forests (classification and regression), CART training,
//! the paper's flat 4-word-per-node memory layout (Fig. 4b) used by the FPGA
//! inference engine, a versioned binary serialization format (the stand-in
//! for the ONNX model bundles stored in database tables), and model
//! statistics consumed by the backend cost models.
//!
//! # Example
//!
//! ```
//! use mlscore_forest::{ForestConfig, RandomForest, Task};
//!
//! // A deterministic synthetic forest like the paper's 128-tree, depth-10
//! // models (training is also available; see `ForestBuilder`).
//! let forest = RandomForest::synthetic_full(
//!     &ForestConfig::classification(8, 4, 3),
//!     42,
//! );
//! assert_eq!(forest.n_trees(), 8);
//! let pred = forest.predict_one(&[0.5, 0.1, 0.9, 0.3]);
//! assert!(pred.as_class().unwrap() < 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod error;
pub mod forest;
pub mod gbdt;
pub mod importance;
pub mod layout;
pub mod metrics;
pub mod node;
pub mod quant;
pub mod serialize;
pub mod stats;
pub mod tree;

pub use builder::{ForestBuilder, SplitCriterion, TrainOptions};
pub use error::ForestError;
pub use forest::{ForestConfig, Prediction, Predictions, RandomForest, Task};
pub use gbdt::{GbTask, GradientBoost, GradientBoostConfig};
pub use importance::TrainedModel;
pub use layout::{FlatForest, FlatTree, NodeRecord, NODE_WORDS};
pub use node::{LeafValue, Node};
pub use quant::{QuantScheme, QuantizedForest, QuantizedTree};
pub use serialize::ModelBundle;
pub use stats::ModelStats;
pub use tree::DecisionTree;
