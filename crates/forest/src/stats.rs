//! Model statistics consumed by backend cost models.

use serde::{Deserialize, Serialize};

use crate::forest::{RandomForest, Task};
use crate::layout::NODE_BYTES;
use crate::tree::DecisionTree;

/// Shape and footprint statistics of a forest.
///
/// Cost models across the workspace key off these: the CPU model's cache
/// behaviour depends on [`ModelStats::live_layout_bytes`], the FPGA engine's
/// pass count on [`ModelStats::n_trees`], the GPU models on node counts and
/// depth.
///
/// # Example
///
/// ```
/// use mlscore_forest::{ForestConfig, ModelStats, RandomForest};
///
/// let forest = RandomForest::synthetic_full(
///     &ForestConfig::classification(128, 28, 2).with_depth(10),
///     1,
/// );
/// let stats = ModelStats::of(&forest);
/// assert_eq!(stats.n_trees, 128);
/// assert_eq!(stats.max_depth, 10);
/// assert_eq!(stats.total_nodes, 128 * 2047);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelStats {
    /// Number of trees.
    pub n_trees: usize,
    /// Number of input features.
    pub n_features: usize,
    /// Number of classes (0 for regression).
    pub n_classes: u32,
    /// Deepest tree depth, in levels.
    pub max_depth: usize,
    /// Total nodes across all trees.
    pub total_nodes: usize,
    /// Total leaves across all trees.
    pub total_leaves: usize,
    /// Mean root-to-leaf path length over all leaves, in node visits
    /// (a full tree of depth `d` has `d + 1`).
    pub mean_path_nodes: f64,
}

impl ModelStats {
    /// Computes statistics for `forest`.
    pub fn of(forest: &RandomForest) -> Self {
        let total_nodes = forest.n_nodes();
        let total_leaves: usize = forest.trees().iter().map(DecisionTree::n_leaves).sum();
        let mut path_sum = 0u64;
        let mut leaf_count = 0u64;
        for tree in forest.trees() {
            let (sum, count) = leaf_path_sum(tree);
            path_sum += sum;
            leaf_count += count;
        }
        Self {
            n_trees: forest.n_trees(),
            n_features: forest.n_features(),
            n_classes: forest.task().n_classes().unwrap_or(0),
            max_depth: forest.max_depth(),
            total_nodes,
            total_leaves,
            mean_path_nodes: if leaf_count == 0 {
                0.0
            } else {
                path_sum as f64 / leaf_count as f64
            },
        }
    }

    /// Bytes of live node records in the Fig. 4b flat layout (what a software
    /// scorer's working set contains).
    pub fn live_layout_bytes(&self) -> usize {
        self.total_nodes * NODE_BYTES
    }

    /// Bytes of one record row (`n_features` × 4-byte floats).
    pub fn row_bytes(&self) -> usize {
        self.n_features * 4
    }

    /// Expected node visits to score one record through every tree.
    pub fn visits_per_record(&self) -> f64 {
        self.mean_path_nodes * self.n_trees as f64
    }

    /// Whether this is a binary classifier — GPU-RAPIDS in the paper only
    /// supports binary classification, so HIGGS runs use it but IRIS
    /// (3 classes) cannot.
    pub fn is_binary(&self) -> bool {
        self.n_classes == 2
    }

    /// Whether the model task is regression.
    pub fn is_regression(&self) -> bool {
        self.n_classes == 0
    }
}

/// Sum of root-to-leaf path node counts, and the number of leaves.
fn leaf_path_sum(tree: &DecisionTree) -> (u64, u64) {
    use crate::node::Node;
    let nodes = tree.nodes();
    let mut depth = vec![0u64; nodes.len()];
    let mut sum = 0u64;
    let mut leaves = 0u64;
    for (i, node) in nodes.iter().enumerate() {
        match node {
            Node::Decision { left, right, .. } => {
                depth[*left as usize] = depth[i] + 1;
                depth[*right as usize] = depth[i] + 1;
            }
            Node::Leaf(_) => {
                sum += depth[i] + 1;
                leaves += 1;
            }
        }
    }
    (sum, leaves)
}

/// Task helper so cost models can reason about stats without the forest.
impl ModelStats {
    /// Reconstructs the task from the class count.
    pub fn task(&self) -> Task {
        if self.n_classes == 0 {
            Task::Regression
        } else {
            Task::Classification {
                n_classes: self.n_classes,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::ForestConfig;

    #[test]
    fn full_tree_stats() {
        let forest =
            RandomForest::synthetic_full(&ForestConfig::classification(4, 6, 3).with_depth(5), 9);
        let s = ModelStats::of(&forest);
        assert_eq!(s.n_trees, 4);
        assert_eq!(s.n_features, 6);
        assert_eq!(s.n_classes, 3);
        assert_eq!(s.max_depth, 5);
        assert_eq!(s.total_nodes, 4 * 63);
        assert_eq!(s.total_leaves, 4 * 32);
        assert_eq!(s.mean_path_nodes, 6.0); // depth 5 => 6 nodes per path
        assert_eq!(s.visits_per_record(), 24.0);
        assert_eq!(s.live_layout_bytes(), 4 * 63 * 16);
        assert_eq!(s.row_bytes(), 24);
    }

    #[test]
    fn binary_and_regression_flags() {
        let bin = ModelStats::of(&RandomForest::synthetic_full(
            &ForestConfig::classification(1, 2, 2).with_depth(2),
            1,
        ));
        assert!(bin.is_binary());
        assert!(!bin.is_regression());
        assert_eq!(bin.task(), Task::Classification { n_classes: 2 });

        let reg = ModelStats::of(&RandomForest::synthetic_full(
            &ForestConfig::regression(1, 2).with_depth(2),
            1,
        ));
        assert!(reg.is_regression());
        assert!(!reg.is_binary());
        assert_eq!(reg.task(), Task::Regression);
    }

    #[test]
    fn leaf_only_tree_path() {
        let forest =
            RandomForest::synthetic_full(&ForestConfig::classification(2, 2, 2).with_depth(0), 3);
        let s = ModelStats::of(&forest);
        assert_eq!(s.mean_path_nodes, 1.0);
        assert_eq!(s.total_leaves, 2);
    }
}
