//! Quality metrics for model evaluation in examples and tests.

/// Fraction of predictions equal to the ground truth.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
///
/// # Example
///
/// ```
/// use mlscore_forest::metrics::accuracy;
///
/// assert_eq!(accuracy(&[0, 1, 1, 0], &[0, 1, 0, 0]), 0.75);
/// ```
pub fn accuracy(predicted: &[u32], truth: &[u32]) -> f64 {
    assert_eq!(predicted.len(), truth.len(), "length mismatch");
    assert!(!predicted.is_empty(), "empty prediction set");
    let correct = predicted.iter().zip(truth).filter(|(p, t)| p == t).count();
    correct as f64 / predicted.len() as f64
}

/// Mean squared error of regression predictions.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn mse(predicted: &[f32], truth: &[f32]) -> f64 {
    assert_eq!(predicted.len(), truth.len(), "length mismatch");
    assert!(!predicted.is_empty(), "empty prediction set");
    predicted
        .iter()
        .zip(truth)
        .map(|(p, t)| {
            let d = (*p - *t) as f64;
            d * d
        })
        .sum::<f64>()
        / predicted.len() as f64
}

/// A confusion matrix for multi-class classification; `counts[t][p]` is the
/// number of records with true class `t` predicted as `p`.
///
/// # Example
///
/// ```
/// use mlscore_forest::metrics::ConfusionMatrix;
///
/// let cm = ConfusionMatrix::from_predictions(&[0, 1, 1], &[0, 1, 0], 2);
/// assert_eq!(cm.count(0, 0), 1);
/// assert_eq!(cm.count(0, 1), 1); // one class-0 record predicted as 1
/// assert_eq!(cm.total(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    n_classes: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Builds a matrix from predictions and ground truth.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch or any class outside `0..n_classes`.
    pub fn from_predictions(predicted: &[u32], truth: &[u32], n_classes: usize) -> Self {
        assert_eq!(predicted.len(), truth.len(), "length mismatch");
        let mut counts = vec![0u64; n_classes * n_classes];
        for (&p, &t) in predicted.iter().zip(truth) {
            assert!((p as usize) < n_classes, "prediction {p} out of range");
            assert!((t as usize) < n_classes, "truth {t} out of range");
            counts[t as usize * n_classes + p as usize] += 1;
        }
        Self { n_classes, counts }
    }

    /// Count of records with true class `truth` predicted as `predicted`.
    pub fn count(&self, truth: u32, predicted: u32) -> u64 {
        self.counts[truth as usize * self.n_classes + predicted as usize]
    }

    /// Total records tallied.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy (diagonal mass over total); 0 for an empty matrix.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let diag: u64 = (0..self.n_classes)
            .map(|i| self.counts[i * self.n_classes + i])
            .sum();
        diag as f64 / total as f64
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_matches() {
        assert_eq!(accuracy(&[1, 1, 1], &[1, 1, 0]), 2.0 / 3.0);
        assert_eq!(accuracy(&[2], &[2]), 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_length_mismatch_panics() {
        accuracy(&[0], &[0, 1]);
    }

    #[test]
    fn mse_squares_differences() {
        assert_eq!(mse(&[1.0, 3.0], &[0.0, 1.0]), (1.0 + 4.0) / 2.0);
        assert_eq!(mse(&[2.0], &[2.0]), 0.0);
    }

    #[test]
    fn confusion_matrix_tallies() {
        let cm = ConfusionMatrix::from_predictions(&[0, 0, 1, 2, 2], &[0, 1, 1, 2, 0], 3);
        assert_eq!(cm.count(0, 0), 1);
        assert_eq!(cm.count(1, 0), 1);
        assert_eq!(cm.count(1, 1), 1);
        assert_eq!(cm.count(2, 2), 1);
        assert_eq!(cm.count(0, 2), 1);
        assert_eq!(cm.total(), 5);
        assert!((cm.accuracy() - 0.6).abs() < 1e-12);
        assert_eq!(cm.n_classes(), 3);
    }

    #[test]
    fn empty_matrix_accuracy_zero() {
        let cm = ConfusionMatrix::from_predictions(&[], &[], 2);
        assert_eq!(cm.accuracy(), 0.0);
    }
}
