//! Fixed-point quantized node layout.
//!
//! The paper's engine stores each node as four 32-bit words and notes that
//! "as the model gets more complex ... the FPGA memory resources becomes
//! the limiting factor". Real FPGA inference engines shrink tree memories
//! by quantizing thresholds to fixed point. This module provides a 16-bit
//! quantized layout — 8 bytes per node, half the Fig. 4b footprint — plus a
//! fidelity metric, enabling the capacity-vs-accuracy ablation: with
//! quantized nodes the same BRAM holds twice the trees (or one more level
//! of depth).

use serde::{Deserialize, Serialize};

use crate::error::ForestError;
use crate::forest::{RandomForest, Task};
use crate::node::{LeafValue, Node};
use crate::tree::DecisionTree;

/// Per-feature affine quantization ranges.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantScheme {
    mins: Vec<f32>,
    maxs: Vec<f32>,
}

impl QuantScheme {
    /// Builds a scheme from explicit per-feature `[min, max]` ranges.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length or any range is inverted.
    pub fn from_ranges(mins: &[f32], maxs: &[f32]) -> Self {
        assert_eq!(mins.len(), maxs.len(), "range arrays must align");
        for (lo, hi) in mins.iter().zip(maxs) {
            assert!(lo <= hi, "inverted range [{lo}, {hi}]");
        }
        Self {
            mins: mins.to_vec(),
            maxs: maxs.to_vec(),
        }
    }

    /// The unit scheme (`[0, 1]` for every feature) — matches the
    /// synthetic forests' threshold domain and normalized frames.
    pub fn unit(n_features: usize) -> Self {
        Self {
            mins: vec![0.0; n_features],
            maxs: vec![1.0; n_features],
        }
    }

    /// Number of features covered.
    pub fn n_features(&self) -> usize {
        self.mins.len()
    }

    /// Quantizes a feature value into its 16-bit bucket (saturating).
    pub fn quantize(&self, feature: usize, value: f32) -> u16 {
        let lo = self.mins[feature];
        let hi = self.maxs[feature];
        if hi <= lo {
            return 0;
        }
        let normalized = ((value - lo) / (hi - lo)).clamp(0.0, 1.0);
        (normalized * u16::MAX as f32).round() as u16
    }
}

/// A node in the 8-byte quantized format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct QuantNode {
    /// Left child index, or the class id for leaves.
    left: u16,
    /// Right child index (unused for leaves).
    right: u16,
    /// Comparison attribute; `u16::MAX` marks a leaf.
    feature: u16,
    /// Quantized comparison value.
    threshold_q: u16,
}

const LEAF_MARKER: u16 = u16::MAX;

/// Bytes per quantized node record.
pub const QUANT_NODE_BYTES: usize = 8;

/// A tree in the quantized layout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedTree {
    nodes: Vec<QuantNode>,
}

impl QuantizedTree {
    /// Quantizes a tree.
    ///
    /// # Errors
    ///
    /// Returns [`ForestError::DepthExceeded`] when the tree has more nodes
    /// than 16-bit indices address, and [`ForestError::ClassOutOfRange`]
    /// for class ids that do not fit in 16 bits. Regression trees are
    /// rejected with [`ForestError::LeafTaskMismatch`] (quantized leaves
    /// hold class ids).
    pub fn from_tree(tree: &DecisionTree, scheme: &QuantScheme) -> Result<Self, ForestError> {
        if tree.len() >= LEAF_MARKER as usize {
            return Err(ForestError::DepthExceeded {
                depth: tree.depth(),
                max_depth: 15,
            });
        }
        let nodes = tree
            .nodes()
            .iter()
            .map(|node| match *node {
                Node::Decision {
                    feature,
                    threshold,
                    left,
                    right,
                } => Ok(QuantNode {
                    left: left as u16,
                    right: right as u16,
                    feature,
                    threshold_q: scheme.quantize(feature as usize, threshold),
                }),
                Node::Leaf(LeafValue::Class(c)) => {
                    let class = u16::try_from(c).map_err(|_| ForestError::ClassOutOfRange {
                        class: c,
                        n_classes: u16::MAX as u32,
                    })?;
                    Ok(QuantNode {
                        left: class,
                        right: 0,
                        feature: LEAF_MARKER,
                        threshold_q: 0,
                    })
                }
                Node::Leaf(LeafValue::Value(_)) => Err(ForestError::LeafTaskMismatch),
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { nodes })
    }

    /// Scores one pre-quantized record.
    pub fn score_quantized(&self, xq: &[u16]) -> u16 {
        let mut idx = 0usize;
        loop {
            let node = self.nodes[idx];
            if node.feature == LEAF_MARKER {
                return node.left;
            }
            idx = if xq[node.feature as usize] <= node.threshold_q {
                node.left as usize
            } else {
                node.right as usize
            };
        }
    }

    /// Live footprint in bytes (half the Fig. 4b f32 layout).
    pub fn footprint_bytes(&self) -> usize {
        self.nodes.len() * QUANT_NODE_BYTES
    }
}

/// A whole classification forest in the quantized layout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedForest {
    trees: Vec<QuantizedTree>,
    scheme: QuantScheme,
    n_classes: u32,
    n_features: usize,
}

impl QuantizedForest {
    /// Quantizes a classification forest.
    ///
    /// # Errors
    ///
    /// Propagates per-tree errors; rejects regression forests with
    /// [`ForestError::LeafTaskMismatch`].
    pub fn from_forest(forest: &RandomForest, scheme: QuantScheme) -> Result<Self, ForestError> {
        let Task::Classification { n_classes } = forest.task() else {
            return Err(ForestError::LeafTaskMismatch);
        };
        let trees = forest
            .trees()
            .iter()
            .map(|t| QuantizedTree::from_tree(t, &scheme))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            trees,
            scheme,
            n_classes,
            n_features: forest.n_features(),
        })
    }

    /// Scores one record: quantize the features once, then vote.
    ///
    /// # Panics
    ///
    /// Panics if `x` is shorter than the feature count.
    pub fn score_one(&self, x: &[f32]) -> u32 {
        let xq: Vec<u16> = (0..self.n_features)
            .map(|j| self.scheme.quantize(j, x[j]))
            .collect();
        let mut counts = vec![0u32; self.n_classes as usize];
        for tree in &self.trees {
            counts[tree.score_quantized(&xq) as usize] += 1;
        }
        RandomForest::majority(&counts)
    }

    /// The quantized trees.
    pub fn trees(&self) -> &[QuantizedTree] {
        &self.trees
    }

    /// The quantization scheme records must be bucketed with.
    pub fn scheme(&self) -> &QuantScheme {
        &self.scheme
    }

    /// Number of classes.
    pub fn n_classes(&self) -> u32 {
        self.n_classes
    }

    /// Number of features the model expects.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Total live footprint in bytes.
    pub fn footprint_bytes(&self) -> usize {
        self.trees.iter().map(QuantizedTree::footprint_bytes).sum()
    }

    /// Fraction of records whose quantized prediction differs from the
    /// exact forest's — the fidelity cost of halving the memory footprint.
    ///
    /// # Panics
    ///
    /// Panics if `records` is not a multiple of the feature count.
    pub fn mismatch_rate(&self, forest: &RandomForest, records: &[f32]) -> f64 {
        let rows: Vec<&[f32]> = records.chunks_exact(self.n_features).collect();
        if rows.is_empty() {
            return 0.0;
        }
        let mismatches = rows
            .iter()
            .filter(|row| {
                self.score_one(row) != forest.predict_one(row).as_class().expect("classifier")
            })
            .count();
        mismatches as f64 / rows.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::ForestConfig;
    use crate::layout::FlatForest;

    fn forest(n_trees: usize, depth: usize) -> RandomForest {
        RandomForest::synthetic_full(
            &ForestConfig::classification(n_trees, 6, 3).with_depth(depth),
            31,
        )
    }

    fn unit_records(n: usize) -> Vec<f32> {
        (0..n * 6).map(|i| (i as f32 * 0.237) % 1.0).collect()
    }

    #[test]
    fn footprint_is_half_of_f32_layout_live_bytes() {
        let f = forest(8, 8);
        let q = QuantizedForest::from_forest(&f, QuantScheme::unit(6)).unwrap();
        let flat = FlatForest::from_forest(&f, 8).unwrap();
        let live: usize = flat.trees().iter().map(|t| t.live_bytes()).sum();
        assert_eq!(q.footprint_bytes() * 2, live);
    }

    #[test]
    fn quantized_predictions_mostly_match() {
        let f = forest(16, 9);
        let q = QuantizedForest::from_forest(&f, QuantScheme::unit(6)).unwrap();
        let rate = q.mismatch_rate(&f, &unit_records(500));
        // 16-bit buckets over [0,1] leave ~1.5e-5 resolution; mismatches
        // should be very rare.
        assert!(rate < 0.02, "mismatch rate {rate}");
    }

    #[test]
    fn exact_on_bucket_aligned_thresholds() {
        // A stump whose threshold is exactly representable: quantized and
        // exact predictions agree everywhere except the knife edge.
        let tree = DecisionTree::from_nodes(vec![
            Node::decision(0, 0.5, 1, 2),
            Node::class_leaf(0),
            Node::class_leaf(1),
        ])
        .unwrap();
        let f =
            RandomForest::from_trees(vec![tree], 1, Task::Classification { n_classes: 2 }).unwrap();
        let q = QuantizedForest::from_forest(&f, QuantScheme::unit(1)).unwrap();
        for x in [0.0f32, 0.1, 0.25, 0.49, 0.51, 0.75, 1.0] {
            assert_eq!(
                q.score_one(&[x]),
                f.predict_one(&[x]).as_class().unwrap(),
                "at {x}"
            );
        }
    }

    #[test]
    fn regression_rejected() {
        let f = RandomForest::synthetic_full(&ForestConfig::regression(2, 3).with_depth(3), 1);
        assert_eq!(
            QuantizedForest::from_forest(&f, QuantScheme::unit(3)).unwrap_err(),
            ForestError::LeafTaskMismatch
        );
    }

    #[test]
    fn saturation_outside_ranges() {
        let s = QuantScheme::from_ranges(&[0.0], &[1.0]);
        assert_eq!(s.quantize(0, -5.0), 0);
        assert_eq!(s.quantize(0, 9.0), u16::MAX);
        assert_eq!(s.quantize(0, 0.5), 32768);
    }

    #[test]
    fn degenerate_range_quantizes_to_zero() {
        let s = QuantScheme::from_ranges(&[2.0], &[2.0]);
        assert_eq!(s.quantize(0, 2.0), 0);
        assert_eq!(s.quantize(0, 99.0), 0);
    }

    #[test]
    fn oversized_trees_rejected() {
        // Depth 16 full tree: 131071 nodes > u16 addressing.
        let f =
            RandomForest::synthetic_full(&ForestConfig::classification(1, 4, 2).with_depth(16), 1);
        assert!(matches!(
            QuantizedForest::from_forest(&f, QuantScheme::unit(4)).unwrap_err(),
            ForestError::DepthExceeded { .. }
        ));
    }

    #[test]
    fn empty_record_set_has_zero_mismatch() {
        let f = forest(2, 3);
        let q = QuantizedForest::from_forest(&f, QuantScheme::unit(6)).unwrap();
        assert_eq!(q.mismatch_rate(&f, &[]), 0.0);
    }
}
