//! Decision trees: storage, traversal, and validation.

use serde::{Deserialize, Serialize};

use crate::error::ForestError;
use crate::node::{LeafValue, Node};

/// A binary decision tree stored as a flat node vector with the root at
/// index 0 and forward child references only.
///
/// # Example
///
/// ```
/// use mlscore_forest::{DecisionTree, Node};
///
/// // x[0] <= 0.5 ? class 0 : class 1
/// let tree = DecisionTree::from_nodes(vec![
///     Node::decision(0, 0.5, 1, 2),
///     Node::class_leaf(0),
///     Node::class_leaf(1),
/// ])?;
/// assert_eq!(tree.predict(&[0.2]).as_class(), Some(0));
/// assert_eq!(tree.predict(&[0.9]).as_class(), Some(1));
/// # Ok::<(), mlscore_forest::ForestError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    nodes: Vec<Node>,
}

impl DecisionTree {
    /// Builds a tree from nodes, checking structural invariants.
    ///
    /// # Errors
    ///
    /// Returns [`ForestError::EmptyTree`] for an empty vector,
    /// [`ForestError::ChildOutOfRange`] for dangling child indices, and
    /// [`ForestError::NonTopological`] if a child index is not strictly
    /// greater than its parent's index.
    pub fn from_nodes(nodes: Vec<Node>) -> Result<Self, ForestError> {
        if nodes.is_empty() {
            return Err(ForestError::EmptyTree);
        }
        for (i, node) in nodes.iter().enumerate() {
            if let Node::Decision { left, right, .. } = node {
                for child in [*left as usize, *right as usize] {
                    if child >= nodes.len() {
                        return Err(ForestError::ChildOutOfRange {
                            node: i,
                            child,
                            len: nodes.len(),
                        });
                    }
                    if child <= i {
                        return Err(ForestError::NonTopological { node: i, child });
                    }
                }
            }
        }
        Ok(Self { nodes })
    }

    /// Builds a single-leaf tree.
    pub fn leaf(value: LeafValue) -> Self {
        Self {
            nodes: vec![Node::Leaf(value)],
        }
    }

    /// The tree's nodes (root at index 0).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the tree is a single node (trees are never empty).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of leaf nodes.
    pub fn n_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_leaf()).count()
    }

    /// Number of *levels* below the root on the longest path; a single leaf
    /// has depth 0, the paper's "10 level" trees have depth 10.
    pub fn depth(&self) -> usize {
        // Iterative DFS; forward-reference invariant guarantees termination.
        let mut depth = vec![0usize; self.nodes.len()];
        let mut max = 0;
        for (i, node) in self.nodes.iter().enumerate() {
            if let Node::Decision { left, right, .. } = node {
                for child in [*left as usize, *right as usize] {
                    depth[child] = depth[child].max(depth[i] + 1);
                    max = max.max(depth[child]);
                }
            }
        }
        max
    }

    /// Scores one record by root-to-leaf traversal.
    ///
    /// # Panics
    ///
    /// Panics if a decision node references a feature beyond `x.len()`; use
    /// [`DecisionTree::validate`] against the model's feature count to rule
    /// this out up front.
    pub fn predict(&self, x: &[f32]) -> LeafValue {
        let mut i = 0usize;
        loop {
            match self.nodes[i] {
                Node::Leaf(v) => return v,
                Node::Decision {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if x[feature as usize] <= threshold {
                        left as usize
                    } else {
                        right as usize
                    };
                }
            }
        }
    }

    /// Scores one record, also reporting the number of nodes visited
    /// (root inclusive). Used by divergence/teardown analyses.
    pub fn predict_counting(&self, x: &[f32]) -> (LeafValue, usize) {
        let mut i = 0usize;
        let mut visited = 1usize;
        loop {
            match self.nodes[i] {
                Node::Leaf(v) => return (v, visited),
                Node::Decision {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if x[feature as usize] <= threshold {
                        left as usize
                    } else {
                        right as usize
                    };
                    visited += 1;
                }
            }
        }
    }

    /// Checks semantic invariants against model-level metadata.
    ///
    /// # Errors
    ///
    /// Returns [`ForestError::FeatureOutOfRange`] or
    /// [`ForestError::ClassOutOfRange`] when nodes reference features or
    /// classes outside the model, and [`ForestError::LeafTaskMismatch`] when
    /// a leaf kind conflicts with `n_classes` (`Some` implies classification).
    pub fn validate(&self, n_features: usize, n_classes: Option<u32>) -> Result<(), ForestError> {
        for (i, node) in self.nodes.iter().enumerate() {
            match node {
                Node::Decision { feature, .. } => {
                    if *feature as usize >= n_features {
                        return Err(ForestError::FeatureOutOfRange {
                            node: i,
                            feature: *feature as usize,
                            n_features,
                        });
                    }
                }
                Node::Leaf(LeafValue::Class(c)) => match n_classes {
                    Some(n) if *c >= n => {
                        return Err(ForestError::ClassOutOfRange {
                            class: *c,
                            n_classes: n,
                        })
                    }
                    Some(_) => {}
                    None => return Err(ForestError::LeafTaskMismatch),
                },
                Node::Leaf(LeafValue::Value(_)) => {
                    if n_classes.is_some() {
                        return Err(ForestError::LeafTaskMismatch);
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stump() -> DecisionTree {
        DecisionTree::from_nodes(vec![
            Node::decision(0, 0.5, 1, 2),
            Node::class_leaf(0),
            Node::class_leaf(1),
        ])
        .unwrap()
    }

    #[test]
    fn traversal_follows_le_convention() {
        let t = stump();
        assert_eq!(t.predict(&[0.5]).as_class(), Some(0)); // boundary goes left
        assert_eq!(t.predict(&[0.500001]).as_class(), Some(1));
    }

    #[test]
    fn depth_counts_levels() {
        assert_eq!(stump().depth(), 1);
        assert_eq!(DecisionTree::leaf(LeafValue::Class(0)).depth(), 0);
        let deep = DecisionTree::from_nodes(vec![
            Node::decision(0, 0.5, 1, 2),
            Node::decision(0, 0.25, 3, 4),
            Node::class_leaf(2),
            Node::class_leaf(0),
            Node::class_leaf(1),
        ])
        .unwrap();
        assert_eq!(deep.depth(), 2);
    }

    #[test]
    fn n_leaves() {
        assert_eq!(stump().n_leaves(), 2);
        assert_eq!(stump().len(), 3);
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(
            DecisionTree::from_nodes(vec![]).unwrap_err(),
            ForestError::EmptyTree
        );
    }

    #[test]
    fn rejects_dangling_child() {
        let err = DecisionTree::from_nodes(vec![Node::decision(0, 0.5, 1, 9), Node::class_leaf(0)])
            .unwrap_err();
        assert!(matches!(err, ForestError::ChildOutOfRange { child: 9, .. }));
    }

    #[test]
    fn rejects_backward_child() {
        let err = DecisionTree::from_nodes(vec![Node::decision(0, 0.5, 0, 1), Node::class_leaf(0)])
            .unwrap_err();
        assert!(matches!(err, ForestError::NonTopological { child: 0, .. }));
    }

    #[test]
    fn validate_feature_and_class_ranges() {
        let t = stump();
        assert!(t.validate(1, Some(2)).is_ok());
        assert!(matches!(
            t.validate(1, Some(1)),
            Err(ForestError::ClassOutOfRange { .. })
        ));
        let wide = DecisionTree::from_nodes(vec![
            Node::decision(3, 0.5, 1, 2),
            Node::class_leaf(0),
            Node::class_leaf(1),
        ])
        .unwrap();
        assert!(matches!(
            wide.validate(2, Some(2)),
            Err(ForestError::FeatureOutOfRange { feature: 3, .. })
        ));
    }

    #[test]
    fn validate_task_mismatch() {
        let t = stump();
        assert_eq!(
            t.validate(1, None).unwrap_err(),
            ForestError::LeafTaskMismatch
        );
        let reg = DecisionTree::leaf(LeafValue::Value(1.0));
        assert_eq!(
            reg.validate(1, Some(2)).unwrap_err(),
            ForestError::LeafTaskMismatch
        );
        assert!(reg.validate(1, None).is_ok());
    }

    #[test]
    fn predict_counting_counts_path_nodes() {
        let t = stump();
        let (v, visited) = t.predict_counting(&[0.1]);
        assert_eq!(v.as_class(), Some(0));
        assert_eq!(visited, 2);
        let leaf = DecisionTree::leaf(LeafValue::Class(1));
        assert_eq!(leaf.predict_counting(&[0.0]).1, 1);
    }
}
