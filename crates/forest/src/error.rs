//! Error types for model construction, validation, and serialization.

use std::error::Error;
use std::fmt;

/// Errors produced while building, validating, or (de)serializing forests.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ForestError {
    /// A node references a child index outside the tree.
    ChildOutOfRange {
        /// Index of the offending node.
        node: usize,
        /// The out-of-range child index.
        child: usize,
        /// Number of nodes in the tree.
        len: usize,
    },
    /// A node references a child at or before itself, which would allow
    /// cycles; trees must be stored in topological (parent-before-child)
    /// order.
    NonTopological {
        /// Index of the offending node.
        node: usize,
        /// The offending child index.
        child: usize,
    },
    /// A decision node references a feature outside the model's feature
    /// count.
    FeatureOutOfRange {
        /// Index of the offending node.
        node: usize,
        /// The referenced feature.
        feature: usize,
        /// Number of features in the model.
        n_features: usize,
    },
    /// A classification leaf holds a class outside `0..n_classes`.
    ClassOutOfRange {
        /// The offending class id.
        class: u32,
        /// Number of classes in the model.
        n_classes: u32,
    },
    /// A leaf value's kind does not match the forest task (e.g. a numeric
    /// leaf in a classifier).
    LeafTaskMismatch,
    /// The tree is empty.
    EmptyTree,
    /// The forest holds no trees.
    EmptyForest,
    /// A tree is deeper than a layout or engine capacity allows.
    DepthExceeded {
        /// Observed depth (root = depth 0... counted in levels).
        depth: usize,
        /// Maximum representable depth.
        max_depth: usize,
    },
    /// Training input shape was inconsistent (row count vs. labels, or zero
    /// features/rows).
    InvalidTrainingData(String),
    /// Serialized bytes did not start with the expected magic.
    BadMagic,
    /// Serialized bytes use an unsupported format version.
    UnsupportedVersion(u16),
    /// Serialized bytes ended prematurely or contained an invalid field.
    Corrupt(String),
    /// A scoring request's feature width does not match the model.
    FeatureWidthMismatch {
        /// Features expected by the model.
        expected: usize,
        /// Features provided by the caller.
        got: usize,
    },
}

impl fmt::Display for ForestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ForestError::ChildOutOfRange { node, child, len } => {
                write!(
                    f,
                    "node {node} references child {child} beyond tree length {len}"
                )
            }
            ForestError::NonTopological { node, child } => {
                write!(f, "node {node} references non-forward child {child}")
            }
            ForestError::FeatureOutOfRange {
                node,
                feature,
                n_features,
            } => write!(
                f,
                "node {node} tests feature {feature} but model has {n_features} features"
            ),
            ForestError::ClassOutOfRange { class, n_classes } => {
                write!(f, "leaf class {class} outside 0..{n_classes}")
            }
            ForestError::LeafTaskMismatch => {
                write!(f, "leaf value kind does not match forest task")
            }
            ForestError::EmptyTree => write!(f, "tree has no nodes"),
            ForestError::EmptyForest => write!(f, "forest has no trees"),
            ForestError::DepthExceeded { depth, max_depth } => {
                write!(f, "tree depth {depth} exceeds maximum {max_depth}")
            }
            ForestError::InvalidTrainingData(msg) => {
                write!(f, "invalid training data: {msg}")
            }
            ForestError::BadMagic => write!(f, "not a model bundle (bad magic)"),
            ForestError::UnsupportedVersion(v) => {
                write!(f, "unsupported model bundle version {v}")
            }
            ForestError::Corrupt(msg) => write!(f, "corrupt model bundle: {msg}"),
            ForestError::FeatureWidthMismatch { expected, got } => {
                write!(f, "record has {got} features but model expects {expected}")
            }
        }
    }
}

impl Error for ForestError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = ForestError::FeatureWidthMismatch {
            expected: 28,
            got: 4,
        };
        let msg = format!("{e}");
        assert!(msg.contains("28"));
        assert!(msg.contains("4"));
        assert!(msg.chars().next().unwrap().is_lowercase());
    }

    #[test]
    fn error_trait_object_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ForestError>();
    }
}
