//! Gradient-boosted decision trees.
//!
//! The paper focuses on random forests but frames the study around "tree
//! ensemble models" generally, and Hummingbird — one of its GPU backends —
//! "converts traditional ML models (e.g., decision tree, random forest,
//! and gradient boost models) into tensor computations". This module adds
//! the gradient-boosted member of that family: stage-wise regression trees
//! fit to residuals (squared loss) or to logistic-loss gradients (binary
//! classification), reusing the same CART machinery and [`DecisionTree`]
//! representation as the forests, so the flat layouts and engines apply
//! unchanged per tree.

use serde::{Deserialize, Serialize};

use crate::builder::{ForestBuilder, TrainOptions};
use crate::error::ForestError;
use crate::tree::DecisionTree;

/// Hyper-parameters for gradient boosting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GradientBoostConfig {
    /// Number of boosting stages (trees).
    pub n_stages: usize,
    /// Depth of each stage's tree (boosted trees are shallow; 3–6 typical).
    pub depth: usize,
    /// Shrinkage applied to each stage's contribution.
    pub learning_rate: f32,
    /// Seed for the per-stage split search.
    pub seed: u64,
}

impl Default for GradientBoostConfig {
    fn default() -> Self {
        Self {
            n_stages: 50,
            depth: 3,
            learning_rate: 0.2,
            seed: 0,
        }
    }
}

/// What the boosted ensemble predicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GbTask {
    /// Squared-loss regression.
    Regression,
    /// Logistic-loss binary classification.
    Binary,
}

/// A gradient-boosted tree ensemble.
///
/// # Example
///
/// ```
/// use mlscore_forest::gbdt::{GradientBoost, GradientBoostConfig};
///
/// // Fit y = step(x): boosting nails piecewise-constant targets.
/// let x: Vec<f32> = (0..100).map(|i| i as f32 / 100.0).collect();
/// let y: Vec<f32> = x.iter().map(|&v| if v < 0.5 { -1.0 } else { 2.0 }).collect();
/// let model = GradientBoost::train_regressor(
///     &x, 1, &y, &GradientBoostConfig::default())?;
/// assert!((model.predict_value(&[0.25]) - (-1.0)).abs() < 0.2);
/// assert!((model.predict_value(&[0.75]) - 2.0).abs() < 0.2);
/// # Ok::<(), mlscore_forest::ForestError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GradientBoost {
    init: f32,
    trees: Vec<DecisionTree>,
    learning_rate: f32,
    n_features: usize,
    task: GbTask,
}

impl GradientBoost {
    /// Trains a squared-loss regressor.
    ///
    /// # Errors
    ///
    /// Returns [`ForestError::InvalidTrainingData`] for shape errors or a
    /// non-positive learning rate / zero stages.
    pub fn train_regressor(
        x: &[f32],
        n_features: usize,
        y: &[f32],
        config: &GradientBoostConfig,
    ) -> Result<Self, ForestError> {
        Self::validate(x, n_features, y.len(), config)?;
        let init = y.iter().sum::<f32>() / y.len() as f32;
        let mut scores = vec![init; y.len()];
        let mut trees = Vec::with_capacity(config.n_stages);
        for stage in 0..config.n_stages {
            let residuals: Vec<f32> = y.iter().zip(&scores).map(|(t, s)| t - s).collect();
            let tree = Self::fit_stage(x, n_features, &residuals, config, stage)?;
            for (i, row) in x.chunks_exact(n_features).enumerate() {
                let step = tree.predict(row).as_value().expect("regression stage");
                scores[i] += config.learning_rate * step;
            }
            trees.push(tree);
        }
        Ok(Self {
            init,
            trees,
            learning_rate: config.learning_rate,
            n_features,
            task: GbTask::Regression,
        })
    }

    /// Trains a logistic-loss binary classifier (labels 0/1).
    ///
    /// # Errors
    ///
    /// Returns [`ForestError::InvalidTrainingData`] for shape errors,
    /// labels outside {0, 1}, or degenerate config.
    pub fn train_binary(
        x: &[f32],
        n_features: usize,
        y: &[u32],
        config: &GradientBoostConfig,
    ) -> Result<Self, ForestError> {
        Self::validate(x, n_features, y.len(), config)?;
        if let Some(&bad) = y.iter().find(|&&c| c > 1) {
            return Err(ForestError::InvalidTrainingData(format!(
                "binary boosting needs labels in {{0, 1}}, found {bad}"
            )));
        }
        let pos = y.iter().filter(|&&c| c == 1).count() as f32;
        let p = (pos / y.len() as f32).clamp(1e-4, 1.0 - 1e-4);
        let init = (p / (1.0 - p)).ln();
        let mut margins = vec![init; y.len()];
        let mut trees = Vec::with_capacity(config.n_stages);
        for stage in 0..config.n_stages {
            // Negative gradient of log loss: y - sigmoid(margin).
            let residuals: Vec<f32> = y
                .iter()
                .zip(&margins)
                .map(|(&t, &m)| t as f32 - sigmoid(m))
                .collect();
            let tree = Self::fit_stage(x, n_features, &residuals, config, stage)?;
            for (i, row) in x.chunks_exact(n_features).enumerate() {
                let step = tree.predict(row).as_value().expect("regression stage");
                margins[i] += config.learning_rate * step;
            }
            trees.push(tree);
        }
        Ok(Self {
            init,
            trees,
            learning_rate: config.learning_rate,
            n_features,
            task: GbTask::Binary,
        })
    }

    fn validate(
        x: &[f32],
        n_features: usize,
        n_labels: usize,
        config: &GradientBoostConfig,
    ) -> Result<(), ForestError> {
        if n_features == 0 || x.is_empty() {
            return Err(ForestError::InvalidTrainingData("empty data".into()));
        }
        if !x.len().is_multiple_of(n_features) || x.len() / n_features != n_labels {
            return Err(ForestError::InvalidTrainingData(
                "rows and labels disagree".into(),
            ));
        }
        if config.n_stages == 0 {
            return Err(ForestError::InvalidTrainingData("zero stages".into()));
        }
        if !(config.learning_rate > 0.0 && config.learning_rate <= 1.0) {
            return Err(ForestError::InvalidTrainingData(format!(
                "learning rate {} outside (0, 1]",
                config.learning_rate
            )));
        }
        Ok(())
    }

    fn fit_stage(
        x: &[f32],
        n_features: usize,
        residuals: &[f32],
        config: &GradientBoostConfig,
        stage: usize,
    ) -> Result<DecisionTree, ForestError> {
        let forest = ForestBuilder::new(
            1,
            TrainOptions {
                max_depth: config.depth,
                min_samples_leaf: 1,
                feature_candidates: Some(n_features),
                bootstrap: false,
                seed: config.seed ^ (stage as u64).wrapping_mul(0x9E37_79B9),
            },
        )
        .train_regressor(x, n_features, residuals)?;
        Ok(forest.trees()[0].clone())
    }

    /// The raw additive score `init + lr * sum(trees)`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is shorter than the feature count.
    pub fn raw_score(&self, x: &[f32]) -> f32 {
        let sum: f32 = self
            .trees
            .iter()
            .map(|t| t.predict(x).as_value().expect("regression stage"))
            .sum();
        self.init + self.learning_rate * sum
    }

    /// Regression prediction (the raw score).
    pub fn predict_value(&self, x: &[f32]) -> f32 {
        self.raw_score(x)
    }

    /// Positive-class probability (binary task).
    pub fn predict_proba(&self, x: &[f32]) -> f32 {
        sigmoid(self.raw_score(x))
    }

    /// Binary class prediction (probability > 0.5).
    pub fn predict_class(&self, x: &[f32]) -> u32 {
        u32::from(self.predict_proba(x) > 0.5)
    }

    /// The boosting stages.
    pub fn trees(&self) -> &[DecisionTree] {
        &self.trees
    }

    /// Number of stages.
    pub fn n_stages(&self) -> usize {
        self.trees.len()
    }

    /// Number of input features.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// The task this model was trained for.
    pub fn task(&self) -> GbTask {
        self.task
    }

    /// Mean squared error against regression targets.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or non-regression task.
    pub fn mse(&self, x: &[f32], y: &[f32]) -> f64 {
        assert_eq!(self.task, GbTask::Regression, "mse needs a regressor");
        assert_eq!(x.len() / self.n_features, y.len(), "shape mismatch");
        x.chunks_exact(self.n_features)
            .zip(y)
            .map(|(row, &t)| {
                let d = (self.predict_value(row) - t) as f64;
                d * d
            })
            .sum::<f64>()
            / y.len() as f64
    }
}

fn sigmoid(v: f32) -> f32 {
    1.0 / (1.0 + (-v).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wave(n: usize) -> (Vec<f32>, Vec<f32>) {
        let x: Vec<f32> = (0..n).map(|i| i as f32 / n as f32).collect();
        let y: Vec<f32> = x.iter().map(|&v| (v * 6.0).sin()).collect();
        (x, y)
    }

    #[test]
    fn more_stages_reduce_training_error() {
        let (x, y) = wave(200);
        let mut prev = f64::INFINITY;
        for stages in [1usize, 5, 25, 100] {
            let model = GradientBoost::train_regressor(
                &x,
                1,
                &y,
                &GradientBoostConfig {
                    n_stages: stages,
                    ..Default::default()
                },
            )
            .unwrap();
            let err = model.mse(&x, &y);
            assert!(err <= prev + 1e-9, "{stages} stages: mse {err} > {prev}");
            prev = err;
        }
        assert!(prev < 0.01, "final mse {prev}");
    }

    #[test]
    fn binary_boosting_learns_blobs() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..120 {
            let t = i as f32 / 120.0;
            x.extend_from_slice(&[0.2 + 0.1 * t, 0.3 - 0.05 * t]);
            y.push(0u32);
            x.extend_from_slice(&[0.8 - 0.1 * t, 0.7 + 0.05 * t]);
            y.push(1);
        }
        let model =
            GradientBoost::train_binary(&x, 2, &y, &GradientBoostConfig::default()).unwrap();
        let correct = x
            .chunks_exact(2)
            .zip(&y)
            .filter(|(row, &t)| model.predict_class(row) == t)
            .count();
        assert!(correct as f64 / y.len() as f64 > 0.95);
        // Probabilities are calibrated to the right side of 0.5.
        assert!(model.predict_proba(&[0.2, 0.3]) < 0.5);
        assert!(model.predict_proba(&[0.8, 0.7]) > 0.5);
        assert_eq!(model.task(), GbTask::Binary);
    }

    #[test]
    fn deterministic_per_seed() {
        let (x, y) = wave(60);
        let cfg = GradientBoostConfig {
            n_stages: 10,
            seed: 5,
            ..Default::default()
        };
        let a = GradientBoost::train_regressor(&x, 1, &y, &cfg).unwrap();
        let b = GradientBoost::train_regressor(&x, 1, &y, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn stage_trees_respect_depth() {
        let (x, y) = wave(80);
        let model = GradientBoost::train_regressor(
            &x,
            1,
            &y,
            &GradientBoostConfig {
                n_stages: 6,
                depth: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(model.n_stages(), 6);
        for tree in model.trees() {
            assert!(tree.depth() <= 2);
        }
        assert_eq!(model.n_features(), 1);
    }

    #[test]
    fn config_validation() {
        let (x, y) = wave(10);
        for bad in [
            GradientBoostConfig {
                n_stages: 0,
                ..Default::default()
            },
            GradientBoostConfig {
                learning_rate: 0.0,
                ..Default::default()
            },
            GradientBoostConfig {
                learning_rate: 1.5,
                ..Default::default()
            },
        ] {
            assert!(GradientBoost::train_regressor(&x, 1, &y, &bad).is_err());
        }
        assert!(GradientBoost::train_binary(&x, 1, &[2; 10], &Default::default()).is_err());
        assert!(GradientBoost::train_regressor(&[], 1, &[], &Default::default()).is_err());
    }

    #[test]
    fn init_is_target_mean_for_regression() {
        let x = [0.0f32, 1.0, 2.0, 3.0];
        let y = [2.0f32, 2.0, 4.0, 4.0];
        let model = GradientBoost::train_regressor(
            &x,
            1,
            &y,
            &GradientBoostConfig {
                n_stages: 1,
                learning_rate: 1e-6,
                ..Default::default()
            },
        )
        .unwrap();
        // With a vanishing learning rate the prediction is ~the mean.
        assert!((model.predict_value(&[0.5]) - 3.0).abs() < 0.01);
    }
}
