//! Random forests: ensembles of decision trees with voting/averaging.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::error::ForestError;
use crate::node::{LeafValue, Node};
use crate::tree::DecisionTree;

/// The learning task a forest solves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Task {
    /// Multi-class classification with class ids in `0..n_classes`.
    /// Tree votes are combined by majority (ties break to the lowest id).
    Classification {
        /// Number of classes.
        n_classes: u32,
    },
    /// Regression; tree outputs are averaged.
    Regression,
}

impl Task {
    /// The class count, when classifying.
    pub fn n_classes(self) -> Option<u32> {
        match self {
            Task::Classification { n_classes } => Some(n_classes),
            Task::Regression => None,
        }
    }
}

/// Shape parameters of a forest — the axes the paper sweeps (number of
/// trees, tree depth, dataset feature count) plus the task.
///
/// # Example
///
/// ```
/// use mlscore_forest::ForestConfig;
///
/// // The paper's heavyweight HIGGS model: 128 trees, 10 levels, 28 features.
/// let cfg = ForestConfig::classification(128, 28, 2).with_depth(10);
/// assert_eq!(cfg.depth, 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ForestConfig {
    /// Number of trees in the ensemble.
    pub n_trees: usize,
    /// Tree depth in levels (the paper uses 6 and 10).
    pub depth: usize,
    /// Number of input features.
    pub n_features: usize,
    /// Task (classification with class count, or regression).
    pub task: Task,
}

impl ForestConfig {
    /// A classification config with the paper's default depth of 10.
    pub fn classification(n_trees: usize, n_features: usize, n_classes: u32) -> Self {
        Self {
            n_trees,
            depth: 10,
            n_features,
            task: Task::Classification { n_classes },
        }
    }

    /// A regression config with the paper's default depth of 10.
    pub fn regression(n_trees: usize, n_features: usize) -> Self {
        Self {
            n_trees,
            depth: 10,
            n_features,
            task: Task::Regression,
        }
    }

    /// Sets the tree depth.
    pub fn with_depth(mut self, depth: usize) -> Self {
        self.depth = depth;
        self
    }
}

/// A single prediction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Prediction {
    /// Predicted class id.
    Class(u32),
    /// Predicted value.
    Value(f32),
}

impl Prediction {
    /// The class id, if classifying.
    pub fn as_class(self) -> Option<u32> {
        match self {
            Prediction::Class(c) => Some(c),
            Prediction::Value(_) => None,
        }
    }

    /// The value, if regressing.
    pub fn as_value(self) -> Option<f32> {
        match self {
            Prediction::Class(_) => None,
            Prediction::Value(v) => Some(v),
        }
    }
}

/// A batch of predictions, matching the forest's [`Task`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Predictions {
    /// Class ids, one per record.
    Classes(Vec<u32>),
    /// Values, one per record.
    Values(Vec<f32>),
}

impl Predictions {
    /// Number of records scored.
    pub fn len(&self) -> usize {
        match self {
            Predictions::Classes(v) => v.len(),
            Predictions::Values(v) => v.len(),
        }
    }

    /// Returns `true` if no records were scored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The class vector, if classifying.
    pub fn as_classes(&self) -> Option<&[u32]> {
        match self {
            Predictions::Classes(v) => Some(v),
            Predictions::Values(_) => None,
        }
    }

    /// The value vector, if regressing.
    pub fn as_values(&self) -> Option<&[f32]> {
        match self {
            Predictions::Classes(_) => None,
            Predictions::Values(v) => Some(v),
        }
    }

    /// Appends `other`'s records — how streaming consumers fold per-chunk
    /// predictions back into one batch (records partition across chunks,
    /// so appending in chunk order is bit-exact with one whole-batch
    /// scoring pass).
    ///
    /// # Panics
    ///
    /// Panics if the two batches are of different prediction kinds.
    pub fn append(&mut self, other: &Predictions) {
        match (self, other) {
            (Predictions::Classes(a), Predictions::Classes(b)) => a.extend_from_slice(b),
            (Predictions::Values(a), Predictions::Values(b)) => a.extend_from_slice(b),
            _ => panic!("cannot append mismatched prediction kinds"),
        }
    }
}

/// A random forest: an ensemble of [`DecisionTree`]s over a fixed feature
/// space, combined by majority vote (classification) or averaging
/// (regression).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    n_features: usize,
    task: Task,
}

impl RandomForest {
    /// Assembles a forest from trees, validating every tree against the
    /// feature count and task.
    ///
    /// # Errors
    ///
    /// Returns [`ForestError::EmptyForest`] if `trees` is empty, or the first
    /// per-tree validation failure (see [`DecisionTree::validate`]).
    pub fn from_trees(
        trees: Vec<DecisionTree>,
        n_features: usize,
        task: Task,
    ) -> Result<Self, ForestError> {
        if trees.is_empty() {
            return Err(ForestError::EmptyForest);
        }
        for tree in &trees {
            tree.validate(n_features, task.n_classes())?;
        }
        Ok(Self {
            trees,
            n_features,
            task,
        })
    }

    /// Generates a deterministic synthetic forest of *full* binary trees at
    /// exactly `config.depth` levels, with random features and thresholds in
    /// `[0, 1)`.
    ///
    /// The paper's experiments control model shape exactly (1 or 128 trees,
    /// 6 or 10 levels); trained models rarely hit an exact depth, so the
    /// figure harness uses this generator. Functional behaviour (which leaf a
    /// record reaches) is still real — all backends traverse these trees.
    ///
    /// # Panics
    ///
    /// Panics if `config.n_trees == 0`, `config.n_features == 0`, or the
    /// depth exceeds 24 (node indices are kept exactly representable in the
    /// `f32` flat layout).
    pub fn synthetic_full(config: &ForestConfig, seed: u64) -> Self {
        assert!(config.n_trees > 0, "forest needs at least one tree");
        assert!(config.n_features > 0, "forest needs at least one feature");
        assert!(config.depth <= 24, "synthetic depth limited to 24");
        let mut rng = StdRng::seed_from_u64(seed);
        let trees = (0..config.n_trees)
            .map(|_| Self::full_tree(config, &mut rng))
            .collect();
        Self {
            trees,
            n_features: config.n_features,
            task: config.task,
        }
    }

    /// Generates a deterministic synthetic forest whose trees have at most
    /// `max_leaves` leaves each (and at most `config.depth` levels).
    ///
    /// This models what training on a small distinct-sample pool produces:
    /// the paper replicates IRIS's 150 original samples to 1M records, so a
    /// depth-10 IRIS tree can never grow more leaves than distinct samples,
    /// while HIGGS trees fill out. The leaf budget is what makes IRIS models
    /// "simpler" than HIGGS models at identical tree count and depth.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`RandomForest::synthetic_full`],
    /// or if `max_leaves == 0`.
    pub fn synthetic_capped(config: &ForestConfig, max_leaves: usize, seed: u64) -> Self {
        assert!(config.n_trees > 0, "forest needs at least one tree");
        assert!(config.n_features > 0, "forest needs at least one feature");
        assert!(max_leaves > 0, "need at least one leaf");
        assert!(config.depth <= 24, "synthetic depth limited to 24");
        let full_leaves = 1usize << config.depth;
        if max_leaves >= full_leaves {
            return Self::synthetic_full(config, seed);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let trees = (0..config.n_trees)
            .map(|_| {
                let mut nodes = Vec::new();
                Self::capped_subtree(config, max_leaves, 0, &mut nodes, &mut rng);
                DecisionTree::from_nodes(nodes).expect("capped tree is structurally valid")
            })
            .collect();
        Self {
            trees,
            n_features: config.n_features,
            task: config.task,
        }
    }

    /// Grows a subtree with exactly `leaf_budget` leaves (depth permitting);
    /// returns the subtree root index.
    fn capped_subtree(
        config: &ForestConfig,
        leaf_budget: usize,
        depth: usize,
        nodes: &mut Vec<Node>,
        rng: &mut StdRng,
    ) -> u32 {
        let idx = nodes.len() as u32;
        if leaf_budget == 1 || depth >= config.depth {
            let leaf = match config.task {
                Task::Classification { n_classes } => Node::class_leaf(rng.gen_range(0..n_classes)),
                Task::Regression => Node::value_leaf(rng.gen_range(-1.0..1.0)),
            };
            nodes.push(leaf);
            return idx;
        }
        // A subtree at `depth` can host at most 2^(config.depth - depth)
        // leaves per side; keep both sides feasible when splitting the budget.
        let side_cap = 1usize << (config.depth - depth - 1);
        let min_left = leaf_budget.saturating_sub(side_cap).max(1);
        let max_left = (leaf_budget - 1).min(side_cap);
        let left_budget = rng.gen_range(min_left..=max_left);
        let feature = rng.gen_range(0..config.n_features) as u16;
        let threshold = rng.gen_range(0.0f32..1.0f32);
        nodes.push(Node::decision(feature, threshold, 0, 0)); // patched below
        let left = Self::capped_subtree(config, left_budget, depth + 1, nodes, rng);
        let right = Self::capped_subtree(config, leaf_budget - left_budget, depth + 1, nodes, rng);
        nodes[idx as usize] = Node::decision(feature, threshold, left, right);
        idx
    }

    fn full_tree(config: &ForestConfig, rng: &mut StdRng) -> DecisionTree {
        let depth = config.depth;
        if depth == 0 {
            let leaf = match config.task {
                Task::Classification { n_classes } => LeafValue::Class(rng.gen_range(0..n_classes)),
                Task::Regression => LeafValue::Value(rng.gen_range(-1.0..1.0)),
            };
            return DecisionTree::leaf(leaf);
        }
        // BFS order: internal levels 0..depth, leaves at level `depth`.
        let n_internal = (1usize << depth) - 1;
        let n_leaves = 1usize << depth;
        let mut nodes = Vec::with_capacity(n_internal + n_leaves);
        for i in 0..n_internal {
            let feature = rng.gen_range(0..config.n_features) as u16;
            let threshold = rng.gen_range(0.0f32..1.0f32);
            nodes.push(Node::decision(
                feature,
                threshold,
                (2 * i + 1) as u32,
                (2 * i + 2) as u32,
            ));
        }
        for _ in 0..n_leaves {
            let leaf = match config.task {
                Task::Classification { n_classes } => Node::class_leaf(rng.gen_range(0..n_classes)),
                Task::Regression => Node::value_leaf(rng.gen_range(-1.0..1.0)),
            };
            nodes.push(leaf);
        }
        DecisionTree::from_nodes(nodes).expect("synthetic full tree is structurally valid")
    }

    /// The trees in the ensemble.
    pub fn trees(&self) -> &[DecisionTree] {
        &self.trees
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Number of input features.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// The learning task.
    pub fn task(&self) -> Task {
        self.task
    }

    /// Deepest tree depth, in levels.
    pub fn max_depth(&self) -> usize {
        self.trees
            .iter()
            .map(DecisionTree::depth)
            .max()
            .unwrap_or(0)
    }

    /// Total node count across all trees.
    pub fn n_nodes(&self) -> usize {
        self.trees.iter().map(DecisionTree::len).sum()
    }

    /// Per-class vote counts for one record (classification only).
    ///
    /// # Panics
    ///
    /// Panics for regression forests or if `x` is shorter than the
    /// feature count (see [`RandomForest::predict_checked`] for the
    /// validating path).
    pub fn vote_counts(&self, x: &[f32]) -> Vec<u32> {
        let n_classes =
            self.task
                .n_classes()
                .expect("vote_counts requires a classification forest") as usize;
        let mut counts = vec![0u32; n_classes];
        for tree in &self.trees {
            if let LeafValue::Class(c) = tree.predict(x) {
                counts[c as usize] += 1;
            }
        }
        counts
    }

    /// Combines per-class vote counts into a final class: majority vote with
    /// ties broken toward the lowest class id. Every backend in the
    /// workspace uses this exact rule so predictions agree bit-for-bit.
    pub fn majority(counts: &[u32]) -> u32 {
        let mut best = 0usize;
        for (i, &c) in counts.iter().enumerate() {
            if c > counts[best] {
                best = i;
            }
        }
        best as u32
    }

    /// Per-class vote fractions for one record (classification only) —
    /// the forest's probability estimate.
    ///
    /// # Panics
    ///
    /// Panics for regression forests or if `x` is shorter than the
    /// feature count.
    pub fn predict_proba(&self, x: &[f32]) -> Vec<f32> {
        let counts = self.vote_counts(x);
        let n = self.trees.len() as f32;
        counts.into_iter().map(|c| c as f32 / n).collect()
    }

    /// Scores one record.
    ///
    /// # Panics
    ///
    /// Panics if `x` is shorter than the model's feature count.
    pub fn predict_one(&self, x: &[f32]) -> Prediction {
        match self.task {
            Task::Classification { .. } => {
                let counts = self.vote_counts(x);
                Prediction::Class(Self::majority(&counts))
            }
            Task::Regression => {
                let sum: f32 = self
                    .trees
                    .iter()
                    .map(|t| t.predict(x).as_value().expect("regression leaf"))
                    .sum();
                Prediction::Value(sum / self.trees.len() as f32)
            }
        }
    }

    /// Scores a row-major batch (`records.len()` must be a multiple of the
    /// feature count).
    ///
    /// # Panics
    ///
    /// Panics if `records.len()` is not a multiple of the feature count.
    pub fn predict_batch(&self, records: &[f32]) -> Predictions {
        assert_eq!(
            records.len() % self.n_features,
            0,
            "records length must be a multiple of n_features"
        );
        let rows = records.chunks_exact(self.n_features);
        match self.task {
            Task::Classification { .. } => Predictions::Classes(
                rows.map(|r| self.predict_one(r).as_class().expect("class"))
                    .collect(),
            ),
            Task::Regression => Predictions::Values(
                rows.map(|r| self.predict_one(r).as_value().expect("value"))
                    .collect(),
            ),
        }
    }

    /// Scores one record after validating its width.
    ///
    /// # Errors
    ///
    /// Returns [`ForestError::FeatureWidthMismatch`] when `x.len()` differs
    /// from the model's feature count.
    pub fn predict_checked(&self, x: &[f32]) -> Result<Prediction, ForestError> {
        if x.len() != self.n_features {
            return Err(ForestError::FeatureWidthMismatch {
                expected: self.n_features,
                got: x.len(),
            });
        }
        Ok(self.predict_one(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stump(class_le: u32, class_gt: u32) -> DecisionTree {
        DecisionTree::from_nodes(vec![
            Node::decision(0, 0.5, 1, 2),
            Node::class_leaf(class_le),
            Node::class_leaf(class_gt),
        ])
        .unwrap()
    }

    #[test]
    fn majority_vote_breaks_ties_low() {
        assert_eq!(RandomForest::majority(&[2, 2, 1]), 0);
        assert_eq!(RandomForest::majority(&[1, 3, 3]), 1);
        assert_eq!(RandomForest::majority(&[0, 0, 5]), 2);
    }

    #[test]
    fn classification_votes() {
        let forest = RandomForest::from_trees(
            vec![stump(0, 1), stump(0, 1), stump(1, 0)],
            1,
            Task::Classification { n_classes: 2 },
        )
        .unwrap();
        assert_eq!(forest.predict_one(&[0.1]).as_class(), Some(0)); // 2 votes 0
        assert_eq!(forest.predict_one(&[0.9]).as_class(), Some(1)); // 2 votes 1
        assert_eq!(forest.vote_counts(&[0.1]), vec![2, 1]);
    }

    #[test]
    fn regression_averages() {
        let trees = vec![
            DecisionTree::leaf(LeafValue::Value(1.0)),
            DecisionTree::leaf(LeafValue::Value(3.0)),
        ];
        let forest = RandomForest::from_trees(trees, 1, Task::Regression).unwrap();
        assert_eq!(forest.predict_one(&[0.0]).as_value(), Some(2.0));
    }

    #[test]
    fn from_trees_validates() {
        assert_eq!(
            RandomForest::from_trees(vec![], 1, Task::Regression).unwrap_err(),
            ForestError::EmptyForest
        );
        let err =
            RandomForest::from_trees(vec![stump(0, 5)], 1, Task::Classification { n_classes: 2 })
                .unwrap_err();
        assert!(matches!(err, ForestError::ClassOutOfRange { class: 5, .. }));
    }

    #[test]
    fn synthetic_full_shape() {
        let cfg = ForestConfig::classification(4, 6, 3).with_depth(5);
        let f = RandomForest::synthetic_full(&cfg, 7);
        assert_eq!(f.n_trees(), 4);
        assert_eq!(f.n_features(), 6);
        assert_eq!(f.max_depth(), 5);
        for t in f.trees() {
            assert_eq!(t.len(), (1 << 6) - 1); // full tree: 2^(d+1)-1 nodes
            assert_eq!(t.n_leaves(), 1 << 5);
            assert_eq!(t.depth(), 5);
        }
    }

    #[test]
    fn synthetic_is_deterministic_per_seed() {
        let cfg = ForestConfig::classification(3, 4, 2).with_depth(4);
        let a = RandomForest::synthetic_full(&cfg, 1);
        let b = RandomForest::synthetic_full(&cfg, 1);
        let c = RandomForest::synthetic_full(&cfg, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn synthetic_depth_zero_is_leaf_only() {
        let cfg = ForestConfig::regression(2, 3).with_depth(0);
        let f = RandomForest::synthetic_full(&cfg, 9);
        assert_eq!(f.max_depth(), 0);
        assert_eq!(f.n_nodes(), 2);
    }

    #[test]
    fn predict_batch_matches_predict_one() {
        let cfg = ForestConfig::classification(5, 3, 4).with_depth(6);
        let f = RandomForest::synthetic_full(&cfg, 11);
        let records: Vec<f32> = (0..30).map(|i| (i as f32 * 0.37) % 1.0).collect();
        let batch = f.predict_batch(&records);
        let classes = batch.as_classes().unwrap();
        for (i, row) in records.chunks_exact(3).enumerate() {
            assert_eq!(f.predict_one(row).as_class().unwrap(), classes[i]);
        }
    }

    #[test]
    fn predict_proba_sums_to_one_and_argmaxes_to_prediction() {
        let cfg = ForestConfig::classification(9, 4, 3).with_depth(5);
        let f = RandomForest::synthetic_full(&cfg, 12);
        for i in 0..20 {
            let x: Vec<f32> = (0..4)
                .map(|j| ((i * 13 + j * 7) % 100) as f32 / 100.0)
                .collect();
            let p = f.predict_proba(&x);
            assert_eq!(p.len(), 3);
            let sum: f32 = p.iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
            let argmax = p
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(b.0.cmp(&a.0)))
                .unwrap()
                .0 as u32;
            assert_eq!(argmax, f.predict_one(&x).as_class().unwrap());
        }
    }

    #[test]
    fn predict_checked_validates_width() {
        let cfg = ForestConfig::classification(1, 4, 2).with_depth(2);
        let f = RandomForest::synthetic_full(&cfg, 3);
        assert!(f.predict_checked(&[0.0; 4]).is_ok());
        assert!(matches!(
            f.predict_checked(&[0.0; 3]),
            Err(ForestError::FeatureWidthMismatch {
                expected: 4,
                got: 3
            })
        ));
    }

    #[test]
    fn capped_respects_leaf_budget_and_depth() {
        let cfg = ForestConfig::classification(6, 4, 3).with_depth(10);
        let f = RandomForest::synthetic_capped(&cfg, 150, 13);
        for t in f.trees() {
            assert_eq!(t.n_leaves(), 150);
            assert!(t.depth() <= 10);
        }
    }

    #[test]
    fn capped_with_large_budget_is_full() {
        let cfg = ForestConfig::classification(2, 4, 2).with_depth(4);
        let capped = RandomForest::synthetic_capped(&cfg, 1 << 4, 5);
        let full = RandomForest::synthetic_full(&cfg, 5);
        assert_eq!(capped, full);
    }

    #[test]
    fn capped_budget_one_is_single_leaf() {
        let cfg = ForestConfig::classification(3, 4, 2).with_depth(8);
        let f = RandomForest::synthetic_capped(&cfg, 1, 5);
        for t in f.trees() {
            assert_eq!(t.len(), 1);
        }
    }

    #[test]
    fn capped_is_deterministic() {
        let cfg = ForestConfig::classification(4, 4, 3).with_depth(9);
        assert_eq!(
            RandomForest::synthetic_capped(&cfg, 100, 3),
            RandomForest::synthetic_capped(&cfg, 100, 3)
        );
    }

    #[test]
    fn predictions_accessors() {
        let p = Predictions::Classes(vec![1, 0, 1]);
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        assert!(p.as_values().is_none());
        let v = Predictions::Values(vec![]);
        assert!(v.is_empty());
        assert!(v.as_classes().is_none());
    }
}
