//! CART training for decision trees and random forests.
//!
//! The paper trains its models with scikit-learn and converts them to ONNX;
//! here we implement the training path ourselves so examples and tests can
//! produce *real* models from data. Training follows standard CART: greedy
//! best-split search per node (Gini/entropy for classification, variance
//! reduction for regression), with bootstrap sampling and per-node feature
//! subsampling for forest diversity.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::error::ForestError;
use crate::forest::{RandomForest, Task};
use crate::importance::{ImportanceAccumulator, TrainedModel};
use crate::node::{LeafValue, Node};
use crate::tree::DecisionTree;

/// Split quality criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SplitCriterion {
    /// Gini impurity (classification default).
    Gini,
    /// Shannon entropy (classification).
    Entropy,
    /// Variance / mean squared error (regression).
    Mse,
}

/// Hyper-parameters for forest training.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainOptions {
    /// Maximum tree depth in levels (the paper uses 6 and 10).
    pub max_depth: usize,
    /// Minimum records per leaf.
    pub min_samples_leaf: usize,
    /// Number of candidate features per split; `None` means
    /// `ceil(sqrt(n_features))`, the random forest default.
    pub feature_candidates: Option<usize>,
    /// Whether each tree trains on a bootstrap resample.
    pub bootstrap: bool,
    /// RNG seed; training is fully deterministic given the seed.
    pub seed: u64,
}

impl Default for TrainOptions {
    fn default() -> Self {
        Self {
            max_depth: 10,
            min_samples_leaf: 1,
            feature_candidates: None,
            bootstrap: true,
            seed: 0,
        }
    }
}

/// Trains [`RandomForest`]s from row-major feature data.
///
/// # Example
///
/// ```
/// use mlscore_forest::{ForestBuilder, TrainOptions};
///
/// // XOR-ish toy problem.
/// let x = [0.0f32, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0];
/// let y = [0u32, 1, 1, 0];
/// let forest = ForestBuilder::new(25, TrainOptions { max_depth: 3, ..Default::default() })
///     .train_classifier(&x, 2, &y, 2)?;
/// assert_eq!(forest.predict_one(&[0.0, 1.0]).as_class(), Some(1));
/// assert_eq!(forest.predict_one(&[1.0, 1.0]).as_class(), Some(0));
/// # Ok::<(), mlscore_forest::ForestError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ForestBuilder {
    n_trees: usize,
    options: TrainOptions,
    criterion: Option<SplitCriterion>,
}

impl ForestBuilder {
    /// Creates a builder for `n_trees` trees with the given options.
    pub fn new(n_trees: usize, options: TrainOptions) -> Self {
        Self {
            n_trees,
            options,
            criterion: None,
        }
    }

    /// Overrides the split criterion (defaults: Gini for classification, MSE
    /// for regression).
    pub fn criterion(mut self, criterion: SplitCriterion) -> Self {
        self.criterion = Some(criterion);
        self
    }

    /// Trains a classification forest on row-major `x` with labels `y`.
    ///
    /// # Errors
    ///
    /// Returns [`ForestError::InvalidTrainingData`] on shape mismatches,
    /// empty data, zero classes, or labels outside `0..n_classes`.
    pub fn train_classifier(
        &self,
        x: &[f32],
        n_features: usize,
        y: &[u32],
        n_classes: u32,
    ) -> Result<RandomForest, ForestError> {
        self.check_shapes(x, n_features, y.len())?;
        if n_classes == 0 {
            return Err(ForestError::InvalidTrainingData("zero classes".into()));
        }
        if let Some(&bad) = y.iter().find(|&&c| c >= n_classes) {
            return Err(ForestError::InvalidTrainingData(format!(
                "label {bad} outside 0..{n_classes}"
            )));
        }
        let criterion = self.criterion.unwrap_or(SplitCriterion::Gini);
        if criterion == SplitCriterion::Mse {
            return Err(ForestError::InvalidTrainingData(
                "mse criterion is for regression".into(),
            ));
        }
        let targets = Targets::Classes {
            y,
            n_classes: n_classes as usize,
        };
        let (trees, _) = self.train_trees(x, n_features, &targets, criterion)?;
        RandomForest::from_trees(trees, n_features, Task::Classification { n_classes })
    }

    /// Like [`ForestBuilder::train_classifier`], additionally returning
    /// mean-decrease-in-impurity feature importances.
    ///
    /// # Errors
    ///
    /// Same as [`ForestBuilder::train_classifier`].
    pub fn train_classifier_detailed(
        &self,
        x: &[f32],
        n_features: usize,
        y: &[u32],
        n_classes: u32,
    ) -> Result<TrainedModel, ForestError> {
        self.check_shapes(x, n_features, y.len())?;
        if n_classes == 0 {
            return Err(ForestError::InvalidTrainingData("zero classes".into()));
        }
        if let Some(&bad) = y.iter().find(|&&c| c >= n_classes) {
            return Err(ForestError::InvalidTrainingData(format!(
                "label {bad} outside 0..{n_classes}"
            )));
        }
        let criterion = self.criterion.unwrap_or(SplitCriterion::Gini);
        if criterion == SplitCriterion::Mse {
            return Err(ForestError::InvalidTrainingData(
                "mse criterion is for regression".into(),
            ));
        }
        let targets = Targets::Classes {
            y,
            n_classes: n_classes as usize,
        };
        let (trees, feature_importances) = self.train_trees(x, n_features, &targets, criterion)?;
        Ok(TrainedModel {
            forest: RandomForest::from_trees(
                trees,
                n_features,
                Task::Classification { n_classes },
            )?,
            feature_importances,
        })
    }

    /// Trains a regression forest on row-major `x` with targets `y`.
    ///
    /// # Errors
    ///
    /// Returns [`ForestError::InvalidTrainingData`] on shape mismatches or
    /// empty data.
    pub fn train_regressor(
        &self,
        x: &[f32],
        n_features: usize,
        y: &[f32],
    ) -> Result<RandomForest, ForestError> {
        self.check_shapes(x, n_features, y.len())?;
        let criterion = self.criterion.unwrap_or(SplitCriterion::Mse);
        if criterion != SplitCriterion::Mse {
            return Err(ForestError::InvalidTrainingData(
                "classification criteria are not for regression".into(),
            ));
        }
        let targets = Targets::Values(y);
        let (trees, _) = self.train_trees(x, n_features, &targets, criterion)?;
        RandomForest::from_trees(trees, n_features, Task::Regression)
    }

    fn check_shapes(
        &self,
        x: &[f32],
        n_features: usize,
        n_labels: usize,
    ) -> Result<(), ForestError> {
        if n_features == 0 {
            return Err(ForestError::InvalidTrainingData("zero features".into()));
        }
        if x.is_empty() {
            return Err(ForestError::InvalidTrainingData("no rows".into()));
        }
        if !x.len().is_multiple_of(n_features) {
            return Err(ForestError::InvalidTrainingData(format!(
                "data length {} is not a multiple of {n_features} features",
                x.len()
            )));
        }
        if x.len() / n_features != n_labels {
            return Err(ForestError::InvalidTrainingData(format!(
                "{} rows but {n_labels} labels",
                x.len() / n_features
            )));
        }
        if self.n_trees == 0 {
            return Err(ForestError::InvalidTrainingData("zero trees".into()));
        }
        Ok(())
    }

    fn train_trees(
        &self,
        x: &[f32],
        n_features: usize,
        targets: &Targets<'_>,
        criterion: SplitCriterion,
    ) -> Result<(Vec<DecisionTree>, Vec<f64>), ForestError> {
        let n_rows = x.len() / n_features;
        let mut rng = StdRng::seed_from_u64(self.options.seed);
        let candidates = self
            .options
            .feature_candidates
            .unwrap_or_else(|| (n_features as f64).sqrt().ceil() as usize)
            .clamp(1, n_features);
        let mut trees = Vec::with_capacity(self.n_trees);
        let mut importance = ImportanceAccumulator::new(n_features);
        for _ in 0..self.n_trees {
            let indices: Vec<usize> = if self.options.bootstrap {
                (0..n_rows).map(|_| rng.gen_range(0..n_rows)).collect()
            } else {
                (0..n_rows).collect()
            };
            let n_total = indices.len();
            let mut grower = TreeGrower {
                x,
                n_features,
                targets,
                criterion,
                options: &self.options,
                candidates,
                rng: &mut rng,
                nodes: Vec::new(),
                importance: &mut importance,
                n_total,
            };
            grower.grow(indices, 0);
            trees.push(DecisionTree::from_nodes(grower.nodes)?);
        }
        Ok((trees, importance.finalize()))
    }
}

enum Targets<'a> {
    Classes { y: &'a [u32], n_classes: usize },
    Values(&'a [f32]),
}

impl Targets<'_> {
    fn leaf(&self, indices: &[usize]) -> LeafValue {
        match self {
            Targets::Classes { y, n_classes } => {
                let mut counts = vec![0u32; *n_classes];
                for &i in indices {
                    counts[y[i] as usize] += 1;
                }
                LeafValue::Class(RandomForest::majority(&counts))
            }
            Targets::Values(y) => {
                let sum: f64 = indices.iter().map(|&i| y[i] as f64).sum();
                LeafValue::Value((sum / indices.len() as f64) as f32)
            }
        }
    }

    fn is_pure(&self, indices: &[usize]) -> bool {
        match self {
            Targets::Classes { y, .. } => {
                let first = y[indices[0]];
                indices.iter().all(|&i| y[i] == first)
            }
            Targets::Values(y) => {
                let first = y[indices[0]];
                indices.iter().all(|&i| y[i] == first)
            }
        }
    }
}

struct TreeGrower<'a> {
    x: &'a [f32],
    n_features: usize,
    targets: &'a Targets<'a>,
    criterion: SplitCriterion,
    options: &'a TrainOptions,
    candidates: usize,
    rng: &'a mut StdRng,
    nodes: Vec<Node>,
    importance: &'a mut ImportanceAccumulator,
    n_total: usize,
}

impl TreeGrower<'_> {
    fn feature(&self, row: usize, f: usize) -> f32 {
        self.x[row * self.n_features + f]
    }

    /// Grows a subtree over `indices` at `depth`; returns the node index.
    fn grow(&mut self, indices: Vec<usize>, depth: usize) -> u32 {
        debug_assert!(!indices.is_empty());
        if depth >= self.options.max_depth
            || indices.len() < 2 * self.options.min_samples_leaf
            || self.targets.is_pure(&indices)
        {
            let idx = self.nodes.len() as u32;
            self.nodes.push(Node::Leaf(self.targets.leaf(&indices)));
            return idx;
        }
        match self.best_split(&indices) {
            Some((feature, threshold, gain)) => {
                self.importance
                    .record(feature, gain * indices.len() as f64 / self.n_total as f64);
                let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
                    .iter()
                    .partition(|&&i| self.feature(i, feature) <= threshold);
                if left_idx.len() < self.options.min_samples_leaf
                    || right_idx.len() < self.options.min_samples_leaf
                {
                    let idx = self.nodes.len() as u32;
                    self.nodes.push(Node::Leaf(self.targets.leaf(&indices)));
                    return idx;
                }
                let idx = self.nodes.len();
                // Placeholder; children get patched after recursion.
                self.nodes
                    .push(Node::decision(feature as u16, threshold, 0, 0));
                let left = self.grow(left_idx, depth + 1);
                let right = self.grow(right_idx, depth + 1);
                self.nodes[idx] = Node::decision(feature as u16, threshold, left, right);
                idx as u32
            }
            None => {
                let idx = self.nodes.len() as u32;
                self.nodes.push(Node::Leaf(self.targets.leaf(&indices)));
                idx
            }
        }
    }

    /// Finds the best `(feature, threshold, gain)` over a random candidate
    /// subset.
    fn best_split(&mut self, indices: &[usize]) -> Option<(usize, f32, f64)> {
        let mut features: Vec<usize> = (0..self.n_features).collect();
        features.shuffle(self.rng);
        features.truncate(self.candidates);
        let parent_impurity = self.impurity(indices);
        let mut best: Option<(f64, usize, f32)> = None;
        for f in features {
            let mut sorted = indices.to_vec();
            sorted.sort_by(|&a, &b| {
                self.feature(a, f)
                    .partial_cmp(&self.feature(b, f))
                    .expect("finite feature values")
            });
            for cut in 1..sorted.len() {
                let lo = self.feature(sorted[cut - 1], f);
                let hi = self.feature(sorted[cut], f);
                if lo == hi {
                    continue;
                }
                let threshold = lo + (hi - lo) / 2.0;
                let (left, right) = sorted.split_at(cut);
                let nl = left.len() as f64;
                let nr = right.len() as f64;
                let n = nl + nr;
                let weighted = self.impurity(left) * nl / n + self.impurity(right) * nr / n;
                let gain = parent_impurity - weighted;
                if gain > 1e-12 && best.is_none_or(|(g, _, _)| gain > g) {
                    best = Some((gain, f, threshold));
                }
            }
        }
        best.map(|(g, f, t)| (f, t, g))
    }

    fn impurity(&self, indices: &[usize]) -> f64 {
        match (self.targets, self.criterion) {
            (Targets::Classes { y, n_classes }, SplitCriterion::Gini) => {
                let mut counts = vec![0usize; *n_classes];
                for &i in indices {
                    counts[y[i] as usize] += 1;
                }
                let n = indices.len() as f64;
                1.0 - counts
                    .iter()
                    .map(|&c| {
                        let p = c as f64 / n;
                        p * p
                    })
                    .sum::<f64>()
            }
            (Targets::Classes { y, n_classes }, SplitCriterion::Entropy) => {
                let mut counts = vec![0usize; *n_classes];
                for &i in indices {
                    counts[y[i] as usize] += 1;
                }
                let n = indices.len() as f64;
                -counts
                    .iter()
                    .filter(|&&c| c > 0)
                    .map(|&c| {
                        let p = c as f64 / n;
                        p * p.log2()
                    })
                    .sum::<f64>()
            }
            (Targets::Classes { .. }, SplitCriterion::Mse) => {
                unreachable!("mse rejected for classification at entry")
            }
            (Targets::Values(y), _) => {
                let y = *y;
                let n = indices.len() as f64;
                let mean: f64 = indices.iter().map(|&i| y[i] as f64).sum::<f64>() / n;
                indices
                    .iter()
                    .map(|&i| {
                        let d = y[i] as f64 - mean;
                        d * d
                    })
                    .sum::<f64>()
                    / n
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;

    /// Two well-separated Gaussian-ish blobs on a grid.
    fn blobs(n_per_class: usize) -> (Vec<f32>, Vec<u32>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n_per_class {
            let t = (i as f32) / n_per_class as f32;
            x.extend_from_slice(&[0.2 + 0.1 * t, 0.3 - 0.1 * t]);
            y.push(0);
            x.extend_from_slice(&[0.8 - 0.1 * t, 0.7 + 0.1 * t]);
            y.push(1);
        }
        (x, y)
    }

    #[test]
    fn learns_separable_blobs() {
        let (x, y) = blobs(50);
        let forest = ForestBuilder::new(15, TrainOptions::default())
            .train_classifier(&x, 2, &y, 2)
            .unwrap();
        let preds = forest.predict_batch(&x);
        assert!(accuracy(preds.as_classes().unwrap(), &y) > 0.95);
    }

    #[test]
    fn respects_max_depth() {
        let (x, y) = blobs(100);
        let forest = ForestBuilder::new(
            5,
            TrainOptions {
                max_depth: 3,
                ..Default::default()
            },
        )
        .train_classifier(&x, 2, &y, 2)
        .unwrap();
        assert!(forest.max_depth() <= 3);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = blobs(30);
        let opts = TrainOptions {
            seed: 99,
            ..Default::default()
        };
        let a = ForestBuilder::new(4, opts)
            .train_classifier(&x, 2, &y, 2)
            .unwrap();
        let b = ForestBuilder::new(4, opts)
            .train_classifier(&x, 2, &y, 2)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let x = [0.0f32, 1.0, 2.0, 3.0];
        let y = [1u32, 1, 1, 1];
        let forest = ForestBuilder::new(1, TrainOptions::default())
            .train_classifier(&x, 1, &y, 2)
            .unwrap();
        assert_eq!(forest.trees()[0].len(), 1);
        assert_eq!(forest.predict_one(&[9.0]).as_class(), Some(1));
    }

    #[test]
    fn regression_fits_step_function() {
        let x: Vec<f32> = (0..100).map(|i| i as f32 / 100.0).collect();
        let y: Vec<f32> = x.iter().map(|&v| if v < 0.5 { 1.0 } else { 5.0 }).collect();
        let forest = ForestBuilder::new(
            10,
            TrainOptions {
                max_depth: 4,
                bootstrap: false,
                ..Default::default()
            },
        )
        .train_regressor(&x, 1, &y)
        .unwrap();
        assert!((forest.predict_one(&[0.2]).as_value().unwrap() - 1.0).abs() < 0.2);
        assert!((forest.predict_one(&[0.8]).as_value().unwrap() - 5.0).abs() < 0.2);
    }

    #[test]
    fn entropy_criterion_also_learns() {
        let (x, y) = blobs(40);
        let forest = ForestBuilder::new(9, TrainOptions::default())
            .criterion(SplitCriterion::Entropy)
            .train_classifier(&x, 2, &y, 2)
            .unwrap();
        let preds = forest.predict_batch(&x);
        assert!(accuracy(preds.as_classes().unwrap(), &y) > 0.9);
    }

    #[test]
    fn shape_errors() {
        let b = ForestBuilder::new(1, TrainOptions::default());
        assert!(matches!(
            b.train_classifier(&[1.0, 2.0, 3.0], 2, &[0], 1),
            Err(ForestError::InvalidTrainingData(_))
        ));
        assert!(matches!(
            b.train_classifier(&[1.0, 2.0], 2, &[0, 1], 2),
            Err(ForestError::InvalidTrainingData(_))
        ));
        assert!(matches!(
            b.train_classifier(&[1.0, 2.0], 1, &[0, 3], 2),
            Err(ForestError::InvalidTrainingData(_))
        ));
        assert!(matches!(
            b.train_classifier(&[], 1, &[], 2),
            Err(ForestError::InvalidTrainingData(_))
        ));
    }

    #[test]
    fn mse_rejected_for_classification_and_vice_versa() {
        let (x, y) = blobs(5);
        let err = ForestBuilder::new(1, TrainOptions::default())
            .criterion(SplitCriterion::Mse)
            .train_classifier(&x, 2, &y, 2)
            .unwrap_err();
        assert!(matches!(err, ForestError::InvalidTrainingData(_)));
        let err = ForestBuilder::new(1, TrainOptions::default())
            .criterion(SplitCriterion::Gini)
            .train_regressor(&[1.0, 2.0], 1, &[0.5, 0.7])
            .unwrap_err();
        assert!(matches!(err, ForestError::InvalidTrainingData(_)));
    }

    #[test]
    fn min_samples_leaf_respected() {
        let (x, y) = blobs(50);
        let forest = ForestBuilder::new(
            3,
            TrainOptions {
                min_samples_leaf: 10,
                bootstrap: false,
                ..Default::default()
            },
        )
        .train_classifier(&x, 2, &y, 2)
        .unwrap();
        // With 100 rows and min leaf 10 trees must stay small.
        for t in forest.trees() {
            assert!(t.n_leaves() <= 10);
        }
    }
}
