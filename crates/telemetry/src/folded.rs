//! Flamegraph "folded stacks" export.
//!
//! Produces the semicolon-delimited text format consumed by
//! `flamegraph.pl` / `inferno`: one line per distinct stack with an
//! integer weight. The synthetic stack for a span is
//! `process;lane;name`, and the weight is the span's duration in whole
//! nanoseconds, so relative frame widths reproduce the simulated time
//! split.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::span::Trace;

/// Renders the trace as folded stacks, one `stack weight` pair per line.
///
/// Equal stacks are merged by summing their weights. Lines are sorted
/// lexicographically, so output is deterministic.
pub fn to_folded(trace: &Trace) -> String {
    let mut stacks: BTreeMap<String, u128> = BTreeMap::new();
    for ev in trace.events() {
        let stack = format!(
            "{};{};{}",
            sanitize(&ev.track.process),
            sanitize(&ev.track.lane),
            sanitize(&ev.name),
        );
        *stacks.entry(stack).or_insert(0) += ev.dur.as_nanos().round() as u128;
    }
    let mut out = String::new();
    for (stack, weight) in stacks {
        let _ = writeln!(out, "{stack} {weight}");
    }
    out
}

/// Folded format delimiters cannot appear inside frame names.
fn sanitize(name: &str) -> String {
    name.replace([';', ' ', '\n'], "_")
}

#[cfg(test)]
mod tests {
    use mlscore_sim::{SimDuration, SimInstant};

    use super::*;
    use crate::span::{Scope, SpanEvent, Track};

    fn ev(process: &str, lane: &str, name: &str, dur_ns: f64) -> SpanEvent {
        SpanEvent {
            name: name.into(),
            stage: None,
            scope: Scope::Detail,
            start: SimInstant::ZERO,
            dur: SimDuration::from_nanos(dur_ns),
            track: Track::new(process, lane),
            metadata: vec![],
            flows_out: vec![],
            flows_in: vec![],
        }
    }

    #[test]
    fn merges_equal_stacks_and_sorts() {
        let trace = Trace::from_events(vec![
            ev("fpga", "pass0", "compute", 100.0),
            ev("fpga", "pass0", "compute", 50.0),
            ev("cpu", "w0", "chunk", 10.0),
        ]);
        let folded = to_folded(&trace);
        assert_eq!(folded, "cpu;w0;chunk 10\nfpga;pass0;compute 150\n");
    }

    #[test]
    fn sanitizes_delimiters() {
        let trace = Trace::from_events(vec![ev("a b", "l;ne", "na me", 1.0)]);
        let folded = to_folded(&trace);
        assert_eq!(folded, "a_b;l_ne;na_me 1\n");
    }
}
