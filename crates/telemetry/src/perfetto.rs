//! Chrome/Perfetto `trace_event` JSON export.
//!
//! Emits the [legacy trace-event format] that both `chrome://tracing` and
//! [ui.perfetto.dev] load directly: a `traceEvents` array of `"X"`
//! (complete) events with microsecond `ts`/`dur`, plus `"M"` metadata
//! events naming processes and threads. The mapping from simulated
//! execution to the track hierarchy:
//!
//! - **process (`pid`)** — one per [`Track::process`], i.e. per backend
//!   ("pipeline", "fpga", "gpu-fil", "cpu-sklearn", ...);
//! - **thread (`tid`)** — one per [`Track::lane`] within its process: the
//!   query lane, each FPGA engine pass, each PCIe stream, each CPU worker.
//!   Spans on different lanes render as parallel rows, which is what makes
//!   FPGA multi-pass overlap and streamed PCIe transfers visible;
//! - **flow events (`ph:"s"` / `ph:"f"`)** — one pair per causal-flow id
//!   on a span ([`SpanEvent::flows_out`] / [`SpanEvent::flows_in`]): the
//!   serving engine links each request's queue-wait span to the device
//!   pass that scored its batch, so the arrow crosses from the class lane
//!   to the device lane. Flow starts bind to the origin span's end, flow
//!   ends (`bp:"e"`, enclosing-slice binding) to the terminus span's start.
//!
//! [legacy trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//! [ui.perfetto.dev]: https://ui.perfetto.dev

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::json::write_escaped;
use crate::span::{SpanEvent, Trace};

/// Serializes a trace to Perfetto-compatible `trace_event` JSON.
///
/// Event order, pid/tid assignment, and metadata are deterministic: ids are
/// dense integers in order of first appearance, and span events appear in
/// recording order.
pub fn to_json(trace: &Trace) -> String {
    let mut pids: BTreeMap<&str, u64> = BTreeMap::new();
    let mut tids: BTreeMap<(&str, &str), u64> = BTreeMap::new();
    // Assign ids by first appearance, not BTreeMap order.
    for ev in trace.events() {
        let process = ev.track.process.as_str();
        let next_pid = pids.len() as u64 + 1;
        pids.entry(process).or_insert(next_pid);
        let next_tid = tids.len() as u64 + 1;
        tids.entry((process, ev.track.lane.as_str()))
            .or_insert(next_tid);
    }

    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;

    // Metadata events: name each process and thread.
    let mut named: Vec<(&&str, &u64)> = pids.iter().collect();
    named.sort_by_key(|(_, pid)| **pid);
    for (process, pid) in named {
        push_sep(&mut out, &mut first);
        out.push_str("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":");
        let _ = write!(out, "{pid}");
        out.push_str(",\"args\":{\"name\":");
        write_escaped(&mut out, process);
        out.push_str("}}");
    }
    let mut lanes: Vec<(&(&str, &str), &u64)> = tids.iter().collect();
    lanes.sort_by_key(|(_, tid)| **tid);
    for ((process, lane), tid) in lanes {
        push_sep(&mut out, &mut first);
        out.push_str("{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":");
        let _ = write!(out, "{}", pids[process]);
        out.push_str(",\"tid\":");
        let _ = write!(out, "{tid}");
        out.push_str(",\"args\":{\"name\":");
        write_escaped(&mut out, lane);
        out.push_str("}}");
    }

    // Span events, each followed by its flow steps so a flow id's "s"
    // precedes its "f" whenever spans were recorded in causal order.
    for ev in trace.events() {
        push_sep(&mut out, &mut first);
        write_span(&mut out, ev, &pids, &tids);
        write_flows(&mut out, ev, &mut first, &pids, &tids);
    }

    out.push_str("]}");
    out
}

fn push_sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push(',');
    }
}

fn write_span(
    out: &mut String,
    ev: &SpanEvent,
    pids: &BTreeMap<&str, u64>,
    tids: &BTreeMap<(&str, &str), u64>,
) {
    let process = ev.track.process.as_str();
    out.push_str("{\"ph\":\"X\",\"name\":");
    write_escaped(out, &ev.name);
    out.push_str(",\"cat\":");
    write_escaped(out, &ev.scope.to_string());
    let _ = write!(
        out,
        ",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{}",
        ev.start.as_micros(),
        ev.dur.as_micros(),
        pids[process],
        tids[&(process, ev.track.lane.as_str())],
    );
    out.push_str(",\"args\":{");
    let mut first_arg = true;
    if let Some(stage) = ev.stage {
        push_sep(out, &mut first_arg);
        out.push_str("\"stage\":");
        write_escaped(out, &stage.to_string());
    }
    for (k, v) in &ev.metadata {
        push_sep(out, &mut first_arg);
        write_escaped(out, k);
        out.push(':');
        write_escaped(out, v);
    }
    out.push_str("}}");
}

/// Emits the flow steps a span carries: `ph:"s"` (flow start, bound to the
/// span's end instant — the moment the request leaves the queue) for each
/// [`SpanEvent::flows_out`] id, and `ph:"f"` with `bp:"e"` (flow end,
/// enclosing-slice binding at the span's start) for each
/// [`SpanEvent::flows_in`] id.
fn write_flows(
    out: &mut String,
    ev: &SpanEvent,
    first: &mut bool,
    pids: &BTreeMap<&str, u64>,
    tids: &BTreeMap<(&str, &str), u64>,
) {
    if ev.flows_out.is_empty() && ev.flows_in.is_empty() {
        return;
    }
    let process = ev.track.process.as_str();
    let pid = pids[process];
    let tid = tids[&(process, ev.track.lane.as_str())];
    for id in &ev.flows_out {
        push_sep(out, first);
        let _ = write!(
            out,
            "{{\"ph\":\"s\",\"cat\":\"flow\",\"name\":\"request\",\"id\":{id},\
             \"ts\":{},\"pid\":{pid},\"tid\":{tid}}}",
            ev.end().as_micros(),
        );
    }
    for id in &ev.flows_in {
        push_sep(out, first);
        let _ = write!(
            out,
            "{{\"ph\":\"f\",\"bp\":\"e\",\"cat\":\"flow\",\"name\":\"request\",\"id\":{id},\
             \"ts\":{},\"pid\":{pid},\"tid\":{tid}}}",
            ev.start.as_micros(),
        );
    }
}

#[cfg(test)]
mod tests {
    use mlscore_sim::{SimDuration, SimInstant, Stage};

    use super::*;
    use crate::json::{parse, JsonValue};
    use crate::span::{Scope, Track};

    fn sample_trace() -> Trace {
        Trace::from_events(vec![
            SpanEvent {
                name: "score".into(),
                stage: Some(Stage::Scoring),
                scope: Scope::Offload,
                start: SimInstant::ZERO,
                dur: SimDuration::from_micros(100.0),
                track: Track::new("fpga", "pass0"),
                metadata: vec![("pass".into(), "0".into())],
                flows_out: vec![],
                flows_in: vec![],
            },
            SpanEvent {
                name: "stream \"weird\"\nname".into(),
                stage: None,
                scope: Scope::Detail,
                start: SimInstant::from_secs(50e-6),
                dur: SimDuration::from_micros(60.0),
                track: Track::new("fpga", "pcie"),
                metadata: vec![],
                flows_out: vec![],
                flows_in: vec![],
            },
        ])
    }

    #[test]
    fn export_parses_and_has_expected_shape() {
        let json = to_json(&sample_trace());
        let doc = parse(&json).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        // 1 process_name + 2 thread_name + 2 spans.
        assert_eq!(events.len(), 5);

        let spans: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .collect();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].get("name").unwrap().as_str(), Some("score"));
        assert_eq!(
            spans[0].get("dur").unwrap().as_f64(),
            Some(SimDuration::from_micros(100.0).as_micros()),
        );
        assert_eq!(
            spans[0].get("args").unwrap().get("stage").unwrap().as_str(),
            Some("scoring"),
        );
        // Same process, different lanes -> same pid, distinct tids.
        assert_eq!(
            spans[0].get("pid").unwrap().as_f64(),
            spans[1].get("pid").unwrap().as_f64(),
        );
        assert_ne!(
            spans[0].get("tid").unwrap().as_f64(),
            spans[1].get("tid").unwrap().as_f64(),
        );
    }

    #[test]
    fn metadata_events_name_processes_and_threads() {
        let json = to_json(&sample_trace());
        let doc = parse(&json).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let metas: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("M"))
            .collect();
        assert_eq!(metas.len(), 3);
        assert_eq!(
            metas[0].get("args").unwrap().get("name").unwrap().as_str(),
            Some("fpga"),
        );
    }

    #[test]
    fn flow_events_link_origin_end_to_terminus_start() {
        // A queue-wait span originating flow 7 on one lane, and a device
        // pass terminating it on another: the exporter must emit an "s"
        // step at the origin's end and an "f" (bp:"e") at the terminus'
        // start, both carrying the same id.
        let mut origin = sample_trace().events()[0].clone();
        origin.flows_out = vec![7];
        let mut terminus = sample_trace().events()[1].clone();
        terminus.flows_in = vec![7];
        let json = to_json(&Trace::from_events(vec![origin.clone(), terminus.clone()]));
        let doc = parse(&json).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();

        let starts: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("s"))
            .collect();
        let ends: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("f"))
            .collect();
        assert_eq!(starts.len(), 1);
        assert_eq!(ends.len(), 1);
        assert_eq!(starts[0].get("id").unwrap().as_f64(), Some(7.0));
        assert_eq!(ends[0].get("id").unwrap().as_f64(), Some(7.0));
        assert_eq!(ends[0].get("bp").unwrap().as_str(), Some("e"));
        assert_eq!(starts[0].get("cat").unwrap().as_str(), Some("flow"));
        // Binding instants: origin end, terminus start.
        assert_eq!(
            starts[0].get("ts").unwrap().as_f64(),
            Some(origin.end().as_micros()),
        );
        assert_eq!(
            ends[0].get("ts").unwrap().as_f64(),
            Some(terminus.start.as_micros()),
        );
        // The arrow crosses lanes: distinct tids, same pid as the spans.
        assert_ne!(
            starts[0].get("tid").unwrap().as_f64(),
            ends[0].get("tid").unwrap().as_f64(),
        );
    }

    #[test]
    fn empty_trace_is_valid_json() {
        let json = to_json(&Trace::new());
        let doc = parse(&json).unwrap();
        assert_eq!(doc.get("traceEvents").unwrap(), &JsonValue::Array(vec![]),);
    }
}
