//! Windowed time-series metrics over simulated time.
//!
//! End-of-run aggregates answer *how much*; they cannot answer *when*. The
//! [`TimeSeriesRecorder`] rotates per-class latency histograms, arrival/
//! completion/shed counters, queue-depth gauges, and per-device busy time
//! over fixed simulated-time windows, so a serving run yields a series —
//! "the queue peaked in window 7, interactive attainment collapsed in
//! window 8" — instead of one number.
//!
//! Windows are half-open `[k·w, (k+1)·w)` intervals indexed by
//! `floor(t / w)`: an event exactly on a window edge belongs to the window
//! it *opens*. Recording is pure accumulation into a `BTreeMap`, so the
//! series is a deterministic function of the recorded event stream, and
//! [`TimeSeriesRecorder::merge`] combines two recorders window by window
//! (commutative on every counter and on histogram bucket counts).

use std::collections::BTreeMap;

use mlscore_sim::{SimDuration, SimInstant};

use crate::metrics::Histogram;

/// Per-class slice of one window.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClassWindow {
    /// Requests of this class completed in the window (by completion time).
    pub completions: u64,
    /// Requests of this class shed in the window (by shed time).
    pub shed: u64,
    /// Completions in the window that violated the class's latency SLO.
    pub violations: u64,
    /// Sojourn latencies of the window's completions.
    pub latency: Histogram,
}

impl ClassWindow {
    /// Fraction of the window's completions that met the latency SLO
    /// (`1.0` for a window with no completions — no budget was burned).
    pub fn attainment(&self) -> f64 {
        if self.completions == 0 {
            1.0
        } else {
            1.0 - self.violations as f64 / self.completions as f64
        }
    }
}

/// One fixed-length window of the series.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Window {
    /// Requests that arrived during the window.
    pub arrivals: u64,
    /// Largest queue depth observed during the window.
    pub queue_depth_peak: u64,
    /// Queue depth at the last observation in the window.
    pub queue_depth_last: u64,
    /// Per-class counters and latency histograms, keyed by class name.
    pub classes: BTreeMap<String, ClassWindow>,
    /// Device busy time overlapping the window, keyed by device name.
    /// A pass spanning several windows is split across them.
    pub busy: BTreeMap<String, SimDuration>,
}

impl Window {
    /// Total completions across classes.
    pub fn completions(&self) -> u64 {
        self.classes.values().map(|c| c.completions).sum()
    }

    /// Total shed requests across classes.
    pub fn shed(&self) -> u64 {
        self.classes.values().map(|c| c.shed).sum()
    }

    fn class_mut(&mut self, class: &str) -> &mut ClassWindow {
        self.classes.entry(class.to_string()).or_default()
    }
}

/// A rotating recorder of fixed-window serving metrics.
///
/// # Example
///
/// ```
/// use mlscore_sim::{SimDuration, SimInstant};
/// use mlscore_telemetry::TimeSeriesRecorder;
///
/// let mut series = TimeSeriesRecorder::new(SimDuration::from_millis(100.0));
/// let t = SimInstant::ZERO + SimDuration::from_millis(250.0);
/// series.record_arrival(t, "interactive");
/// series.record_completion(t, "interactive", SimDuration::from_millis(3.0), false);
/// assert_eq!(series.windows().count(), 1);
/// assert_eq!(series.window_index(t), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeriesRecorder {
    window: SimDuration,
    windows: BTreeMap<u64, Window>,
}

impl TimeSeriesRecorder {
    /// A recorder rotating over windows of length `window`.
    ///
    /// # Panics
    ///
    /// Panics on a zero or negative window length.
    pub fn new(window: SimDuration) -> Self {
        assert!(
            window.as_secs() > 0.0,
            "time-series window length must be positive"
        );
        Self {
            window,
            windows: BTreeMap::new(),
        }
    }

    /// The fixed window length.
    pub fn window_len(&self) -> SimDuration {
        self.window
    }

    /// The window index instant `at` falls into: `floor(t / w)`, so an
    /// instant exactly on an edge opens the new window.
    pub fn window_index(&self, at: SimInstant) -> u64 {
        let idx = (at.as_secs() / self.window.as_secs()).floor();
        if idx <= 0.0 {
            0
        } else {
            idx as u64
        }
    }

    /// When window `index` starts.
    pub fn window_start(&self, index: u64) -> SimInstant {
        SimInstant::ZERO + self.window * index as f64
    }

    /// The recorded windows in index order. Only touched windows exist;
    /// an untouched gap between two indices means nothing happened there.
    pub fn windows(&self) -> impl Iterator<Item = (u64, &Window)> {
        self.windows.iter().map(|(&i, w)| (i, w))
    }

    /// Number of touched windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Returns `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    fn window_mut(&mut self, at: SimInstant) -> &mut Window {
        let idx = self.window_index(at);
        self.windows.entry(idx).or_default()
    }

    /// Records one arrival.
    pub fn record_arrival(&mut self, at: SimInstant, class: &str) {
        let w = self.window_mut(at);
        w.arrivals += 1;
        // Touch the class so a window with arrivals but no completions
        // still reports the class at zero.
        w.class_mut(class);
    }

    /// Records one completion with its sojourn latency; `violated` marks a
    /// latency-SLO miss.
    pub fn record_completion(
        &mut self,
        at: SimInstant,
        class: &str,
        latency: SimDuration,
        violated: bool,
    ) {
        let c = self.window_mut(at).class_mut(class);
        c.completions += 1;
        c.latency.record(latency);
        if violated {
            c.violations += 1;
        }
    }

    /// Records one shed request (rejected, dropped, timed out, or
    /// unservable).
    pub fn record_shed(&mut self, at: SimInstant, class: &str) {
        self.window_mut(at).class_mut(class).shed += 1;
    }

    /// Records a queue-depth observation.
    pub fn record_queue_depth(&mut self, at: SimInstant, depth: u64) {
        let w = self.window_mut(at);
        w.queue_depth_peak = w.queue_depth_peak.max(depth);
        w.queue_depth_last = depth;
    }

    /// Records `dur` of busy time on `device` starting at `start`,
    /// splitting the interval across every window it overlaps.
    pub fn record_busy(&mut self, device: &str, start: SimInstant, dur: SimDuration) {
        if dur.is_zero() {
            return;
        }
        let w = self.window.as_secs();
        let end = (start + dur).as_secs();
        let mut t = start.as_secs().max(0.0);
        while t < end {
            let idx = self.window_index(SimInstant::from_secs(t));
            let window_end = (idx as f64 + 1.0) * w;
            let slice_end = window_end.min(end);
            let slice = if slice_end > t {
                slice_end - t
            } else {
                // Float rounding pinned us to the edge: charge the rest
                // here rather than looping forever.
                end - t
            };
            *self
                .windows
                .entry(idx)
                .or_default()
                .busy
                .entry(device.to_string())
                .or_insert(SimDuration::ZERO) += SimDuration::from_secs(slice);
            if slice_end <= t {
                break;
            }
            t = slice_end;
        }
    }

    /// Peak queue depth across all windows.
    pub fn peak_queue_depth(&self) -> u64 {
        self.windows
            .values()
            .map(|w| w.queue_depth_peak)
            .max()
            .unwrap_or(0)
    }

    /// Merges another recorder's windows into this one, window by window:
    /// counters add, peaks take the max, histograms merge, busy time adds.
    /// `queue_depth_last` keeps the later recorder's value for windows both
    /// touched (`other` wins, matching "merge newer into older").
    ///
    /// # Panics
    ///
    /// Panics if the two recorders use different window lengths — merging
    /// misaligned series is meaningless.
    pub fn merge(&mut self, other: &TimeSeriesRecorder) {
        assert_eq!(
            self.window, other.window,
            "cannot merge series with different window lengths"
        );
        for (&idx, theirs) in &other.windows {
            let ours = self.windows.entry(idx).or_default();
            ours.arrivals += theirs.arrivals;
            ours.queue_depth_peak = ours.queue_depth_peak.max(theirs.queue_depth_peak);
            ours.queue_depth_last = theirs.queue_depth_last;
            for (class, cw) in &theirs.classes {
                let mine = ours.class_mut(class);
                mine.completions += cw.completions;
                mine.shed += cw.shed;
                mine.violations += cw.violations;
                mine.latency.merge(&cw.latency);
            }
            for (device, &busy) in &theirs.busy {
                *ours.busy.entry(device.clone()).or_insert(SimDuration::ZERO) += busy;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: f64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn at_ms(v: f64) -> SimInstant {
        SimInstant::ZERO + ms(v)
    }

    #[test]
    fn events_rotate_into_floor_indexed_windows() {
        let mut s = TimeSeriesRecorder::new(ms(100.0));
        s.record_arrival(at_ms(0.0), "interactive");
        s.record_arrival(at_ms(99.9), "interactive");
        s.record_arrival(at_ms(100.0), "interactive"); // edge: opens window 1
        s.record_arrival(at_ms(250.0), "analytical");
        let windows: Vec<(u64, u64)> = s.windows().map(|(i, w)| (i, w.arrivals)).collect();
        assert_eq!(windows, vec![(0, 2), (1, 1), (2, 1)]);
        assert_eq!(s.window_index(at_ms(100.0)), 1);
        assert_eq!(s.window_start(2), at_ms(200.0));
    }

    #[test]
    fn completions_shed_and_violations_accumulate_per_class() {
        let mut s = TimeSeriesRecorder::new(ms(100.0));
        s.record_completion(at_ms(10.0), "interactive", ms(5.0), false);
        s.record_completion(at_ms(20.0), "interactive", ms(50.0), true);
        s.record_shed(at_ms(30.0), "analytical");
        let (_, w) = s.windows().next().expect("one window");
        assert_eq!(w.completions(), 2);
        assert_eq!(w.shed(), 1);
        let c = w.classes.get("interactive").expect("class");
        assert_eq!(c.violations, 1);
        assert_eq!(c.latency.count(), 2);
        assert_eq!(c.attainment(), 0.5);
        assert_eq!(ClassWindow::default().attainment(), 1.0);
    }

    #[test]
    fn queue_depth_tracks_peak_and_last() {
        let mut s = TimeSeriesRecorder::new(ms(100.0));
        s.record_queue_depth(at_ms(1.0), 3);
        s.record_queue_depth(at_ms(2.0), 9);
        s.record_queue_depth(at_ms(3.0), 4);
        let (_, w) = s.windows().next().expect("one window");
        assert_eq!(w.queue_depth_peak, 9);
        assert_eq!(w.queue_depth_last, 4);
        assert_eq!(s.peak_queue_depth(), 9);
    }

    #[test]
    fn busy_time_splits_across_windows_exactly() {
        let mut s = TimeSeriesRecorder::new(ms(100.0));
        // 250 ms pass starting at 50 ms: 50 in w0, 100 in w1, 100 in w2.
        s.record_busy("FPGA", at_ms(50.0), ms(250.0));
        let shares: Vec<(u64, f64)> = s
            .windows()
            .map(|(i, w)| {
                (
                    i,
                    w.busy
                        .get("FPGA")
                        .copied()
                        .unwrap_or(SimDuration::ZERO)
                        .as_millis(),
                )
            })
            .collect();
        assert_eq!(shares.len(), 3);
        let total: f64 = shares.iter().map(|(_, v)| v).sum();
        assert!((total - 250.0).abs() < 1e-9, "total {total}");
        assert!((shares[0].1 - 50.0).abs() < 1e-9);
        assert!((shares[1].1 - 100.0).abs() < 1e-9);
    }

    #[test]
    fn merge_is_commutative_on_counters() {
        let mut a = TimeSeriesRecorder::new(ms(100.0));
        a.record_arrival(at_ms(10.0), "interactive");
        a.record_completion(at_ms(10.0), "interactive", ms(1.0), false);
        a.record_queue_depth(at_ms(10.0), 5);
        let mut b = TimeSeriesRecorder::new(ms(100.0));
        b.record_arrival(at_ms(110.0), "analytical");
        b.record_shed(at_ms(110.0), "analytical");
        b.record_queue_depth(at_ms(15.0), 2);
        b.record_busy("GPU", at_ms(10.0), ms(5.0));

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.len(), 2);
        for ((ia, wa), (ib, wb)) in ab.windows().zip(ba.windows()) {
            assert_eq!(ia, ib);
            assert_eq!(wa.arrivals, wb.arrivals);
            assert_eq!(wa.queue_depth_peak, wb.queue_depth_peak);
            assert_eq!(wa.classes, wb.classes);
            assert_eq!(wa.busy, wb.busy);
        }
    }

    #[test]
    #[should_panic(expected = "different window lengths")]
    fn merging_misaligned_series_panics() {
        let mut a = TimeSeriesRecorder::new(ms(100.0));
        a.merge(&TimeSeriesRecorder::new(ms(50.0)));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_window_panics() {
        let _ = TimeSeriesRecorder::new(SimDuration::ZERO);
    }
}
