//! The [`Tracer`] handle and [`SpanGuard`] builder.

use std::sync::Arc;

use mlscore_sim::{SimDuration, SimInstant, Stage};
use parking_lot::Mutex;

use crate::span::{Scope, SpanEvent, Trace, Track};

/// Shared buffer the tracer appends completed spans to.
#[derive(Debug, Default)]
struct TraceSink {
    events: Mutex<Vec<SpanEvent>>,
}

/// A cloneable handle that records spans into a shared trace buffer.
///
/// Cost models take a `&Tracer` and open spans as they account simulated
/// time. A disabled tracer ([`Tracer::disabled`]) records nothing and makes
/// every span operation a no-op, so un-instrumented call paths (`estimate`
/// without tracing) pay only an `Option` check.
///
/// Clones share the same buffer; the tracer is `Send + Sync`, so parallel
/// CPU scoring workers can record detail spans concurrently.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    sink: Option<Arc<TraceSink>>,
}

impl Tracer {
    /// A tracer that records into a fresh buffer.
    pub fn new() -> Self {
        Tracer {
            sink: Some(Arc::new(TraceSink::default())),
        }
    }

    /// A tracer that records nothing; all span operations are no-ops.
    pub fn disabled() -> Self {
        Tracer { sink: None }
    }

    /// Returns `true` if spans are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Opens a span starting at `start`; finish it with
    /// [`SpanGuard::finish`] or [`SpanGuard::finish_after`] to record it.
    pub fn span(&self, name: impl Into<String>, start: SimInstant) -> SpanGuard<'_> {
        SpanGuard {
            tracer: self,
            start,
            event: self.sink.as_ref().map(|_| SpanEvent {
                name: name.into(),
                stage: None,
                scope: Scope::Detail,
                start,
                dur: SimDuration::ZERO,
                track: Track::default(),
                metadata: Vec::new(),
                flows_out: Vec::new(),
                flows_in: Vec::new(),
            }),
        }
    }

    /// Takes the recorded spans, leaving the buffer empty.
    pub fn take(&self) -> Trace {
        match &self.sink {
            Some(sink) => Trace::from_events(std::mem::take(&mut sink.events.lock())),
            None => Trace::new(),
        }
    }

    /// A snapshot of the recorded spans, leaving the buffer intact.
    pub fn snapshot(&self) -> Trace {
        match &self.sink {
            Some(sink) => Trace::from_events(sink.events.lock().clone()),
            None => Trace::new(),
        }
    }

    fn record(&self, event: SpanEvent) {
        if let Some(sink) = &self.sink {
            sink.events.lock().push(event);
        }
    }
}

/// An in-flight span: a builder for one [`SpanEvent`].
///
/// Configure it with the chaining methods, then call [`finish`]
/// (explicit end instant) or [`finish_after`] (duration relative to the
/// start). A guard from a disabled tracer skips all work. Dropping a guard
/// without finishing discards the span — spans in simulated time have no
/// meaningful implicit end, so nothing sensible could be recorded.
///
/// [`finish`]: SpanGuard::finish
/// [`finish_after`]: SpanGuard::finish_after
#[must_use = "a span records nothing until finish()/finish_after() is called"]
#[derive(Debug)]
pub struct SpanGuard<'a> {
    tracer: &'a Tracer,
    start: SimInstant,
    event: Option<SpanEvent>,
}

impl SpanGuard<'_> {
    /// Attributes the span's time to a pipeline/offload stage.
    pub fn stage(mut self, stage: Stage) -> Self {
        if let Some(ev) = &mut self.event {
            ev.stage = Some(stage);
        }
        self
    }

    /// Sets the accounting scope (default: [`Scope::Detail`]).
    pub fn scope(mut self, scope: Scope) -> Self {
        if let Some(ev) = &mut self.event {
            ev.scope = scope;
        }
        self
    }

    /// Places the span on a timeline row.
    pub fn track(mut self, process: &str, lane: impl Into<String>) -> Self {
        if let Some(ev) = &mut self.event {
            ev.track = Track::new(process, lane);
        }
        self
    }

    /// Attaches a key/value annotation.
    pub fn meta(mut self, key: &str, value: impl Into<String>) -> Self {
        if let Some(ev) = &mut self.event {
            ev.metadata.push((key.to_string(), value.into()));
        }
        self
    }

    /// Marks this span as the *origin* of causal flow `id` (the exporter
    /// emits a Perfetto flow-start step bound to the span's end).
    pub fn flow_out(mut self, id: u64) -> Self {
        if let Some(ev) = &mut self.event {
            ev.flows_out.push(id);
        }
        self
    }

    /// Marks this span as the *terminus* of causal flow `id` (the exporter
    /// emits a Perfetto flow-end step bound to the span's start).
    pub fn flow_in(mut self, id: u64) -> Self {
        if let Some(ev) = &mut self.event {
            ev.flows_in.push(id);
        }
        self
    }

    /// Records the span as ending at `end`, returning `end` so callers can
    /// thread the simulated clock through consecutive spans.
    pub fn finish(mut self, end: SimInstant) -> SimInstant {
        if let Some(mut ev) = self.event.take() {
            ev.dur = end - ev.start;
            self.tracer.record(ev);
        }
        end
    }

    /// Records the span with an explicit duration (preserved bit-exactly —
    /// preferred whenever the cost model computed the duration directly),
    /// returning the resulting end instant.
    pub fn finish_after(mut self, dur: SimDuration) -> SimInstant {
        if let Some(mut ev) = self.event.take() {
            ev.dur = dur;
            self.tracer.record(ev);
        }
        // Advance the caller's clock whether or not tracing is enabled.
        self.start + dur
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_spans_in_order() {
        let tracer = Tracer::new();
        let t0 = SimInstant::ZERO;
        let t1 = tracer
            .span("setup", t0)
            .stage(Stage::AcceleratorSetup)
            .scope(Scope::Offload)
            .track("fpga", "query")
            .meta("backend", "fpga")
            .finish_after(SimDuration::from_micros(3.0));
        tracer
            .span("score", t1)
            .stage(Stage::Scoring)
            .scope(Scope::Offload)
            .finish(t1 + SimDuration::from_millis(1.0));

        let trace = tracer.take();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.events()[0].name, "setup");
        assert_eq!(trace.events()[0].metadata[0].1, "fpga");
        assert_eq!(trace.events()[1].start, t1);
        assert_eq!(trace.events()[1].dur, SimDuration::from_millis(1.0));
        // take() drained the buffer.
        assert!(tracer.take().is_empty());
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::disabled();
        assert!(!tracer.is_enabled());
        tracer
            .span("ghost", SimInstant::ZERO)
            .stage(Stage::Scoring)
            .finish(SimInstant::from_secs(1.0));
        // The clock still advances correctly through a disabled span.
        let t0 = SimInstant::from_secs(2.0);
        let t1 = tracer
            .span("ghost2", t0)
            .finish_after(SimDuration::from_secs(0.5));
        assert_eq!(t1, SimInstant::from_secs(2.5));
        assert!(tracer.take().is_empty());
        assert!(tracer.snapshot().is_empty());
    }

    #[test]
    fn clones_share_the_buffer() {
        let tracer = Tracer::new();
        let clone = tracer.clone();
        clone
            .span("from-clone", SimInstant::ZERO)
            .finish_after(SimDuration::from_nanos(1.0));
        assert_eq!(tracer.snapshot().len(), 1);
    }

    #[test]
    fn dropping_an_unfinished_span_discards_it() {
        let tracer = Tracer::new();
        {
            let _g = tracer.span("abandoned", SimInstant::ZERO);
        }
        assert!(tracer.take().is_empty());
    }

    #[test]
    fn finish_returns_end_for_clock_threading() {
        let tracer = Tracer::new();
        let t0 = SimInstant::from_secs(1.0);
        let t1 = tracer
            .span("a", t0)
            .finish_after(SimDuration::from_secs(0.5));
        assert_eq!(t1, SimInstant::from_secs(1.5));
        let t2 = tracer
            .span("b", t1)
            .finish(t1 + SimDuration::from_secs(0.25));
        assert_eq!(t2, SimInstant::from_secs(1.75));
    }
}
