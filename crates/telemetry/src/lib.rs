//! Observability for the `mlscore` scoring pipeline: span tracing over
//! simulated time, a metrics registry, and trace exporters.
//!
//! Every cost model in the workspace reports *where simulated time goes*
//! through a [`TimingBreakdown`](mlscore_sim::TimingBreakdown). That is a
//! lossy summary: it says the FPGA spent 4 ms streaming, but not that the
//! stream of pass 2 overlapped the compute of pass 1. This crate adds the
//! lossless view — a [`Trace`] of timestamped spans recorded by a
//! [`Tracer`] as the models run — plus exporters that turn a trace into:
//!
//! - a Chrome/Perfetto `trace_event` JSON file ([`perfetto`]), where each
//!   backend is a process and each query/engine-pass is a thread, so
//!   multi-pass overlap is visible on a timeline;
//! - flamegraph "folded" text ([`folded`]);
//! - a reconstructed `TimingBreakdown` ([`Trace::breakdown`]) that is
//!   **bit-for-bit equal** to the directly computed one (see [`ExactSplit`]
//!   for the arithmetic discipline that makes this exact, not approximate).
//!
//! The [`MetricsRegistry`] complements spans with named counters, gauges,
//! and log-bucketed latency histograms (p50/p95/p99/max).
//!
//! # Example
//!
//! ```
//! use mlscore_sim::{SimDuration, SimInstant, Stage};
//! use mlscore_telemetry::{Scope, Tracer};
//!
//! let tracer = Tracer::new();
//! let t0 = SimInstant::ZERO;
//! let t1 = tracer
//!     .span("scoring", t0)
//!     .stage(Stage::Scoring)
//!     .scope(Scope::Query)
//!     .finish_after(SimDuration::from_millis(4.0));
//! assert!(t1 > t0);
//! let trace = tracer.take();
//! assert_eq!(trace.len(), 1);
//! assert_eq!(
//!     trace.breakdown(Scope::Query).get(Stage::Scoring),
//!     SimDuration::from_millis(4.0),
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod folded;
pub mod json;
pub mod metrics;
pub mod perfetto;
pub mod span;
pub mod timeseries;
pub mod tracer;

pub use metrics::{Histogram, HistogramSnapshot, MetricsRegistry};
pub use span::{ExactSplit, Scope, SpanEvent, Trace, Track};
pub use timeseries::{ClassWindow, TimeSeriesRecorder, Window};
pub use tracer::{SpanGuard, Tracer};
