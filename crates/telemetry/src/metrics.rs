//! Named counters, gauges, and log-bucketed latency histograms.

use std::collections::BTreeMap;
use std::fmt;

use mlscore_sim::SimDuration;
use parking_lot::Mutex;

/// Number of logarithmic buckets; base-2 from 1 ns covers 1 ns to ~2.3 h.
const BUCKETS: usize = 64;

/// Lower bound of bucket 0, in seconds (1 ns).
const MIN_BUCKET_SECS: f64 = 1e-9;

/// A log-bucketed histogram of [`SimDuration`] samples.
///
/// Buckets double in width starting at 1 ns, so quantile estimates carry at
/// most one octave of error, while `min`/`max`/`sum`/`count` are exact.
/// Quantiles are clamped to the observed `[min, max]` range and are
/// monotone in the requested rank, so `p50 <= p95 <= p99 <= max` always
/// holds.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: SimDuration,
    min: SimDuration,
    max: SimDuration,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: SimDuration::ZERO,
            min: SimDuration::ZERO,
            max: SimDuration::ZERO,
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_index(d: SimDuration) -> usize {
        let secs = d.as_secs();
        if secs <= MIN_BUCKET_SECS {
            return 0;
        }
        let idx = (secs / MIN_BUCKET_SECS).log2().floor() as usize;
        idx.min(BUCKETS - 1)
    }

    /// Upper bound of bucket `i`, in seconds.
    fn bucket_upper(i: usize) -> f64 {
        MIN_BUCKET_SECS * 2f64.powi(i as i32 + 1)
    }

    /// Records one sample.
    pub fn record(&mut self, d: SimDuration) {
        if self.count == 0 {
            self.min = d;
            self.max = d;
        } else {
            self.min = self.min.min(d);
            self.max = self.max.max(d);
        }
        self.count += 1;
        self.sum += d;
        self.counts[Self::bucket_index(d)] += 1;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> SimDuration {
        self.sum
    }

    /// Exact smallest sample (zero if empty).
    pub fn min(&self) -> SimDuration {
        self.min
    }

    /// Exact largest sample (zero if empty).
    pub fn max(&self) -> SimDuration {
        self.max
    }

    /// Mean sample value (zero if empty).
    pub fn mean(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            self.sum / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0..=1.0`) estimated from bucket boundaries and
    /// clamped to the exact observed range.
    ///
    /// # Panics
    ///
    /// Panics on an empty histogram ("empty outcome"), matching the
    /// contract of the scheduler's percentile reporting.
    pub fn quantile(&self, q: f64) -> SimDuration {
        assert!(self.count > 0, "quantile of empty outcome");
        debug_assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        // Nearest-rank: the smallest bucket whose cumulative count reaches
        // ceil(q * count), then clamp into the exact observed range.
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                let est = SimDuration::from_secs(Self::bucket_upper(i));
                return est.max(self.min).min(self.max);
            }
        }
        self.max
    }

    /// The `p`-th percentile (`0..=100`); see [`Histogram::quantile`].
    pub fn percentile(&self, p: u8) -> SimDuration {
        self.quantile(f64::from(p) / 100.0)
    }

    /// Merges another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            return write!(f, "(no samples)");
        }
        write!(
            f,
            "n={} mean={} p50={} p95={} p99={} max={}",
            self.count,
            self.mean(),
            self.percentile(50),
            self.percentile(95),
            self.percentile(99),
            self.max(),
        )
    }
}

/// A read-only copy of one histogram plus its name.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Registry key the histogram was recorded under.
    pub name: String,
    /// The histogram state at snapshot time.
    pub histogram: Histogram,
}

/// A thread-safe registry of named counters, gauges, and histograms.
///
/// Keys are free-form dotted paths (`"sched.queries"`,
/// `"fpga.passes"`). Reads return copies, so a snapshot is stable while
/// recording continues.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, f64>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `by` to the named counter (creating it at zero).
    pub fn inc_counter(&self, name: &str, by: u64) {
        *self.counters.lock().entry(name.to_string()).or_insert(0) += by;
    }

    /// Current value of a counter (zero if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.lock().get(name).copied().unwrap_or(0)
    }

    /// Sets the named gauge to `value`.
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.gauges.lock().insert(name.to_string(), value);
    }

    /// Current value of a gauge, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.lock().get(name).copied()
    }

    /// Records a sample into the named histogram (creating it if new).
    pub fn record(&self, name: &str, d: SimDuration) {
        self.histograms
            .lock()
            .entry(name.to_string())
            .or_default()
            .record(d);
    }

    /// A copy of the named histogram, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.histograms.lock().get(name).cloned()
    }

    /// Copies of all histograms, sorted by name.
    pub fn histograms(&self) -> Vec<HistogramSnapshot> {
        self.histograms
            .lock()
            .iter()
            .map(|(name, h)| HistogramSnapshot {
                name: name.clone(),
                histogram: h.clone(),
            })
            .collect()
    }

    /// Renders every metric as aligned text, one per line.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (name, v) in self.counters.lock().iter() {
            writeln!(out, "counter   {name:<32} {v}").unwrap();
        }
        for (name, v) in self.gauges.lock().iter() {
            writeln!(out, "gauge     {name:<32} {v}").unwrap();
        }
        for (name, h) in self.histograms.lock().iter() {
            writeln!(out, "histogram {name:<32} {h}").unwrap();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: f64) -> SimDuration {
        SimDuration::from_micros(v)
    }

    #[test]
    fn exact_aggregates() {
        let mut h = Histogram::new();
        for v in [10.0, 20.0, 30.0, 40.0] {
            h.record(us(v));
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), us(10.0));
        assert_eq!(h.max(), us(40.0));
        assert_eq!(h.mean(), us(25.0));
        assert_eq!(h.sum(), us(100.0));
    }

    #[test]
    fn quantiles_are_monotone_and_clamped() {
        let mut h = Histogram::new();
        for i in 1..=1000 {
            h.record(us(i as f64));
        }
        let p50 = h.percentile(50);
        let p95 = h.percentile(95);
        let p99 = h.percentile(99);
        assert!(p50 <= p95 && p95 <= p99 && p99 <= h.max());
        assert!(h.percentile(0) >= h.min());
        assert_eq!(h.percentile(100), h.max());
        // One-octave bucket error bound around the true medians.
        assert!(p50 >= us(250.0) && p50 <= us(1024.0), "p50={p50}");
    }

    #[test]
    #[should_panic(expected = "empty outcome")]
    fn quantile_of_empty_panics() {
        Histogram::new().percentile(50);
    }

    #[test]
    fn single_sample_is_every_quantile() {
        let mut h = Histogram::new();
        h.record(us(42.0));
        for p in [0, 1, 50, 99, 100] {
            assert_eq!(h.percentile(p), us(42.0));
        }
    }

    #[test]
    fn merge_combines_ranges() {
        let mut a = Histogram::new();
        a.record(us(1.0));
        let mut b = Histogram::new();
        b.record(us(100.0));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), us(1.0));
        assert_eq!(a.max(), us(100.0));
        let mut empty = Histogram::new();
        empty.merge(&a);
        assert_eq!(empty, a);
    }

    #[test]
    fn registry_counters_gauges_histograms() {
        let m = MetricsRegistry::new();
        m.inc_counter("sched.queries", 2);
        m.inc_counter("sched.queries", 3);
        assert_eq!(m.counter("sched.queries"), 5);
        assert_eq!(m.counter("missing"), 0);

        m.set_gauge("fpga.util", 0.75);
        assert_eq!(m.gauge("fpga.util"), Some(0.75));
        assert_eq!(m.gauge("missing"), None);

        m.record("latency", us(5.0));
        m.record("latency", us(15.0));
        let h = m.histogram("latency").unwrap();
        assert_eq!(h.count(), 2);
        assert!(m.histogram("missing").is_none());

        let all = m.histograms();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].name, "latency");

        let text = m.render();
        assert!(text.contains("sched.queries"));
        assert!(text.contains("fpga.util"));
        assert!(text.contains("latency"));
    }
}
