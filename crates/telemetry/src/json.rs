//! A minimal JSON value model, writer escaping, and recursive-descent
//! parser.
//!
//! The workspace vendors no JSON crate, so the Perfetto exporter writes
//! JSON by hand and this module provides the small amount of shared
//! machinery: string escaping for the writer, and a parser used by tests
//! (and the `repro` CLI) to validate that exported traces are well-formed.
//! It handles the full JSON grammar except exotic number formats beyond
//! `f64`.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Number(f64),
    /// A string (unescaped).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; key order is not preserved.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The value at `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The number if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string contents if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }
}

/// A parse failure with byte offset context.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input where it went wrong.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Appends `s` to `out` as a JSON string literal (with quotes).
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a [`JsonError`] on malformed input or trailing garbage.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are not paired up; traces we write
                            // never contain them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": true}, "e": null}"#;
        let v = parse(doc).unwrap();
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("e"), Some(&JsonValue::Null));
    }

    #[test]
    fn escape_roundtrips_through_parser() {
        let nasty = "quote\" slash\\ newline\n tab\t control\u{1} unicode µ";
        let mut doc = String::new();
        write_escaped(&mut doc, nasty);
        let v = parse(&doc).unwrap();
        assert_eq!(v.as_str(), Some(nasty));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,", "\"open", "{\"a\" 1}", "12 34", "nul"] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("[]").unwrap(), JsonValue::Array(vec![]));
        assert_eq!(parse("{}").unwrap(), JsonValue::Object(BTreeMap::new()));
    }
}
