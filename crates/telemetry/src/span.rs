//! Span events, traces, and the exact-split arithmetic helper.

use std::fmt;

use mlscore_sim::{SimDuration, SimInstant, Stage, TimingBreakdown};

/// Which accounting level a span belongs to.
///
/// Spans at different scopes intentionally overlap in time (a backend's
/// offload spans nest inside the pipeline's `Scoring` span), so exporters
/// and [`Trace::breakdown`] must never sum across scopes — that would
/// double-count. The taxonomy:
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scope {
    /// Stages of the end-to-end query pipeline (Fig. 11): summing the
    /// `Query` spans of a trace reproduces the pipeline's breakdown.
    Query,
    /// Stages of a backend's offload cost model (Fig. 6/7): summing the
    /// `Offload` spans reproduces the backend's scoring breakdown.
    Offload,
    /// One-time model compilation (deserialize + lower) charged on a cold
    /// artifact-cache miss. Measured wall-clock, not simulated — kept out of
    /// the `Query` fold so warm/cold query breakdowns stay comparable.
    Compile,
    /// Purely visual detail — per-pass engine activity, overlapped PCIe
    /// streaming, per-chunk CPU workers. Never summed into a breakdown.
    Detail,
}

impl fmt::Display for Scope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Scope::Query => "query",
            Scope::Offload => "offload",
            Scope::Compile => "compile",
            Scope::Detail => "detail",
        })
    }
}

/// The timeline row a span is drawn on.
///
/// Maps onto Perfetto's process/thread hierarchy: `process` becomes a
/// `pid` (one per backend — "pipeline", "fpga", "gpu-fil", ...) and `lane`
/// a `tid` within it (one per query, engine pass, or worker), so spans on
/// different lanes render as parallel tracks and overlap is visible.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Track {
    /// Process-level grouping (one per backend or pipeline).
    pub process: String,
    /// Thread-level row within the process.
    pub lane: String,
}

impl Track {
    /// Creates a track from process and lane names.
    pub fn new(process: impl Into<String>, lane: impl Into<String>) -> Self {
        Track {
            process: process.into(),
            lane: lane.into(),
        }
    }
}

impl Default for Track {
    fn default() -> Self {
        Track::new("mlscore", "main")
    }
}

/// One completed span on the simulated timeline.
///
/// Stores `start + dur` (not `start + end`) so stage durations survive
/// export/reconstruction bit-exactly; the end instant is derived.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Human-readable span name (e.g. `"fpga/pass2/stream"`).
    pub name: String,
    /// The pipeline/offload stage this span's time is attributed to, if any.
    pub stage: Option<Stage>,
    /// Accounting level; see [`Scope`].
    pub scope: Scope,
    /// When the span started.
    pub start: SimInstant,
    /// How long it lasted.
    pub dur: SimDuration,
    /// Timeline row.
    pub track: Track,
    /// Free-form key/value annotations (backend name, pass index, policy...).
    pub metadata: Vec<(String, String)>,
    /// Causal-flow ids this span *originates* (Perfetto `ph:"s"` steps):
    /// e.g. a request's queue-wait span starts flow `request.id`.
    pub flows_out: Vec<u64>,
    /// Causal-flow ids this span *terminates* (Perfetto `ph:"f"` steps):
    /// e.g. a device-pass span ends the flow of every request it scored.
    pub flows_in: Vec<u64>,
}

impl SpanEvent {
    /// The instant the span ended.
    pub fn end(&self) -> SimInstant {
        self.start + self.dur
    }
}

/// An ordered collection of completed spans.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    events: Vec<SpanEvent>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps a recorded event list.
    pub fn from_events(events: Vec<SpanEvent>) -> Self {
        Trace { events }
    }

    /// The recorded spans, in recording order.
    pub fn events(&self) -> &[SpanEvent] {
        &self.events
    }

    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Appends another trace's events after this one's.
    pub fn extend(&mut self, other: Trace) {
        self.events.extend(other.events);
    }

    /// The latest end instant across all spans (epoch for an empty trace).
    pub fn end(&self) -> SimInstant {
        self.events
            .iter()
            .map(SpanEvent::end)
            .max()
            .unwrap_or(SimInstant::ZERO)
    }

    /// Reconstructs the [`TimingBreakdown`] for one accounting scope by
    /// folding staged spans in recording order.
    ///
    /// Because instrumented cost models emit their staged spans in the same
    /// order as their direct `TimingBreakdown::add` calls, and split
    /// multi-span stages with [`ExactSplit`], the reconstruction is equal —
    /// not approximately, but `==` on the `f64` sums — to the breakdown the
    /// model computes directly. The integration tests assert this.
    pub fn breakdown(&self, scope: Scope) -> TimingBreakdown {
        let mut b = TimingBreakdown::new();
        for ev in &self.events {
            if ev.scope == scope {
                if let Some(stage) = ev.stage {
                    b.add(stage, ev.dur);
                }
            }
        }
        b
    }

    /// Distinct processes in first-appearance order.
    pub fn processes(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for ev in &self.events {
            if !out.contains(&ev.track.process.as_str()) {
                out.push(&ev.track.process);
            }
        }
        out
    }
}

/// Splits a stage total across `k` spans such that re-accumulating the
/// parts left-to-right recovers the total **bit-exactly**.
///
/// The first `k - 1` parts are `total / k`; the last part is
/// `total - (sum of the first k - 1)`, where the sum is tracked with the
/// same left-to-right fold that [`TimingBreakdown::add`] performs. Since
/// the running sum `a` of the first `k - 1` parts lies in `[total / 2,
/// total]`, Sterbenz's lemma makes `total - a` exact, and therefore
/// `a + (total - a)` rounds to exactly `total`.
///
/// # Example
///
/// ```
/// use mlscore_sim::SimDuration;
/// use mlscore_telemetry::ExactSplit;
///
/// let total = SimDuration::from_nanos(10.0) / 3.0; // not representable nicely
/// let parts: Vec<_> = ExactSplit::new(total, 7).collect();
/// assert_eq!(parts.len(), 7);
/// let refold: SimDuration = parts.into_iter().sum();
/// assert_eq!(refold, total); // bit-exact
/// ```
#[derive(Debug, Clone)]
pub struct ExactSplit {
    total: SimDuration,
    part: SimDuration,
    acc: SimDuration,
    emitted: usize,
    k: usize,
}

impl ExactSplit {
    /// Splits `total` into `k` parts.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn new(total: SimDuration, k: usize) -> Self {
        assert!(k > 0, "cannot split a duration into 0 parts");
        ExactSplit {
            total,
            part: total / k as f64,
            acc: SimDuration::ZERO,
            emitted: 0,
            k,
        }
    }
}

impl Iterator for ExactSplit {
    type Item = SimDuration;

    fn next(&mut self) -> Option<SimDuration> {
        if self.emitted >= self.k {
            return None;
        }
        self.emitted += 1;
        if self.emitted < self.k {
            self.acc += self.part;
            Some(self.part)
        } else {
            // Exact by Sterbenz: acc is within [total/2, total].
            Some(self.total - self.acc)
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.k - self.emitted;
        (left, Some(left))
    }
}

impl ExactSizeIterator for ExactSplit {}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str, scope: Scope, stage: Option<Stage>, start_us: f64, dur_us: f64) -> SpanEvent {
        SpanEvent {
            name: name.into(),
            stage,
            scope,
            start: SimInstant::from_secs(start_us * 1e-6),
            dur: SimDuration::from_micros(dur_us),
            track: Track::default(),
            metadata: vec![],
            flows_out: vec![],
            flows_in: vec![],
        }
    }

    #[test]
    fn breakdown_folds_only_matching_scope() {
        let trace = Trace::from_events(vec![
            ev("a", Scope::Query, Some(Stage::Scoring), 0.0, 10.0),
            ev("b", Scope::Offload, Some(Stage::Scoring), 0.0, 7.0),
            ev("c", Scope::Detail, None, 0.0, 99.0),
            ev("d", Scope::Query, Some(Stage::Scoring), 10.0, 5.0),
        ]);
        let q = trace.breakdown(Scope::Query);
        assert_eq!(q.get(Stage::Scoring), SimDuration::from_micros(15.0));
        let o = trace.breakdown(Scope::Offload);
        assert_eq!(o.get(Stage::Scoring), SimDuration::from_micros(7.0));
    }

    #[test]
    fn trace_end_is_latest_span_end() {
        let trace = Trace::from_events(vec![
            ev("a", Scope::Detail, None, 0.0, 100.0),
            ev("b", Scope::Detail, None, 50.0, 10.0),
        ]);
        assert_eq!(
            trace.end(),
            SimInstant::ZERO + SimDuration::from_micros(100.0)
        );
        assert_eq!(Trace::new().end(), SimInstant::ZERO);
    }

    #[test]
    fn processes_in_first_appearance_order() {
        let mut a = ev("a", Scope::Detail, None, 0.0, 1.0);
        a.track = Track::new("fpga", "pass0");
        let mut b = ev("b", Scope::Detail, None, 0.0, 1.0);
        b.track = Track::new("pipeline", "query");
        let mut c = ev("c", Scope::Detail, None, 1.0, 1.0);
        c.track = Track::new("fpga", "pass1");
        let trace = Trace::from_events(vec![a, b, c]);
        assert_eq!(trace.processes(), vec!["fpga", "pipeline"]);
    }

    #[test]
    fn exact_split_refolds_bit_exactly() {
        // Awkward totals that do not divide evenly in binary.
        for (raw, k) in [
            (1.0 / 3.0, 2),
            (0.1, 3),
            (6.9e-4, 7),
            (1.234_567_89e-2, 13),
            (4e-9, 128),
        ] {
            let total = SimDuration::from_secs(raw);
            let refold: SimDuration = ExactSplit::new(total, k).sum();
            assert_eq!(refold, total, "k={k} raw={raw}");
            assert_eq!(ExactSplit::new(total, k).count(), k);
        }
    }

    #[test]
    fn exact_split_of_one_is_identity() {
        let total = SimDuration::from_micros(123.456);
        let parts: Vec<_> = ExactSplit::new(total, 1).collect();
        assert_eq!(parts, vec![total]);
    }

    #[test]
    #[should_panic(expected = "0 parts")]
    fn exact_split_zero_parts_panics() {
        let _ = ExactSplit::new(SimDuration::ZERO, 0);
    }
}
