//! Serving-engine benchmark (`repro serve`).
//!
//! Sweeps offered load through [`mlscore_serve::ServeEngine`] — the same
//! Poisson workload at each rate, once with micro-batch coalescing on and
//! once with it off — and writes the throughput–latency curves to
//! `BENCH_serving.json`. A second experiment pins the roster to the FPGA
//! alone and overloads it, demonstrating the headline effect: merging
//! queued same-model requests into one device pass amortizes the
//! accelerator's fixed per-call overheads, so coalescing raises FPGA
//! throughput at the same offered load.
//!
//! Everything here runs in *simulated* time, so the report is a pure
//! function of `(seed, configuration)`: the same invocation produces a
//! byte-identical file on any host. The emitted JSON is round-tripped
//! through [`mlscore_telemetry::json::parse`] before it is handed back.

use mlscore_backend::ScoringBackend;
use mlscore_sched::paper_backends;
use mlscore_serve::{
    ArrivalProcess, ClassSlo, CoalesceConfig, ModelCatalog, QueryClass, QueueConfig, ServeConfig,
    ServeEngine, ServingReport, WorkloadSpec,
};
use mlscore_sim::SimDuration;
use mlscore_telemetry::json::{self, write_escaped, JsonValue};
use mlscore_telemetry::Tracer;

/// Workload seed shared by every experiment in the report.
pub const SEED: u64 = 42;

/// Executor seats the serving CPU device models (the paper host's 52
/// hardware threads) — pinned so the report does not depend on the
/// machine that generated it.
pub const CPU_SEATS: usize = 52;

/// Concurrent streams on the serving GPU device.
pub const GPU_STREAMS: usize = 4;

/// Options for one harness run.
#[derive(Debug, Clone, Copy)]
pub struct ServeBenchOptions {
    /// Shrink query counts to a CI smoke run.
    pub quick: bool,
}

impl ServeBenchOptions {
    /// Queries per sweep point.
    fn sweep_queries(&self) -> usize {
        if self.quick {
            150
        } else {
            600
        }
    }

    /// Queries in the FPGA overload experiment.
    fn overload_queries(&self) -> usize {
        if self.quick {
            150
        } else {
            500
        }
    }

    /// Offered Poisson rates for the sweep, queries/second.
    fn rates(&self) -> Vec<f64> {
        if self.quick {
            vec![50.0, 2_000.0]
        } else {
            vec![10.0, 50.0, 200.0, 1_000.0, 5_000.0]
        }
    }
}

/// The measurements kept from one engine run.
#[derive(Debug, Clone)]
pub struct PointMetrics {
    /// Completed queries per second of makespan.
    pub throughput_qps: f64,
    /// Scored records per second of makespan.
    pub records_per_sec: f64,
    /// Median sojourn latency, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile sojourn latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile sojourn latency, milliseconds.
    pub p99_ms: f64,
    /// Completed requests.
    pub completed: u64,
    /// Requests shed (rejected + dropped + timed out).
    pub shed: u64,
    /// Device passes executed.
    pub batches: u64,
    /// Passes that merged more than one request.
    pub coalesced_batches: u64,
    /// Largest merge.
    pub max_batch: usize,
    /// Mean requests per pass.
    pub mean_batch: f64,
    /// `(device name, busy fraction)` in roster order.
    pub utilization: Vec<(String, f64)>,
    /// Interactive-class latency-SLO attainment, in `[0, 1]`.
    pub interactive_attainment: f64,
    /// Analytical-class latency-SLO attainment, in `[0, 1]`.
    pub analytical_attainment: f64,
    /// Largest queue depth any metrics window observed.
    pub peak_queue_depth: u64,
}

impl PointMetrics {
    /// Folds a [`ServingReport`] down to the numbers the report keeps.
    pub fn of(report: &ServingReport) -> Self {
        let ms = |q: f64| {
            if report.latency.count() == 0 {
                0.0
            } else {
                report.latency.quantile(q).as_secs() * 1e3
            }
        };
        Self {
            throughput_qps: report.throughput_qps(),
            records_per_sec: report.records_per_sec(),
            p50_ms: ms(0.50),
            p95_ms: ms(0.95),
            p99_ms: ms(0.99),
            completed: report.completed,
            shed: report.shed(),
            batches: report.batches,
            coalesced_batches: report.coalesced_batches,
            max_batch: report.max_batch(),
            mean_batch: report.mean_batch(),
            utilization: report
                .devices
                .iter()
                .map(|d| (d.name.clone(), d.utilization))
                .collect(),
            interactive_attainment: report.class(QueryClass::Interactive).attainment(),
            analytical_attainment: report.class(QueryClass::Analytical).attainment(),
            peak_queue_depth: report.series.peak_queue_depth(),
        }
    }
}

/// One offered-load point: the same workload with coalescing on and off.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Offered Poisson rate, queries/second.
    pub rate_qps: f64,
    /// Metrics with coalescing enabled.
    pub on: PointMetrics,
    /// Metrics with coalescing disabled.
    pub off: PointMetrics,
}

/// The FPGA overload experiment.
#[derive(Debug, Clone)]
pub struct FpgaOverload {
    /// Offered Poisson rate, queries/second.
    pub rate_qps: f64,
    /// Queries offered.
    pub queries: usize,
    /// Metrics with coalescing enabled.
    pub on: PointMetrics,
    /// Metrics with coalescing disabled.
    pub off: PointMetrics,
}

/// A full `repro serve` result.
#[derive(Debug, Clone)]
pub struct ServeBenchReport {
    /// The load sweep over the full paper roster.
    pub sweep: Vec<SweepPoint>,
    /// The FPGA-only overload comparison.
    pub fpga_overload: FpgaOverload,
    /// Queries per sweep point.
    pub sweep_queries: usize,
}

fn serve_config(coalesce_on: bool, capacity: usize) -> ServeConfig {
    ServeConfig {
        queue: QueueConfig {
            capacity: Some(capacity),
            // Latency SLOs so the report's attainment columns measure
            // something: 50 ms for point lookups, 2 s for full scans.
            // Violations are counted, never enforced — adding the SLOs
            // does not perturb scheduling.
            interactive: ClassSlo {
                latency_slo: Some(SimDuration::from_millis(50.0)),
                ..ClassSlo::default()
            },
            analytical: ClassSlo {
                latency_slo: Some(SimDuration::from_secs(2.0)),
                ..ClassSlo::default()
            },
            ..QueueConfig::default()
        },
        coalesce: if coalesce_on {
            CoalesceConfig::default()
        } else {
            CoalesceConfig::disabled()
        },
        cpu_seats: CPU_SEATS,
        gpu_streams: GPU_STREAMS,
        ..ServeConfig::default()
    }
}

fn fpga_roster() -> Vec<Box<dyn ScoringBackend>> {
    paper_backends()
        .into_iter()
        .filter(|b| b.name() == "FPGA")
        .collect()
}

/// Runs one engine configuration against one Poisson workload.
fn run_point(
    backends: Vec<Box<dyn ScoringBackend>>,
    config: ServeConfig,
    rate_qps: f64,
    queries: usize,
) -> ServingReport {
    let engine = ServeEngine::new(backends, ModelCatalog::paper_mix(), config);
    let spec = WorkloadSpec {
        queries,
        seed: SEED,
        arrivals: ArrivalProcess::OpenPoisson { rate_qps },
    };
    engine
        .run(&spec, &Tracer::disabled())
        .expect("sweep workloads are validated by construction")
}

/// Runs the sweep and the FPGA overload experiment, printing one progress
/// line per point.
pub fn run(opts: &ServeBenchOptions) -> ServeBenchReport {
    let queries = opts.sweep_queries();
    let mut sweep = Vec::new();
    for rate_qps in opts.rates() {
        let on = run_point(paper_backends(), serve_config(true, 128), rate_qps, queries);
        let off = run_point(
            paper_backends(),
            serve_config(false, 128),
            rate_qps,
            queries,
        );
        assert!(on.is_conserved() && off.is_conserved(), "lost requests");
        println!(
            "{rate_qps:>7.0} qps | coalesced: {:>7.1} qps p99 {:>9.1} ms (merged {:>3}) | \
             solo: {:>7.1} qps p99 {:>9.1} ms | shed {}/{}",
            on.throughput_qps(),
            PointMetrics::of(&on).p99_ms,
            on.coalesced_batches,
            off.throughput_qps(),
            PointMetrics::of(&off).p99_ms,
            on.shed(),
            off.shed(),
        );
        sweep.push(SweepPoint {
            rate_qps,
            on: PointMetrics::of(&on),
            off: PointMetrics::of(&off),
        });
    }

    let overload_rate = 2_000.0;
    let overload_queries = opts.overload_queries();
    let on = run_point(
        fpga_roster(),
        serve_config(true, 32),
        overload_rate,
        overload_queries,
    );
    let off = run_point(
        fpga_roster(),
        serve_config(false, 32),
        overload_rate,
        overload_queries,
    );
    assert!(on.is_conserved() && off.is_conserved(), "lost requests");
    println!(
        "FPGA overload @ {overload_rate:.0} qps | coalesced {:>7.1} qps ({} merged passes, \
         max batch {}) | solo {:>7.1} qps",
        on.throughput_qps(),
        on.coalesced_batches,
        on.max_batch(),
        off.throughput_qps(),
    );
    ServeBenchReport {
        sweep,
        fpga_overload: FpgaOverload {
            rate_qps: overload_rate,
            queries: overload_queries,
            on: PointMetrics::of(&on),
            off: PointMetrics::of(&off),
        },
        sweep_queries: queries,
    }
}

/// Pushes `v` as a JSON number with fixed precision (keeps the file
/// byte-stable across runs).
fn push_num(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v:.3}"));
    } else {
        out.push_str("null");
    }
}

fn push_metrics(out: &mut String, indent: &str, m: &PointMetrics) {
    out.push_str("{\n");
    let field = |out: &mut String, key: &str, v: f64, last: bool| {
        out.push_str(indent);
        out.push_str(&format!("  \"{key}\": "));
        push_num(out, v);
        out.push_str(if last { "\n" } else { ",\n" });
    };
    field(out, "throughput_qps", m.throughput_qps, false);
    field(out, "records_per_sec", m.records_per_sec, false);
    field(out, "p50_ms", m.p50_ms, false);
    field(out, "p95_ms", m.p95_ms, false);
    field(out, "p99_ms", m.p99_ms, false);
    out.push_str(indent);
    out.push_str(&format!(
        "  \"completed\": {}, \"shed\": {}, \"batches\": {}, \"coalesced_batches\": {}, \
         \"max_batch\": {},\n",
        m.completed, m.shed, m.batches, m.coalesced_batches, m.max_batch
    ));
    field(out, "mean_batch", m.mean_batch, false);
    out.push_str(indent);
    // Attainments get six decimals: against a 99% target, three would
    // round every near-miss to 0.990.
    out.push_str(&format!(
        "  \"interactive_attainment\": {:.6}, \"analytical_attainment\": {:.6}, \
         \"peak_queue_depth\": {},\n",
        m.interactive_attainment, m.analytical_attainment, m.peak_queue_depth
    ));
    out.push_str(indent);
    out.push_str("  \"utilization\": {");
    for (i, (name, u)) in m.utilization.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write_escaped(out, name);
        out.push_str(": ");
        push_num(out, *u);
    }
    out.push_str("}\n");
    out.push_str(indent);
    out.push('}');
}

/// Serializes the report to the `BENCH_serving.json` document.
///
/// The output is validated with [`validate`] before being returned.
///
/// # Panics
///
/// Panics if the writer produced a document [`validate`] rejects — a bug
/// in this module, not a runtime condition.
pub fn to_json(report: &ServeBenchReport, opts: &ServeBenchOptions) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"mlscore/bench-serving/v1\",\n");
    out.push_str("  \"schema_version\": 2,\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if opts.quick { "quick" } else { "full" }
    ));
    out.push_str(&format!("  \"seed\": {SEED},\n"));
    out.push_str(&format!(
        "  \"cpu_seats\": {CPU_SEATS}, \"gpu_streams\": {GPU_STREAMS},\n"
    ));
    out.push_str(&format!("  \"sweep_queries\": {},\n", report.sweep_queries));
    out.push_str("  \"sweep\": [");
    for (i, point) in report.sweep.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"rate_qps\": ");
        push_num(&mut out, point.rate_qps);
        out.push_str(",\n     \"coalesce_on\": ");
        push_metrics(&mut out, "     ", &point.on);
        out.push_str(",\n     \"coalesce_off\": ");
        push_metrics(&mut out, "     ", &point.off);
        out.push_str("\n    }");
    }
    out.push_str("\n  ],\n");
    let fo = &report.fpga_overload;
    out.push_str("  \"fpga_overload\": {\n    \"rate_qps\": ");
    push_num(&mut out, fo.rate_qps);
    out.push_str(&format!(",\n    \"queries\": {},", fo.queries));
    out.push_str("\n    \"coalesce_on\": ");
    push_metrics(&mut out, "    ", &fo.on);
    out.push_str(",\n    \"coalesce_off\": ");
    push_metrics(&mut out, "    ", &fo.off);
    out.push_str("\n  }\n}\n");
    validate(&out).expect("harness emitted invalid JSON");
    out
}

fn metrics_f64(block: &JsonValue, key: &str, what: &str) -> Result<f64, String> {
    block
        .get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("{what}: missing numeric \"{key}\""))
}

/// Checks the schema-v2 observability block of one metrics object:
/// per-class attainments in `[0, 1]` and a non-negative peak queue depth.
fn validate_observability(block: &JsonValue, what: &str) -> Result<(), String> {
    for key in ["interactive_attainment", "analytical_attainment"] {
        let v = metrics_f64(block, key, what)?;
        if !(0.0..=1.0).contains(&v) {
            return Err(format!("{what}: \"{key}\" {v} outside [0, 1]"));
        }
    }
    let depth = metrics_f64(block, "peak_queue_depth", what)?;
    if depth < 0.0 {
        return Err(format!("{what}: negative \"peak_queue_depth\" {depth}"));
    }
    Ok(())
}

/// Checks that `text` is a well-formed serving report with the effects the
/// experiment exists to demonstrate: at least one coalesced batch, at
/// least one shed request under overload, and FPGA throughput with
/// coalescing on no worse than off at the same offered load.
///
/// Used both as the harness's own self-check and by `repro serve --check`
/// (the CI smoke gate). Returns the sweep point count.
///
/// # Errors
///
/// Returns a description of the first structural problem found.
pub fn validate(text: &str) -> Result<usize, String> {
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    match doc.get("schema").and_then(JsonValue::as_str) {
        Some("mlscore/bench-serving/v1") => {}
        other => return Err(format!("unexpected schema {other:?}")),
    }
    match doc.get("schema_version").and_then(JsonValue::as_f64) {
        Some(v) if v >= 2.0 => {}
        other => return Err(format!("missing or stale schema_version {other:?}")),
    }
    let sweep = doc
        .get("sweep")
        .and_then(JsonValue::as_array)
        .ok_or("missing \"sweep\" array")?;
    if sweep.is_empty() {
        return Err("\"sweep\" is empty".to_string());
    }
    let mut coalesced = 0.0;
    let mut shed = 0.0;
    for (i, point) in sweep.iter().enumerate() {
        metrics_f64(point, "rate_qps", &format!("sweep point {i}"))?;
        for side in ["coalesce_on", "coalesce_off"] {
            let block = point
                .get(side)
                .ok_or_else(|| format!("sweep point {i}: missing \"{side}\" block"))?;
            let what = format!("sweep point {i} {side}");
            metrics_f64(block, "throughput_qps", &what)?;
            metrics_f64(block, "p99_ms", &what)?;
            metrics_f64(block, "completed", &what)?;
            validate_observability(block, &what)?;
            shed += metrics_f64(block, "shed", &what)?;
            if side == "coalesce_on" {
                coalesced += metrics_f64(block, "coalesced_batches", &what)?;
            } else if metrics_f64(block, "coalesced_batches", &what)? > 0.0 {
                return Err(format!("{what}: merged batches with coalescing off"));
            }
        }
    }
    let fo = doc
        .get("fpga_overload")
        .ok_or("missing \"fpga_overload\" block")?;
    let on = fo
        .get("coalesce_on")
        .ok_or("fpga_overload: missing \"coalesce_on\"")?;
    let off = fo
        .get("coalesce_off")
        .ok_or("fpga_overload: missing \"coalesce_off\"")?;
    coalesced += metrics_f64(on, "coalesced_batches", "fpga_overload on")?;
    validate_observability(on, "fpga_overload on")?;
    validate_observability(off, "fpga_overload off")?;
    shed += metrics_f64(on, "shed", "fpga_overload on")?;
    shed += metrics_f64(off, "shed", "fpga_overload off")?;
    let t_on = metrics_f64(on, "throughput_qps", "fpga_overload on")?;
    let t_off = metrics_f64(off, "throughput_qps", "fpga_overload off")?;
    if t_on < t_off {
        return Err(format!(
            "fpga_overload: coalescing lowered throughput ({t_on:.3} < {t_off:.3} qps)"
        ));
    }
    if coalesced < 1.0 {
        return Err("no coalesced batch anywhere in the report".to_string());
    }
    if shed < 1.0 {
        return Err(
            "no request was ever shed — the overload points are not overloaded".to_string(),
        );
    }
    Ok(sweep.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_serializes_validates_and_is_deterministic() {
        let opts = ServeBenchOptions { quick: true };
        let report = run(&opts);
        let json = to_json(&report, &opts);
        assert_eq!(validate(&json), Ok(2));
        // Simulated time: a second run is byte-identical.
        let again = to_json(&run(&opts), &opts);
        assert_eq!(json, again);
    }

    #[test]
    fn fpga_overload_shows_the_coalescing_win() {
        let report = run(&ServeBenchOptions { quick: true });
        let fo = &report.fpga_overload;
        assert!(fo.on.coalesced_batches > 0, "overload must merge batches");
        assert!(fo.on.throughput_qps >= fo.off.throughput_qps);
        assert!(fo.on.shed + fo.off.shed > 0, "overload must shed");
    }

    #[test]
    fn validate_rejects_garbage_and_missing_effects() {
        assert!(validate("not json").is_err());
        assert!(validate("{\"schema\": \"wrong\"}").is_err());
        assert!(
            validate("{\"schema\": \"mlscore/bench-serving/v1\", \"schema_version\": 1}").is_err()
        );
    }
}
