//! Benchmark regression diffing (`repro bench --diff`).
//!
//! Compares two `BENCH_cpu_scoring.json` documents cell by cell: cases are
//! keyed by `(dataset, trees, depth, records)` and their thread runs by
//! thread count, and each throughput number in the new report must come
//! within a relative tolerance of the old one. Missing cases or runs are
//! regressions too — a report cannot "improve" by silently dropping the
//! slow cells. The comparison is keyed on the metrics the *old* report
//! carries: cells or per-run metrics that only exist in the new report
//! (a freshly landed kernel tier, a schema bump) are informational, never
//! regressions. Improvements are never flagged; the diff is a one-sided
//! perf gate, wired into CI as a self-diff smoke.

use std::collections::BTreeMap;

use mlscore_telemetry::json::{self, JsonValue};

/// Default relative tolerance: a cell may lose up to 25% throughput
/// before the diff calls it a regression. Wall-clock benchmarks on shared
/// CI hosts jitter; a quarter is far outside noise for the blocked
/// kernels this gate protects.
pub const DEFAULT_TOLERANCE: f64 = 0.25;

/// Per-run metric suffix every compared throughput key shares.
const METRIC_SUFFIX: &str = "_records_per_sec";

/// One case's comparable numbers: throughput metrics per thread count.
#[derive(Debug, Clone, Default)]
struct CaseCells {
    /// `threads -> { metric name -> records/second }`, one entry per
    /// `*_records_per_sec` key the run carries.
    runs: BTreeMap<u64, BTreeMap<String, f64>>,
}

/// `(dataset, trees, depth, records)` -> cells, for one report document.
type CaseMap = BTreeMap<(String, u64, u64, u64), CaseCells>;

fn num(v: &JsonValue, key: &str, what: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("{what}: missing numeric \"{key}\""))
}

/// Indexes a CPU-scoring report's cases for comparison.
fn index(text: &str, label: &str) -> Result<CaseMap, String> {
    let doc = json::parse(text).map_err(|e| format!("{label}: {e}"))?;
    match doc.get("schema").and_then(JsonValue::as_str) {
        Some("mlscore/bench-cpu-scoring/v1") => {}
        other => return Err(format!("{label}: unexpected schema {other:?}")),
    }
    let cases = doc
        .get("cases")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| format!("{label}: missing \"cases\" array"))?;
    let mut map = CaseMap::new();
    for (i, case) in cases.iter().enumerate() {
        let what = format!("{label}: case {i}");
        let dataset = case
            .get("dataset")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("{what}: missing \"dataset\""))?
            .to_string();
        let key = (
            dataset,
            num(case, "trees", &what)? as u64,
            num(case, "depth", &what)? as u64,
            num(case, "records", &what)? as u64,
        );
        let runs = case
            .get("runs")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| format!("{what}: missing \"runs\" array"))?;
        let mut cells = CaseCells::default();
        for run in runs {
            let JsonValue::Object(fields) = run else {
                return Err(format!("{what}: run is not an object"));
            };
            let mut metrics = BTreeMap::new();
            for (name, value) in fields {
                if !name.ends_with(METRIC_SUFFIX) {
                    continue;
                }
                let v = value
                    .as_f64()
                    .ok_or_else(|| format!("{what}: non-numeric \"{name}\""))?;
                metrics.insert(name.clone(), v);
            }
            if metrics.is_empty() {
                return Err(format!("{what}: run has no {METRIC_SUFFIX} metrics"));
            }
            cells
                .runs
                .insert(num(run, "threads", &what)? as u64, metrics);
        }
        map.insert(key, cells);
    }
    Ok(map)
}

/// Compares `new_text` against `old_text` with relative `tolerance`.
///
/// Returns one human-readable line per regression (empty: the gate
/// passes). A cell regresses when its new throughput falls below
/// `old * (1 - tolerance)`; cases, thread runs, or per-run metrics
/// present in the old report but absent from the new one regress
/// unconditionally. The reverse is informational: cells and metrics that
/// only the *new* report carries (e.g. a kernel tier that just landed)
/// are never regressions.
///
/// # Errors
///
/// Returns a description of the first structural problem in either
/// document (bad JSON, wrong schema, missing fields).
pub fn diff(old_text: &str, new_text: &str, tolerance: f64) -> Result<Vec<String>, String> {
    if !(0.0..1.0).contains(&tolerance) {
        return Err(format!("tolerance {tolerance} outside [0, 1)"));
    }
    let old = index(old_text, "old")?;
    let new = index(new_text, "new")?;
    let mut regressions = Vec::new();
    for (key, old_cells) in &old {
        let (dataset, trees, depth, records) = key;
        let label = format!("{dataset} x{trees} trees depth {depth} @{records}");
        let Some(new_cells) = new.get(key) else {
            regressions.push(format!("{label}: case missing from new report"));
            continue;
        };
        for (&threads, old_metrics) in &old_cells.runs {
            let Some(new_metrics) = new_cells.runs.get(&threads) else {
                regressions.push(format!(
                    "{label}: {threads}-thread run missing from new report"
                ));
                continue;
            };
            // Only the old report's metrics gate; new-only metrics are
            // additions, not comparables.
            for (metric, &old_v) in old_metrics {
                let Some(&new_v) = new_metrics.get(metric) else {
                    regressions.push(format!(
                        "{label}: {threads}-thread {metric} missing from new report"
                    ));
                    continue;
                };
                let floor = old_v * (1.0 - tolerance);
                if new_v < floor {
                    regressions.push(format!(
                        "{label}: {threads}-thread {metric} regressed \
                         {old_v:.0} -> {new_v:.0} ({:+.1}%, tolerance {:.0}%)",
                        (new_v / old_v - 1.0) * 100.0,
                        tolerance * 100.0,
                    ));
                }
            }
        }
    }
    Ok(regressions)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(flat: f64, forest: f64) -> String {
        format!(
            "{{\"schema\": \"mlscore/bench-cpu-scoring/v1\", \"schema_version\": 2,\n\
             \"cases\": [\n\
               {{\"dataset\": \"higgs\", \"trees\": 128, \"depth\": 10, \"records\": 10000,\n\
                \"runs\": [{{\"threads\": 1, \"flat_records_per_sec\": {flat},\n\
                            \"forest_records_per_sec\": {forest}}}]}}\n\
             ]}}"
        )
    }

    #[test]
    fn self_diff_is_clean() {
        let text = report(1e6, 2e6);
        assert_eq!(diff(&text, &text, DEFAULT_TOLERANCE), Ok(vec![]));
    }

    #[test]
    fn losses_beyond_tolerance_regress_and_gains_never_do() {
        let old = report(1e6, 2e6);
        // 10% flat loss: inside the 25% tolerance.
        assert_eq!(diff(&old, &report(0.9e6, 2e6), 0.25), Ok(vec![]));
        // 30% flat loss: regression.
        let r = diff(&old, &report(0.7e6, 2e6), 0.25).unwrap();
        assert_eq!(r.len(), 1);
        assert!(r[0].contains("flat_records_per_sec"), "{r:?}");
        assert!(r[0].contains("-30.0%"), "{r:?}");
        // Both metrics can regress independently.
        assert_eq!(diff(&old, &report(0.1e6, 0.1e6), 0.25).unwrap().len(), 2);
        // Improvement is never flagged.
        assert_eq!(diff(&old, &report(9e6, 9e6), 0.25), Ok(vec![]));
    }

    /// A v3-style report: same cell as [`report`] plus the vector-tier
    /// metrics and an extra case the old report never had.
    fn report_with_kernel_tier(flat: f64, simd: f64) -> String {
        format!(
            "{{\"schema\": \"mlscore/bench-cpu-scoring/v1\", \"schema_version\": 3,\n\
             \"cases\": [\n\
               {{\"dataset\": \"higgs\", \"trees\": 128, \"depth\": 10, \"records\": 10000,\n\
                \"chosen_kernel\": \"simd\",\n\
                \"runs\": [{{\"threads\": 1, \"flat_records_per_sec\": {flat},\n\
                            \"forest_records_per_sec\": 2e6,\n\
                            \"simd_records_per_sec\": {simd},\n\
                            \"quickscorer_records_per_sec\": 1700}}]}},\n\
               {{\"dataset\": \"iris\", \"trees\": 8, \"depth\": 10, \"records\": 500,\n\
                \"chosen_kernel\": \"blocked\",\n\
                \"runs\": [{{\"threads\": 1, \"flat_records_per_sec\": 5e6}}]}}\n\
             ]}}"
        )
    }

    #[test]
    fn missing_cases_and_runs_regress() {
        let old = report(1e6, 2e6);
        let empty = "{\"schema\": \"mlscore/bench-cpu-scoring/v1\", \"cases\": []}";
        let r = diff(&old, empty, 0.25).unwrap();
        assert_eq!(r.len(), 1);
        assert!(r[0].contains("case missing"), "{r:?}");
        // New cases appearing is fine.
        assert_eq!(diff(empty, &old, 0.25), Ok(vec![]));
    }

    #[test]
    fn added_cells_and_metrics_are_informational() {
        // A schema-bumped report that adds a whole kernel tier (new
        // per-run metrics) and a whole new case must diff clean against
        // the old two-metric report: additions are not regressions.
        let old = report(1e6, 2e6);
        let new = report_with_kernel_tier(1e6, 9e5);
        assert_eq!(diff(&old, &new, 0.25), Ok(vec![]));

        // But once the old report carries the new metrics, they gate like
        // any other: dropping one or regressing it fails.
        let newer_slow = report_with_kernel_tier(1e6, 1e5);
        let r = diff(&new, &newer_slow, 0.25).unwrap();
        assert_eq!(r.len(), 1);
        assert!(r[0].contains("simd_records_per_sec regressed"), "{r:?}");
        let r = diff(&new, &old, 0.25).unwrap();
        assert!(
            r.iter().any(|l| l.contains("simd_records_per_sec missing")),
            "{r:?}"
        );
        assert!(r.iter().any(|l| l.contains("case missing")), "{r:?}");
    }

    #[test]
    fn structural_problems_are_errors_not_regressions() {
        assert!(diff("not json", "not json", 0.25).is_err());
        assert!(diff(&report(1.0, 1.0), "{\"schema\": \"wrong\"}", 0.25).is_err());
        assert!(diff(&report(1.0, 1.0), &report(1.0, 1.0), 1.5).is_err());
    }
}
