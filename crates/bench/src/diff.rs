//! Benchmark regression diffing (`repro bench --diff`).
//!
//! Compares two `BENCH_cpu_scoring.json` documents cell by cell: cases are
//! keyed by `(dataset, trees, depth, records)` and their thread runs by
//! thread count, and each throughput number in the new report must come
//! within a relative tolerance of the old one. Missing cases or runs are
//! regressions too — a report cannot "improve" by silently dropping the
//! slow cells. Improvements are never flagged; the diff is a one-sided
//! perf gate, wired into CI as a self-diff smoke.

use std::collections::BTreeMap;

use mlscore_telemetry::json::{self, JsonValue};

/// Default relative tolerance: a cell may lose up to 25% throughput
/// before the diff calls it a regression. Wall-clock benchmarks on shared
/// CI hosts jitter; a quarter is far outside noise for the blocked
/// kernels this gate protects.
pub const DEFAULT_TOLERANCE: f64 = 0.25;

/// One case's comparable numbers: throughput per thread count.
#[derive(Debug, Clone, Default)]
struct CaseCells {
    /// `threads -> (flat_records_per_sec, forest_records_per_sec)`.
    runs: BTreeMap<u64, (f64, f64)>,
}

/// `(dataset, trees, depth, records)` -> cells, for one report document.
type CaseMap = BTreeMap<(String, u64, u64, u64), CaseCells>;

fn num(v: &JsonValue, key: &str, what: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("{what}: missing numeric \"{key}\""))
}

/// Indexes a CPU-scoring report's cases for comparison.
fn index(text: &str, label: &str) -> Result<CaseMap, String> {
    let doc = json::parse(text).map_err(|e| format!("{label}: {e}"))?;
    match doc.get("schema").and_then(JsonValue::as_str) {
        Some("mlscore/bench-cpu-scoring/v1") => {}
        other => return Err(format!("{label}: unexpected schema {other:?}")),
    }
    let cases = doc
        .get("cases")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| format!("{label}: missing \"cases\" array"))?;
    let mut map = CaseMap::new();
    for (i, case) in cases.iter().enumerate() {
        let what = format!("{label}: case {i}");
        let dataset = case
            .get("dataset")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("{what}: missing \"dataset\""))?
            .to_string();
        let key = (
            dataset,
            num(case, "trees", &what)? as u64,
            num(case, "depth", &what)? as u64,
            num(case, "records", &what)? as u64,
        );
        let runs = case
            .get("runs")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| format!("{what}: missing \"runs\" array"))?;
        let mut cells = CaseCells::default();
        for run in runs {
            cells.runs.insert(
                num(run, "threads", &what)? as u64,
                (
                    num(run, "flat_records_per_sec", &what)?,
                    num(run, "forest_records_per_sec", &what)?,
                ),
            );
        }
        map.insert(key, cells);
    }
    Ok(map)
}

/// Compares `new_text` against `old_text` with relative `tolerance`.
///
/// Returns one human-readable line per regression (empty: the gate
/// passes). A cell regresses when its new throughput falls below
/// `old * (1 - tolerance)`; cases or thread runs present in the old
/// report but absent from the new one regress unconditionally.
///
/// # Errors
///
/// Returns a description of the first structural problem in either
/// document (bad JSON, wrong schema, missing fields).
pub fn diff(old_text: &str, new_text: &str, tolerance: f64) -> Result<Vec<String>, String> {
    if !(0.0..1.0).contains(&tolerance) {
        return Err(format!("tolerance {tolerance} outside [0, 1)"));
    }
    let old = index(old_text, "old")?;
    let new = index(new_text, "new")?;
    let mut regressions = Vec::new();
    for (key, old_cells) in &old {
        let (dataset, trees, depth, records) = key;
        let label = format!("{dataset} x{trees} trees depth {depth} @{records}");
        let Some(new_cells) = new.get(key) else {
            regressions.push(format!("{label}: case missing from new report"));
            continue;
        };
        for (&threads, &(old_flat, old_forest)) in &old_cells.runs {
            let Some(&(new_flat, new_forest)) = new_cells.runs.get(&threads) else {
                regressions.push(format!(
                    "{label}: {threads}-thread run missing from new report"
                ));
                continue;
            };
            for (metric, old_v, new_v) in [
                ("flat_records_per_sec", old_flat, new_flat),
                ("forest_records_per_sec", old_forest, new_forest),
            ] {
                let floor = old_v * (1.0 - tolerance);
                if new_v < floor {
                    regressions.push(format!(
                        "{label}: {threads}-thread {metric} regressed \
                         {old_v:.0} -> {new_v:.0} ({:+.1}%, tolerance {:.0}%)",
                        (new_v / old_v - 1.0) * 100.0,
                        tolerance * 100.0,
                    ));
                }
            }
        }
    }
    Ok(regressions)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(flat: f64, forest: f64) -> String {
        format!(
            "{{\"schema\": \"mlscore/bench-cpu-scoring/v1\", \"schema_version\": 2,\n\
             \"cases\": [\n\
               {{\"dataset\": \"higgs\", \"trees\": 128, \"depth\": 10, \"records\": 10000,\n\
                \"runs\": [{{\"threads\": 1, \"flat_records_per_sec\": {flat},\n\
                            \"forest_records_per_sec\": {forest}}}]}}\n\
             ]}}"
        )
    }

    #[test]
    fn self_diff_is_clean() {
        let text = report(1e6, 2e6);
        assert_eq!(diff(&text, &text, DEFAULT_TOLERANCE), Ok(vec![]));
    }

    #[test]
    fn losses_beyond_tolerance_regress_and_gains_never_do() {
        let old = report(1e6, 2e6);
        // 10% flat loss: inside the 25% tolerance.
        assert_eq!(diff(&old, &report(0.9e6, 2e6), 0.25), Ok(vec![]));
        // 30% flat loss: regression.
        let r = diff(&old, &report(0.7e6, 2e6), 0.25).unwrap();
        assert_eq!(r.len(), 1);
        assert!(r[0].contains("flat_records_per_sec"), "{r:?}");
        assert!(r[0].contains("-30.0%"), "{r:?}");
        // Both metrics can regress independently.
        assert_eq!(diff(&old, &report(0.1e6, 0.1e6), 0.25).unwrap().len(), 2);
        // Improvement is never flagged.
        assert_eq!(diff(&old, &report(9e6, 9e6), 0.25), Ok(vec![]));
    }

    #[test]
    fn missing_cases_and_runs_regress() {
        let old = report(1e6, 2e6);
        let empty = "{\"schema\": \"mlscore/bench-cpu-scoring/v1\", \"cases\": []}";
        let r = diff(&old, empty, 0.25).unwrap();
        assert_eq!(r.len(), 1);
        assert!(r[0].contains("case missing"), "{r:?}");
        // New cases appearing is fine.
        assert_eq!(diff(empty, &old, 0.25), Ok(vec![]));
    }

    #[test]
    fn structural_problems_are_errors_not_regressions() {
        assert!(diff("not json", "not json", 0.25).is_err());
        assert!(diff(&report(1.0, 1.0), "{\"schema\": \"wrong\"}", 0.25).is_err());
        assert!(diff(&report(1.0, 1.0), &report(1.0, 1.0), 1.5).is_err());
    }
}
