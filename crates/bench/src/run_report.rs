//! The serving run report (`repro report`).
//!
//! Runs the FPGA-only overload workload — the point of the serving study
//! where queueing and shed decisions actually bite — and renders what the
//! observability layer captured: the windowed time series, per-class SLO
//! attainment (with shed counts alongside completions, so shed load keeps
//! its class attribution), the SLO budget-burn alerts, and the top-N
//! slowest requests with their full stage breakdowns reconstructed from
//! the request-lifecycle journal.
//!
//! Everything runs in simulated time, so both renderings are pure
//! functions of `(seed, options)`: the JSON document is byte-identical
//! across reruns — CI regenerates it twice and compares.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use mlscore_backend::ScoringBackend;
use mlscore_sched::paper_backends;
use mlscore_serve::{
    ArrivalProcess, ClassSlo, CoalesceConfig, JournalKind, ModelCatalog, QueueConfig, ServeConfig,
    ServeEngine, ServingReport, WorkloadSpec,
};
use mlscore_sim::SimDuration;
use mlscore_telemetry::json::{self, JsonValue};
use mlscore_telemetry::Tracer;

use crate::serve_bench::{CPU_SEATS, GPU_STREAMS, SEED};

/// Offered Poisson rate of the report workload, queries/second.
pub const RATE_QPS: f64 = 2_000.0;

/// Options for one report run.
#[derive(Debug, Clone, Copy)]
pub struct RunReportOptions {
    /// Shrink the workload to a CI smoke run.
    pub quick: bool,
    /// How many slowest requests to break down.
    pub top_n: usize,
}

impl Default for RunReportOptions {
    fn default() -> Self {
        Self {
            quick: false,
            top_n: 5,
        }
    }
}

impl RunReportOptions {
    /// Queries offered.
    pub fn queries(&self) -> usize {
        if self.quick {
            150
        } else {
            500
        }
    }
}

fn fpga_roster() -> Vec<Box<dyn ScoringBackend>> {
    paper_backends()
        .into_iter()
        .filter(|b| b.name() == "FPGA")
        .collect()
}

/// The engine configuration the report runs: FPGA-only, bounded queue,
/// coalescing on, the same latency SLOs as the serving benchmark, and the
/// default observability windows/thresholds.
pub fn config() -> ServeConfig {
    ServeConfig {
        queue: QueueConfig {
            capacity: Some(32),
            interactive: ClassSlo {
                latency_slo: Some(SimDuration::from_millis(50.0)),
                ..ClassSlo::default()
            },
            analytical: ClassSlo {
                latency_slo: Some(SimDuration::from_secs(2.0)),
                ..ClassSlo::default()
            },
            ..QueueConfig::default()
        },
        coalesce: CoalesceConfig::default(),
        cpu_seats: CPU_SEATS,
        gpu_streams: GPU_STREAMS,
        ..ServeConfig::default()
    }
}

/// Runs the report workload.
pub fn run(opts: &RunReportOptions) -> ServingReport {
    let engine = ServeEngine::new(fpga_roster(), ModelCatalog::paper_mix(), config());
    let spec = WorkloadSpec {
        queries: opts.queries(),
        seed: SEED,
        arrivals: ArrivalProcess::OpenPoisson { rate_qps: RATE_QPS },
    };
    engine
        .run(&spec, &Tracer::disabled())
        .expect("the report workload is a fixed valid spec")
}

/// One slow request's stage breakdown, reconstructed from the journal.
#[derive(Debug, Clone)]
pub struct SlowRequest {
    /// The request.
    pub id: u64,
    /// Its class name.
    pub class: String,
    /// Its model (catalog index).
    pub model: usize,
    /// Records it carried.
    pub records: u64,
    /// Arrival-to-completion latency.
    pub latency: SimDuration,
    /// Arrival to device-pass start.
    pub queue_wait: SimDuration,
    /// Compile / cache-lookup charge.
    pub prepare: SimDuration,
    /// Overhead stages.
    pub setup: SimDuration,
    /// Transfer stages.
    pub transfer: SimDuration,
    /// Compute stages.
    pub compute: SimDuration,
    /// Pipeline-drain stages.
    pub drain: SimDuration,
}

/// The `n` slowest completed requests, latency-descending (ties break on
/// the smaller id), each with the stage split its journal entries carry.
pub fn slowest(report: &ServingReport, n: usize) -> Vec<SlowRequest> {
    let mut arrivals: BTreeMap<u64, (String, usize, u64)> = BTreeMap::new();
    let mut out = Vec::new();
    for entry in report.journal.entries() {
        match &entry.kind {
            JournalKind::Arrival {
                class,
                model,
                records,
            } => {
                arrivals.insert(entry.id, (class.name().to_string(), *model, *records));
            }
            JournalKind::Completed {
                latency,
                queue_wait,
                prepare,
                setup,
                transfer,
                compute,
                drain,
            } => {
                let (class, model, records) = arrivals
                    .get(&entry.id)
                    .cloned()
                    .unwrap_or_else(|| ("?".to_string(), 0, 0));
                out.push(SlowRequest {
                    id: entry.id,
                    class,
                    model,
                    records,
                    latency: *latency,
                    queue_wait: *queue_wait,
                    prepare: *prepare,
                    setup: *setup,
                    transfer: *transfer,
                    compute: *compute,
                    drain: *drain,
                });
            }
            _ => {}
        }
    }
    out.sort_by(|a, b| {
        b.latency
            .as_secs()
            .total_cmp(&a.latency.as_secs())
            .then(a.id.cmp(&b.id))
    });
    out.truncate(n);
    out
}

fn push_ms(out: &mut String, v: SimDuration) {
    let _ = write!(out, "{:.6}", v.as_secs() * 1e3);
}

/// Serializes the run report to its JSON document
/// (`mlscore/run-report/v1`). Validated with [`validate`] before being
/// returned.
///
/// # Panics
///
/// Panics if the writer produced a document [`validate`] rejects — a bug
/// in this module, not a runtime condition.
pub fn to_json(report: &ServingReport, opts: &RunReportOptions) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"mlscore/run-report/v1\",\n");
    out.push_str("  \"schema_version\": 1,\n");
    let _ = write!(
        out,
        "  \"mode\": \"{}\",\n  \"seed\": {SEED},\n  \"rate_qps\": {RATE_QPS:.3},\n  \
         \"queries\": {},\n  \"window_secs\": {:.6},\n  \"makespan_secs\": {:.9},\n",
        if opts.quick { "quick" } else { "full" },
        opts.queries(),
        report.series.window_len().as_secs(),
        report.makespan.as_secs(),
    );
    let _ = writeln!(
        out,
        "  \"completed\": {}, \"shed\": {}, \"unservable\": {},",
        report.completed,
        report.shed(),
        report.unservable,
    );

    // Per-class slices: completions AND shed counts, attributed.
    out.push_str("  \"classes\": [");
    for (i, class) in report.classes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"class\": \"{}\", \"completed\": {}, \"rejected\": {}, \
             \"dropped\": {}, \"timed_out\": {}, \"shed\": {}, \"slo_violations\": {}, \
             \"attainment\": {:.6}, \"p50_ms\": ",
            class.class.name(),
            class.completed,
            class.rejected,
            class.dropped,
            class.timed_out,
            class.shed(),
            class.slo_violations,
            class.attainment(),
        );
        let quantile_ms = |q: f64| {
            if class.latency.count() == 0 {
                SimDuration::ZERO
            } else {
                class.latency.quantile(q)
            }
        };
        push_ms(&mut out, quantile_ms(0.50));
        out.push_str(", \"p99_ms\": ");
        push_ms(&mut out, quantile_ms(0.99));
        out.push('}');
    }
    out.push_str("\n  ],\n");

    // The windowed series.
    out.push_str("  \"windows\": [");
    let mut first = true;
    for (index, window) in report.series.windows() {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "\n    {{\"index\": {index}, \"start_secs\": {:.9}, \"arrivals\": {}, \
             \"completions\": {}, \"shed\": {}, \"queue_depth_peak\": {}, \"classes\": {{",
            report.series.window_start(index).as_secs(),
            window.arrivals,
            window.completions(),
            window.shed(),
            window.queue_depth_peak,
        );
        for (i, (class, slice)) in window.classes.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "\"{class}\": {{\"completions\": {}, \"shed\": {}, \"violations\": {}, \
                 \"attainment\": {:.6}}}",
                slice.completions,
                slice.shed,
                slice.violations,
                slice.attainment(),
            );
        }
        out.push_str("}, \"busy_secs\": {");
        for (i, (device, busy)) in window.busy.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{device}\": {:.9}", busy.as_secs());
        }
        out.push_str("}}");
    }
    out.push_str("\n  ],\n");

    // Budget-burn alerts.
    out.push_str("  \"alerts\": [");
    for (i, alert) in report.alerts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"window\": {}, \"start_secs\": {:.9}, \"class\": \"{}\", \
             \"attainment\": {:.6}, \"burn_rate\": {:.6}}}",
            alert.window,
            alert.at.as_secs(),
            alert.class,
            alert.attainment,
            alert.burn_rate,
        );
    }
    out.push_str("\n  ],\n");

    // Slowest requests with stage breakdowns.
    out.push_str("  \"slowest\": [");
    for (i, slow) in slowest(report, opts.top_n).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"id\": {}, \"class\": \"{}\", \"model\": {}, \"records\": {},\n     ",
            slow.id, slow.class, slow.model, slow.records,
        );
        for (j, (key, v)) in [
            ("latency_ms", slow.latency),
            ("queue_wait_ms", slow.queue_wait),
            ("prepare_ms", slow.prepare),
            ("setup_ms", slow.setup),
            ("transfer_ms", slow.transfer),
            ("compute_ms", slow.compute),
            ("drain_ms", slow.drain),
        ]
        .into_iter()
        .enumerate()
        {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{key}\": ");
            push_ms(&mut out, v);
        }
        out.push('}');
    }
    out.push_str("\n  ]\n}\n");
    validate(&out).expect("harness emitted an invalid run report");
    out
}

/// Renders the human-readable summary.
pub fn to_text(report: &ServingReport, opts: &RunReportOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "run report: {} queries @ {RATE_QPS:.0} qps (seed {SEED}, FPGA-only, queue 32)",
        opts.queries(),
    );
    let _ = writeln!(
        out,
        "  completed {} | shed {} | unservable {} | makespan {:.3} s | {} windows of {:.0} ms",
        report.completed,
        report.shed(),
        report.unservable,
        report.makespan.as_secs(),
        report.series.len(),
        report.series.window_len().as_secs() * 1e3,
    );
    out.push_str("\nper-class outcome (completed AND shed keep class attribution):\n");
    for class in &report.classes {
        let _ = writeln!(
            out,
            "  {:<12} completed {:>5}  shed {:>5} (rejected {}, dropped {}, timed out {})  \
             attainment {:>7.3}%",
            class.class.name(),
            class.completed,
            class.shed(),
            class.rejected,
            class.dropped,
            class.timed_out,
            class.attainment() * 100.0,
        );
    }
    out.push_str("\nwindows:\n");
    for (index, window) in report.series.windows() {
        let _ = writeln!(
            out,
            "  [{index:>3}] t={:>7.3}s arrivals {:>4} completions {:>4} shed {:>4} \
             peak queue {:>3}",
            report.series.window_start(index).as_secs(),
            window.arrivals,
            window.completions(),
            window.shed(),
            window.queue_depth_peak,
        );
    }
    if report.alerts.is_empty() {
        out.push_str("\nno SLO budget-burn alerts\n");
    } else {
        let _ = writeln!(out, "\nSLO budget-burn alerts ({}):", report.alerts.len());
        for alert in &report.alerts {
            let _ = writeln!(
                out,
                "  window {:>3} @ {:>7.3}s  {:<12} attainment {:>7.3}%  burn {:>6.1}x",
                alert.window,
                alert.at.as_secs(),
                alert.class,
                alert.attainment * 100.0,
                alert.burn_rate,
            );
        }
    }
    let slow = slowest(report, opts.top_n);
    let _ = writeln!(out, "\nslowest {} request(s):", slow.len());
    for s in &slow {
        let _ = writeln!(
            out,
            "  #{:<4} {:<12} model {:>2} x{:>7} records  latency {:>9.3} ms = \
             queue {:.3} + prepare {:.3} + setup {:.3} + transfer {:.3} + \
             compute {:.3} + drain {:.3}",
            s.id,
            s.class,
            s.model,
            s.records,
            s.latency.as_secs() * 1e3,
            s.queue_wait.as_secs() * 1e3,
            s.prepare.as_secs() * 1e3,
            s.setup.as_secs() * 1e3,
            s.transfer.as_secs() * 1e3,
            s.compute.as_secs() * 1e3,
            s.drain.as_secs() * 1e3,
        );
    }
    out
}

fn req_f64(v: &JsonValue, key: &str, what: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("{what}: missing numeric \"{key}\""))
}

/// Checks that `text` is a well-formed run report with the content the
/// acceptance gate requires: at least two time windows, an attainment
/// number for every class, and at least one slowest-request breakdown.
///
/// # Errors
///
/// Returns a description of the first structural problem found.
pub fn validate(text: &str) -> Result<(), String> {
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    match doc.get("schema").and_then(JsonValue::as_str) {
        Some("mlscore/run-report/v1") => {}
        other => return Err(format!("unexpected schema {other:?}")),
    }
    let classes = doc
        .get("classes")
        .and_then(JsonValue::as_array)
        .ok_or("missing \"classes\" array")?;
    if classes.len() < 2 {
        return Err(format!("expected both classes, got {}", classes.len()));
    }
    for (i, class) in classes.iter().enumerate() {
        let what = format!("class {i}");
        let attainment = req_f64(class, "attainment", &what)?;
        if !(0.0..=1.0).contains(&attainment) {
            return Err(format!("{what}: attainment {attainment} outside [0, 1]"));
        }
        for key in ["completed", "rejected", "dropped", "timed_out", "shed"] {
            req_f64(class, key, &what)?;
        }
    }
    let windows = doc
        .get("windows")
        .and_then(JsonValue::as_array)
        .ok_or("missing \"windows\" array")?;
    if windows.len() < 2 {
        return Err(format!("expected >= 2 time windows, got {}", windows.len()));
    }
    let slowest = doc
        .get("slowest")
        .and_then(JsonValue::as_array)
        .ok_or("missing \"slowest\" array")?;
    if slowest.is_empty() {
        return Err("no slowest-request breakdown".to_string());
    }
    for (i, slow) in slowest.iter().enumerate() {
        let what = format!("slowest {i}");
        let latency = req_f64(slow, "latency_ms", &what)?;
        let mut stages = 0.0;
        for key in [
            "queue_wait_ms",
            "prepare_ms",
            "setup_ms",
            "transfer_ms",
            "compute_ms",
            "drain_ms",
        ] {
            stages += req_f64(slow, key, &what)?;
        }
        // The stage split must re-sum to the latency (rendered at 1 µs
        // resolution, so allow that much slack per stage).
        if (stages - latency).abs() > 1e-2 {
            return Err(format!(
                "{what}: stages sum to {stages:.6} ms but latency is {latency:.6} ms"
            ));
        }
    }
    doc.get("alerts")
        .and_then(JsonValue::as_array)
        .ok_or("missing \"alerts\" array")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_report_validates_and_is_deterministic() {
        let opts = RunReportOptions {
            quick: true,
            top_n: 5,
        };
        let report = run(&opts);
        let json = to_json(&report, &opts);
        assert_eq!(validate(&json), Ok(()));
        // Simulated time: a rerun renders byte-identically.
        let again = to_json(&run(&opts), &opts);
        assert_eq!(json, again);
        assert_eq!(to_text(&report, &opts), to_text(&run(&opts), &opts));
    }

    #[test]
    fn overload_report_has_windows_alerts_and_slow_requests() {
        let opts = RunReportOptions {
            quick: true,
            top_n: 3,
        };
        let report = run(&opts);
        assert!(report.series.len() >= 2, "overload spans several windows");
        assert!(
            !report.alerts.is_empty(),
            "50 ms interactive SLO under FPGA overload must burn budget"
        );
        let slow = slowest(&report, 3);
        assert_eq!(slow.len(), 3);
        // Latency-descending, and the split re-sums to the latency.
        assert!(slow[0].latency >= slow[1].latency);
        for s in &slow {
            let sum = s.queue_wait + s.prepare + s.setup + s.transfer + s.compute + s.drain;
            assert!(
                (sum.as_secs() - s.latency.as_secs()).abs() < 1e-9,
                "stages {sum:?} vs latency {:?}",
                s.latency
            );
        }
        let text = to_text(&report, &opts);
        assert!(text.contains("per-class outcome"));
        assert!(text.contains("slowest 3 request(s):"));
    }
}
