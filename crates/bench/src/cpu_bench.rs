//! Wall-clock CPU scoring benchmark trajectory (`repro bench`).
//!
//! Unlike the figure benches, which replay the *modelled* timing, this
//! harness measures the library's real execution engines with
//! `std::time::Instant` and writes the results to `BENCH_cpu_scoring.json`
//! so every future PR has a throughput trajectory to beat.
//!
//! The sweep covers {iris, higgs-like} × {8, 128 trees} × {10k, 100k
//! records} × {1, 4, host threads}, comparing two executions of the same
//! model over the same frame:
//!
//! * **naive** — the growth seed's per-record path: record-major
//!   pointer-tree traversal with a fresh `vec![0u32; n_classes]` vote
//!   buffer allocated for every record.
//! * **blocked** — the [`mlscore_exec`] kernels on a work-stealing
//!   [`ExecPool`]: the lockstep flat-layout kernel
//!   ([`kernel::score_flat_batch`]) and the blocked pointer-tree kernel
//!   ([`kernel::score_forest_batch`]), both tiling records × trees with
//!   per-thread reusable scratch.
//!
//! Every blocked measurement is asserted bit-exact against the naive
//! reference before its throughput is reported. The emitted JSON is
//! round-tripped through [`mlscore_telemetry::json::parse`] before it is
//! handed back, so a malformed report can never be written to disk.

use std::sync::Arc;
use std::time::{Duration, Instant};

use mlscore_backend::{ArtifactCache, CacheOutcome, OnnxCpu, ScoringBackend, SklearnCpu};
use mlscore_data::{Dataset, FrameScanner, NormParams, NormalizeStream};
use mlscore_exec::{
    kernel, pool::default_threads, score_quickscorer_batch, score_simd_batch, ExecPool, FlatImage,
    ImageLayout, Kernel, KernelChoice, RunConfig, SimdLevel,
};
use mlscore_forest::{FlatForest, ForestConfig, ModelBundle, Predictions, RandomForest, Task};
use mlscore_pipeline::QueryPipeline;
use mlscore_sim::Stage;
use mlscore_telemetry::json::{self, write_escaped, JsonValue};

/// Tree depth used throughout the sweep (the paper's evaluation depth).
pub const SWEEP_DEPTH: usize = 10;

/// Record cap for the QuickScorer measurement. On the sweep's *full*
/// depth-10 trees QuickScorer is deliberately pessimal (16 bitvector words
/// per mask AND — the cost model never picks it there), so timing the full
/// 100k-record cell would take minutes for a number whose only job is to
/// show the crossover. The cap keeps the cell honest (records/second is
/// size-independent at these batch sizes) and the sweep fast; the JSON
/// records the cap as `quickscorer_records`.
pub const QS_RECORD_CAP: usize = 2_000;

/// Options for one harness run.
#[derive(Debug, Clone, Copy)]
pub struct BenchOptions {
    /// Shrink record counts and iteration counts to a CI smoke run.
    pub quick: bool,
    /// Restrict the vector-tier measurements to one kernel
    /// (`repro bench --kernel`); `None` measures every kernel.
    pub kernel: Option<Kernel>,
}

impl BenchOptions {
    /// Record counts for the sweep.
    fn record_counts(&self) -> [usize; 2] {
        if self.quick {
            [500, 2_000]
        } else {
            [10_000, 100_000]
        }
    }

    /// Timed iterations per measurement (the minimum is kept).
    fn iters(&self) -> usize {
        if self.quick {
            1
        } else {
            3
        }
    }
}

/// Per-kernel throughput at one worker count.
#[derive(Debug, Clone, Copy)]
pub struct ThreadRun {
    /// Worker count the executor ran with.
    pub threads: usize,
    /// Lockstep flat-layout kernel throughput, records/second.
    pub flat_rps: f64,
    /// Blocked pointer-tree kernel throughput, records/second.
    pub forest_rps: f64,
    /// Explicit-SIMD lane walker throughput at the detected tier,
    /// records/second (`None` when `--kernel` excluded it).
    pub simd_rps: Option<f64>,
    /// QuickScorer bitvector throughput, records/second, measured on the
    /// [`QS_RECORD_CAP`]-capped sub-batch (`None` when excluded).
    pub quickscorer_rps: Option<f64>,
    /// Best measured kernel over the naive seed path:
    /// `max(flat, forest, simd) / naive_rps` (QuickScorer excluded — its
    /// cell runs on a capped batch).
    pub speedup: f64,
    /// Whether every measured kernel reproduced the naive predictions
    /// exactly.
    pub bit_exact: bool,
}

/// One (dataset, forest size, record count) cell of the sweep.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// Dataset name (`"iris"` / `"higgs"`).
    pub dataset: String,
    /// Trees in the forest.
    pub trees: usize,
    /// Tree depth.
    pub depth: usize,
    /// Records scored per call.
    pub records: usize,
    /// Seed-style per-record path throughput, records/second.
    pub naive_rps: f64,
    /// The cost model's verdict for this shape at the full batch size.
    pub choice: KernelChoice,
    /// Prepared-layout footprint (walk trees, SIMD image, QuickScorer).
    pub layout: ImageLayout,
    /// Records the QuickScorer cell actually scored (the cap).
    pub qs_records: usize,
    /// Per-kernel results, one per thread count.
    pub runs: Vec<ThreadRun>,
}

impl CaseResult {
    /// The best measured speedup over the naive path across thread counts.
    pub fn best_speedup(&self) -> f64 {
        self.runs.iter().map(|r| r.speedup).fold(0.0, f64::max)
    }
}

/// Warm-vs-cold artifact-cache measurement over the end-to-end pipeline:
/// the same HIGGS-scale bundle executed twice through a cached
/// [`QueryPipeline`], once compiling (miss) and once cache-resident (hit).
#[derive(Debug, Clone)]
pub struct CacheBench {
    /// Backend the pair ran on.
    pub backend: String,
    /// Trees in the model.
    pub trees: usize,
    /// Tree depth.
    pub depth: usize,
    /// Records per query.
    pub records: usize,
    /// Simulated end-to-end total of the cold (cache-miss) query, seconds.
    pub cold_total_secs: f64,
    /// Simulated end-to-end total of the warm (cache-hit) query, seconds.
    pub warm_total_secs: f64,
    /// Measured wall-clock of one compile pass (deserialize + lower), ms.
    pub compile_ms: f64,
    /// Cache hit count after the pair.
    pub hits: u64,
    /// Cache miss count after the pair.
    pub misses: u64,
}

impl CacheBench {
    /// End-to-end warm speedup: cold total over warm total.
    pub fn warm_speedup(&self) -> f64 {
        self.cold_total_secs / self.warm_total_secs.max(1e-12)
    }
}

/// Runs the warm/cold pair: one cold query that compiles and caches the
/// model, one warm query that hits the artifact cache, both checked for
/// identical predictions.
///
/// # Panics
///
/// Panics if the cold query is not a miss, the warm query is not a hit, or
/// the two disagree on predictions — any of which is a cache bug.
pub fn run_cache_pair(opts: &BenchOptions) -> CacheBench {
    let records = opts.record_counts()[1];
    let data = Dataset::higgs(records, 3).normalized();
    let forest = RandomForest::synthetic_full(
        &ForestConfig::classification(128, 28, 2).with_depth(SWEEP_DEPTH),
        7,
    );
    let bundle = ModelBundle::serialize(&forest);
    let backend = OnnxCpu::single_thread();
    // Measure the compile wall-clock on its own, so the number is not
    // entangled with the pipeline's scoring work.
    let (_, timing) = mlscore_backend::compile_timed(&backend, &bundle).expect("compile");
    let compile_ms = (timing.deserialize + timing.lower).as_millis();

    let cache = Arc::new(ArtifactCache::new(4));
    let pipeline = QueryPipeline::new(backend).with_cache(Arc::clone(&cache));
    let cold = pipeline.execute(&bundle, data.frame()).expect("cold query");
    let warm = pipeline.execute(&bundle, data.frame()).expect("warm query");
    assert_eq!(cold.cache, CacheOutcome::Miss, "first query must compile");
    assert_eq!(warm.cache, CacheOutcome::Hit, "second query must hit");
    assert_eq!(
        warm.predictions, cold.predictions,
        "warm path changed results"
    );
    let stats = cache.stats();
    CacheBench {
        backend: pipeline.backend().name().to_string(),
        trees: 128,
        depth: SWEEP_DEPTH,
        records,
        cold_total_secs: cold.total().as_secs(),
        warm_total_secs: warm.total().as_secs(),
        compile_ms,
        hits: stats.hits,
        misses: stats.misses,
    }
}

/// Chunk sizes (rows) the fused shmoo sweeps: the L2-sized default and an
/// L3-sized variant that shows the handoff tax shrinking with chunk count.
pub const FUSED_CHUNK_SWEEP: [usize; 2] = [512, 4_096];

/// One cell of the fused-vs-staged marshaling-tax shmoo: the same raw
/// HIGGS-scale frame scored twice on a warm (cache-resident) model — once
/// over the staged path (materialize a normalized copy, hand the whole
/// batch over) and once over the fused [`RecordStream`] path
/// ([`NormalizeStream`] over a [`FrameScanner`] feeding
/// [`ScoringBackend::score_prepared_stream`]).
///
/// [`RecordStream`]: mlscore_data::RecordStream
#[derive(Debug, Clone)]
pub struct FusedCell {
    /// Backend the pair ran on.
    pub backend: String,
    /// Trees in the model.
    pub trees: usize,
    /// Tree depth.
    pub depth: usize,
    /// Records scored per query.
    pub records: usize,
    /// Rows per pulled chunk.
    pub chunk_rows: usize,
    /// Chunks the fused pass actually pulled.
    pub n_chunks: usize,
    /// Modelled staged marshal tax (warm): inbound data transfer plus the
    /// separate data-pre-processing stage, seconds.
    pub staged_tax_secs: f64,
    /// Modelled fused tax (warm): per-chunk handoff only, seconds.
    pub fused_tax_secs: f64,
    /// Fraction of the staged tax the fused path eliminates,
    /// `1 - fused/staged`.
    pub eliminated_frac: f64,
    /// Measured wall-clock of the staged path (fit + materialize the
    /// normalized copy, then one whole-batch scoring call), seconds.
    pub staged_wall_secs: f64,
    /// Measured wall-clock of the fused path (fit, then stream normalized
    /// chunks straight into the kernel), seconds.
    pub fused_wall_secs: f64,
    /// Whether the fused predictions matched the staged predictions
    /// exactly.
    pub bit_exact: bool,
}

/// Runs `f` once as warmup, then `iters` timed passes, keeping the
/// fastest. Returns seconds.
fn measure_secs(iters: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = Duration::MAX;
    for _ in 0..iters.max(1) {
        // analyze: allow(D001, reason="this IS the benchmark: measuring the fused-vs-staged wall clock is the point")
        let t = Instant::now();
        f();
        best = best.min(t.elapsed());
    }
    best.as_secs_f64()
}

/// Measures the fused-vs-staged cells for one backend: every record count
/// in `record_counts` crossed with [`FUSED_CHUNK_SWEEP`], on the sweep's
/// 128-tree depth-10 HIGGS model, checked bit-exact before timing.
fn fused_cells_for<B: ScoringBackend>(
    backend: B,
    bundle: &ModelBundle,
    record_counts: &[usize],
    iters: usize,
) -> Vec<FusedCell> {
    let pipeline = QueryPipeline::new(backend);
    let model = pipeline.backend().prepare(bundle).expect("compile");
    let model_bytes = model.model_bytes() as u64;
    let mut cells = Vec::new();
    for &records in record_counts {
        let raw = Dataset::higgs(records, 3);
        let frame = raw.frame();
        // The staged reference: fit + materialize the normalized copy,
        // then score the whole batch in one prepared call.
        let staged_preds = pipeline
            .backend()
            .score_prepared(&model, &frame.normalized())
            .expect("staged scoring");
        for chunk_rows in FUSED_CHUNK_SWEEP {
            let mut stream =
                NormalizeStream::new(FrameScanner::new(frame, chunk_rows), NormParams::fit(frame));
            let out = pipeline
                .backend()
                .score_prepared_stream(&model, &mut stream)
                .expect("fused scoring");
            let bit_exact = out.predictions == staged_preds && out.rows == records;
            let n_chunks = out.chunks.len();

            let staged_wall = measure_secs(iters, || {
                let preds = pipeline
                    .backend()
                    .score_prepared(&model, &frame.normalized())
                    .expect("staged scoring");
                std::hint::black_box(&preds);
            });
            let fused_wall = measure_secs(iters, || {
                let mut stream = NormalizeStream::new(
                    FrameScanner::new(frame, chunk_rows),
                    NormParams::fit(frame),
                );
                let out = pipeline
                    .backend()
                    .score_prepared_stream(&model, &mut stream)
                    .expect("fused scoring");
                std::hint::black_box(&out);
            });

            // Modelled warm-path tax on each side: the model is
            // cache-resident in both, so the difference is pure data
            // movement (Fig. 11's marshal + pre-processing stages).
            let staged = pipeline.estimate_warm(model.stats(), model_bytes, records as u64);
            let fused = pipeline.estimate_fused_warm(
                model.stats(),
                model_bytes,
                records as u64,
                chunk_rows,
            );
            let staged_tax =
                (staged.get(Stage::DataTransfer) + staged.get(Stage::DataPreprocessing)).as_secs();
            let fused_tax =
                (fused.get(Stage::DataTransfer) + fused.get(Stage::DataPreprocessing)).as_secs();
            cells.push(FusedCell {
                backend: pipeline.backend().name().to_string(),
                trees: 128,
                depth: SWEEP_DEPTH,
                records,
                chunk_rows,
                n_chunks,
                staged_tax_secs: staged_tax,
                fused_tax_secs: fused_tax,
                eliminated_frac: 1.0 - fused_tax / staged_tax.max(1e-12),
                staged_wall_secs: staged_wall,
                fused_wall_secs: fused_wall,
                bit_exact,
            });
        }
    }
    cells
}

/// Runs the fused-vs-staged shmoo across both CPU backends, printing one
/// progress line per cell.
pub fn run_fused(opts: &BenchOptions) -> Vec<FusedCell> {
    let forest = RandomForest::synthetic_full(
        &ForestConfig::classification(128, 28, 2).with_depth(SWEEP_DEPTH),
        7,
    );
    let bundle = ModelBundle::serialize(&forest);
    let counts = opts.record_counts();
    let iters = opts.iters();
    let mut cells = fused_cells_for(
        SklearnCpu::with_threads(default_threads()),
        &bundle,
        &counts,
        iters,
    );
    cells.extend(fused_cells_for(
        OnnxCpu::with_threads(default_threads()),
        &bundle,
        &counts,
        iters,
    ));
    for cell in &cells {
        println!(
            "fused {:>16} | {:>6} records / {:>4}-row chunks ({:>3} pulls) | \
             tax {:>9.3}ms -> {:>7.3}ms ({:.2}% eliminated) | \
             wall {:>8.3}ms -> {:>8.3}ms{}",
            cell.backend,
            cell.records,
            cell.chunk_rows,
            cell.n_chunks,
            cell.staged_tax_secs * 1e3,
            cell.fused_tax_secs * 1e3,
            cell.eliminated_frac * 100.0,
            cell.staged_wall_secs * 1e3,
            cell.fused_wall_secs * 1e3,
            if cell.bit_exact { "" } else { "  MISMATCH" }
        );
    }
    cells
}

/// The seed's scoring path, reproduced verbatim as the baseline: for every
/// record, allocate a fresh vote buffer and walk every pointer tree.
pub fn naive_predict(forest: &RandomForest, records: &[f32]) -> Predictions {
    let n_features = forest.n_features();
    assert_eq!(records.len() % n_features, 0);
    let rows = records.chunks_exact(n_features);
    match forest.task() {
        Task::Classification { n_classes } => {
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                // One heap allocation per record — the cost the executor's
                // reusable scratch removes.
                let mut votes = vec![0u32; n_classes as usize];
                for tree in forest.trees() {
                    if let Some(c) = tree.predict(row).as_class() {
                        votes[c as usize] += 1;
                    }
                }
                out.push(RandomForest::majority(&votes));
            }
            Predictions::Classes(out)
        }
        Task::Regression => {
            let n_trees = forest.n_trees() as f32;
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                let sum: f32 = forest
                    .trees()
                    .iter()
                    .map(|t| t.predict(row).as_value().expect("regression leaf"))
                    .sum();
                out.push(sum / n_trees);
            }
            Predictions::Values(out)
        }
    }
}

/// Runs `f` once as warmup, then `iters` timed passes, keeping the
/// fastest. Returns records/second.
fn measure_rps(records: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = Duration::MAX;
    for _ in 0..iters.max(1) {
        // analyze: allow(D001, reason="this IS the benchmark: measuring host scoring throughput is the point")
        let t = Instant::now();
        f();
        best = best.min(t.elapsed());
    }
    records as f64 / best.as_secs_f64().max(1e-12)
}

/// Thread counts for the sweep: `{1, 4, host}` with duplicates removed.
fn thread_sweep() -> Vec<usize> {
    let mut counts = vec![1, 4, default_threads()];
    counts.sort_unstable();
    counts.dedup();
    counts
}

/// Truncates classification predictions to the first `n` records.
fn truncate_preds(preds: &Predictions, n: usize) -> Predictions {
    match preds {
        Predictions::Classes(c) => Predictions::Classes(c[..n.min(c.len())].to_vec()),
        Predictions::Values(v) => Predictions::Values(v[..n.min(v.len())].to_vec()),
    }
}

/// Measures one sweep cell.
fn run_case(name: &str, trees: usize, records: usize, opts: &BenchOptions) -> CaseResult {
    let (data, n_features, n_classes) = match name {
        "iris" => (Dataset::iris(records, 3).normalized(), 4, 3),
        _ => (Dataset::higgs(records, 3).normalized(), 28, 2),
    };
    let forest = RandomForest::synthetic_full(
        &ForestConfig::classification(trees, n_features, n_classes).with_depth(SWEEP_DEPTH),
        7,
    );
    let flat = FlatForest::from_forest(&forest, forest.max_depth()).expect("flat encoding");
    let image = FlatImage::from_forest(&forest, forest.max_depth()).expect("flat image");
    let frame = data.frame();
    let iters = opts.iters();
    let level = SimdLevel::detect();
    let choice = KernelChoice::choose(image.stats(), records, level);
    let layout = image.layout();
    let measure_simd = matches!(opts.kernel, None | Some(Kernel::Simd));
    let measure_qs = matches!(opts.kernel, None | Some(Kernel::Quickscorer));

    // QuickScorer runs on a capped sub-batch (see [`QS_RECORD_CAP`]).
    let qs_records = records.min(QS_RECORD_CAP);
    let qs_frame = mlscore_data::TabularFrame::from_rows(
        frame.as_slice()[..qs_records * n_features].to_vec(),
        n_features,
    )
    .expect("sub-frame");

    let reference = naive_predict(&forest, frame.as_slice());
    let qs_reference = truncate_preds(&reference, qs_records);
    let naive_rps = measure_rps(records, iters, || {
        let preds = naive_predict(&forest, frame.as_slice());
        std::hint::black_box(&preds);
    });

    let mut runs = Vec::new();
    for threads in thread_sweep() {
        // A dedicated pool sized to the requested width, so the sharding is
        // real even when the host has fewer cores than the sweep point.
        let pool = ExecPool::new(threads);
        let cfg = RunConfig::for_threads(threads);
        let (flat_preds, _) = kernel::score_flat_batch(&flat, frame, &pool, &cfg);
        let (forest_preds, _) = kernel::score_forest_batch(&forest, frame, &pool, &cfg);
        let mut bit_exact = flat_preds == reference && forest_preds == reference;
        let flat_rps = measure_rps(records, iters, || {
            let out = kernel::score_flat_batch(&flat, frame, &pool, &cfg);
            std::hint::black_box(&out);
        });
        let forest_rps = measure_rps(records, iters, || {
            let out = kernel::score_forest_batch(&forest, frame, &pool, &cfg);
            std::hint::black_box(&out);
        });
        let simd_rps = measure_simd.then(|| {
            let (simd_preds, _) = score_simd_batch(&image, frame, &pool, &cfg, level);
            bit_exact &= simd_preds == reference;
            measure_rps(records, iters, || {
                let out = score_simd_batch(&image, frame, &pool, &cfg, level);
                std::hint::black_box(&out);
            })
        });
        let quickscorer_rps = measure_qs.then(|| {
            let (qs_preds, _) = score_quickscorer_batch(&image, &qs_frame, &pool, &cfg);
            bit_exact &= qs_preds == qs_reference;
            measure_rps(qs_records, iters, || {
                let out = score_quickscorer_batch(&image, &qs_frame, &pool, &cfg);
                std::hint::black_box(&out);
            })
        });
        let best = flat_rps.max(forest_rps).max(simd_rps.unwrap_or(0.0));
        runs.push(ThreadRun {
            threads,
            flat_rps,
            forest_rps,
            simd_rps,
            quickscorer_rps,
            speedup: best / naive_rps,
            bit_exact,
        });
    }

    CaseResult {
        dataset: name.to_string(),
        trees,
        depth: SWEEP_DEPTH,
        records,
        naive_rps,
        choice,
        layout,
        qs_records,
        runs,
    }
}

/// Runs the full sweep, printing one progress line per cell plus the cost
/// model's kernel pick (the line `ci.sh` greps).
pub fn run(opts: &BenchOptions) -> Vec<CaseResult> {
    let mut cases = Vec::new();
    for dataset in ["iris", "higgs"] {
        for trees in [8usize, 128] {
            for records in opts.record_counts() {
                let case = run_case(dataset, trees, records, opts);
                let best = case
                    .runs
                    .iter()
                    .max_by(|a, b| a.speedup.total_cmp(&b.speedup))
                    .expect("at least one thread count");
                println!(
                    "{:>5} x{:<3} trees, {:>6} records | naive {:>10.0} rec/s | \
                     best {:>10.0} rec/s ({}th, {:.2}x){}",
                    case.dataset,
                    case.trees,
                    case.records,
                    case.naive_rps,
                    best.flat_rps
                        .max(best.forest_rps)
                        .max(best.simd_rps.unwrap_or(0.0)),
                    best.threads,
                    best.speedup,
                    if case.runs.iter().all(|r| r.bit_exact) {
                        ""
                    } else {
                        "  MISMATCH"
                    }
                );
                println!(
                    "      kernel pick: {}@{} (blocked {:.0}ns, simd {:.0}ns, \
                     quickscorer {:.0}ns per record; qs layout {} items x{} words, {} KiB){}",
                    case.choice.kernel.name(),
                    case.choice.level.name(),
                    case.choice.blocked_ns,
                    case.choice.simd_ns,
                    case.choice.quickscorer_ns,
                    case.layout.quickscorer_items,
                    case.layout.quickscorer_words_per_tree,
                    case.layout.quickscorer_bytes / 1024,
                    match opts.kernel {
                        Some(k) => format!("  [forced: {}]", k.name()),
                        None => String::new(),
                    }
                );
                cases.push(case);
            }
        }
    }
    cases
}

/// Pushes `v` as a JSON number with enough precision for throughputs.
fn push_num(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v:.3}"));
    } else {
        out.push_str("null");
    }
}

/// Pushes `v` as a JSON number with sub-microsecond precision — the fused
/// handoff taxes are hundreds of microseconds, which `push_num`'s
/// millisecond precision would round to zero.
fn push_secs(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v:.9}"));
    } else {
        out.push_str("null");
    }
}

/// Serializes sweep results to the `BENCH_cpu_scoring.json` document.
///
/// The output is validated with [`validate`] before being returned.
///
/// # Panics
///
/// Panics if the writer produced a document the shared JSON parser
/// rejects — that would be a bug in this module, not a runtime condition.
pub fn to_json(
    cases: &[CaseResult],
    cache: &CacheBench,
    fused: &[FusedCell],
    opts: &BenchOptions,
) -> String {
    let cfg = RunConfig::default();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"mlscore/bench-cpu-scoring/v1\",\n");
    out.push_str("  \"schema_version\": 4,\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if opts.quick { "quick" } else { "full" }
    ));
    out.push_str(&format!(
        "  \"simd_level\": \"{}\",\n",
        SimdLevel::detect().name()
    ));
    out.push_str(&format!(
        "  \"kernel_filter\": \"{}\",\n",
        opts.kernel.map_or("auto", Kernel::name)
    ));
    out.push_str(&format!("  \"host_threads\": {},\n", default_threads()));
    out.push_str(&format!("  \"record_block\": {},\n", cfg.record_block));
    out.push_str(&format!("  \"tree_block\": {},\n", cfg.tree_block));
    out.push_str(&format!("  \"lanes\": {},\n", kernel::LANES));
    out.push_str("  \"cache\": {\"backend\": ");
    write_escaped(&mut out, &cache.backend);
    out.push_str(&format!(
        ", \"trees\": {}, \"depth\": {}, \"records\": {},\n",
        cache.trees, cache.depth, cache.records
    ));
    out.push_str("            \"cold_total_secs\": ");
    push_num(&mut out, cache.cold_total_secs);
    out.push_str(", \"warm_total_secs\": ");
    push_num(&mut out, cache.warm_total_secs);
    out.push_str(", \"warm_speedup\": ");
    push_num(&mut out, cache.warm_speedup());
    out.push_str(", \"compile_ms\": ");
    push_num(&mut out, cache.compile_ms);
    out.push_str(&format!(
        ", \"hits\": {}, \"misses\": {}}},\n",
        cache.hits, cache.misses
    ));
    out.push_str("  \"fused\": {\"cells\": [");
    for (i, cell) in fused.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"backend\": ");
        write_escaped(&mut out, &cell.backend);
        out.push_str(&format!(
            ", \"trees\": {}, \"depth\": {}, \"records\": {}, \
             \"chunk_rows\": {}, \"n_chunks\": {},\n     \"staged_tax_secs\": ",
            cell.trees, cell.depth, cell.records, cell.chunk_rows, cell.n_chunks
        ));
        push_secs(&mut out, cell.staged_tax_secs);
        out.push_str(", \"fused_tax_secs\": ");
        push_secs(&mut out, cell.fused_tax_secs);
        out.push_str(", \"eliminated_frac\": ");
        push_secs(&mut out, cell.eliminated_frac);
        out.push_str(",\n     \"staged_wall_secs\": ");
        push_secs(&mut out, cell.staged_wall_secs);
        out.push_str(", \"fused_wall_secs\": ");
        push_secs(&mut out, cell.fused_wall_secs);
        out.push_str(&format!(", \"bit_exact\": {}}}", cell.bit_exact));
    }
    out.push_str("\n  ]},\n");
    out.push_str("  \"cases\": [");
    for (i, case) in cases.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"dataset\": ");
        write_escaped(&mut out, &case.dataset);
        out.push_str(&format!(
            ", \"trees\": {}, \"depth\": {}, \"records\": {},\n     \"naive_records_per_sec\": ",
            case.trees, case.depth, case.records
        ));
        push_num(&mut out, case.naive_rps);
        out.push_str(&format!(
            ",\n     \"chosen_kernel\": \"{}\", \"chosen_level\": \"{}\",\n     \
             \"predicted_ns_per_record\": {{\"blocked\": ",
            case.choice.kernel.name(),
            case.choice.level.name()
        ));
        push_num(&mut out, case.choice.blocked_ns);
        out.push_str(", \"simd\": ");
        push_num(&mut out, case.choice.simd_ns);
        out.push_str(", \"quickscorer\": ");
        push_num(&mut out, case.choice.quickscorer_ns);
        out.push_str(&format!(
            "}},\n     \"quickscorer_records\": {},",
            case.qs_records
        ));
        out.push_str("\n     \"runs\": [");
        for (j, run) in case.runs.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n       {{\"threads\": {}, ", run.threads));
            out.push_str("\"flat_records_per_sec\": ");
            push_num(&mut out, run.flat_rps);
            out.push_str(", \"forest_records_per_sec\": ");
            push_num(&mut out, run.forest_rps);
            if let Some(rps) = run.simd_rps {
                out.push_str(", \"simd_records_per_sec\": ");
                push_num(&mut out, rps);
            }
            if let Some(rps) = run.quickscorer_rps {
                out.push_str(", \"quickscorer_records_per_sec\": ");
                push_num(&mut out, rps);
            }
            out.push_str(", \"speedup_vs_naive\": ");
            push_num(&mut out, run.speedup);
            out.push_str(&format!(", \"bit_exact\": {}}}", run.bit_exact));
        }
        out.push_str("\n     ]}");
    }
    out.push_str("\n  ]\n}\n");
    validate(&out).expect("harness emitted invalid JSON");
    out
}

/// Checks that `text` is a well-formed, non-empty benchmark report.
///
/// Used both as the harness's own self-check and by `repro bench --check`
/// (the CI smoke gate) against a file on disk. Returns the case count.
///
/// # Errors
///
/// Returns a description of the first structural problem found.
pub fn validate(text: &str) -> Result<usize, String> {
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    match doc.get("schema").and_then(JsonValue::as_str) {
        Some("mlscore/bench-cpu-scoring/v1") => {}
        other => return Err(format!("unexpected schema {other:?}")),
    }
    let version = match doc.get("schema_version").and_then(JsonValue::as_f64) {
        Some(v) if v >= 2.0 => v,
        other => return Err(format!("missing or stale schema_version {other:?}")),
    };
    let cache = doc.get("cache").ok_or("missing \"cache\" block")?;
    let hits = cache
        .get("hits")
        .and_then(JsonValue::as_f64)
        .ok_or("cache block: missing numeric \"hits\"")?;
    if hits < 1.0 {
        return Err(format!("cache block: expected at least 1 hit, got {hits}"));
    }
    let cold = cache
        .get("cold_total_secs")
        .and_then(JsonValue::as_f64)
        .ok_or("cache block: missing \"cold_total_secs\"")?;
    let warm = cache
        .get("warm_total_secs")
        .and_then(JsonValue::as_f64)
        .ok_or("cache block: missing \"warm_total_secs\"")?;
    if cold < warm {
        return Err(format!(
            "cache block: cold total {cold}s is cheaper than warm total {warm}s"
        ));
    }
    if version >= 4.0 {
        // v4 reports must carry the fused-vs-staged shmoo, every cell
        // bit-exact and eliminating at least 80% of the staged marshal +
        // data-pre-processing tax (the fused path's acceptance bar).
        let cells = doc
            .get("fused")
            .ok_or("missing \"fused\" block (v4)")?
            .get("cells")
            .and_then(JsonValue::as_array)
            .ok_or("fused block: missing \"cells\" array")?;
        if cells.is_empty() {
            return Err("fused block: \"cells\" is empty".to_string());
        }
        for (i, cell) in cells.iter().enumerate() {
            for key in [
                "records",
                "chunk_rows",
                "n_chunks",
                "staged_tax_secs",
                "fused_tax_secs",
                "eliminated_frac",
                "staged_wall_secs",
                "fused_wall_secs",
            ] {
                if cell.get(key).and_then(JsonValue::as_f64).is_none() {
                    return Err(format!("fused cell {i}: missing numeric \"{key}\""));
                }
            }
            if cell.get("bit_exact") != Some(&JsonValue::Bool(true)) {
                return Err(format!("fused cell {i}: not bit-exact"));
            }
            let staged_tax = cell
                .get("staged_tax_secs")
                .and_then(JsonValue::as_f64)
                .unwrap_or(0.0);
            let fused_tax = cell
                .get("fused_tax_secs")
                .and_then(JsonValue::as_f64)
                .unwrap_or(f64::MAX);
            if fused_tax > 0.2 * staged_tax {
                return Err(format!(
                    "fused cell {i}: handoff tax {fused_tax}s exceeds 20% of the \
                     staged marshal tax {staged_tax}s"
                ));
            }
            let eliminated = cell
                .get("eliminated_frac")
                .and_then(JsonValue::as_f64)
                .unwrap_or(0.0);
            if eliminated < 0.8 {
                return Err(format!(
                    "fused cell {i}: eliminated fraction {eliminated} is below the 80% bar"
                ));
            }
        }
    }
    let cases = doc
        .get("cases")
        .and_then(JsonValue::as_array)
        .ok_or("missing \"cases\" array")?;
    if cases.is_empty() {
        return Err("\"cases\" is empty".to_string());
    }
    for (i, case) in cases.iter().enumerate() {
        for key in ["trees", "records", "naive_records_per_sec"] {
            if case.get(key).and_then(JsonValue::as_f64).is_none() {
                return Err(format!("case {i}: missing numeric \"{key}\""));
            }
        }
        if version >= 3.0 {
            // v3 cells must carry the cost model's verdict and the
            // QuickScorer cap so downstream diffs stay interpretable.
            if case
                .get("chosen_kernel")
                .and_then(JsonValue::as_str)
                .is_none()
            {
                return Err(format!("case {i}: missing \"chosen_kernel\""));
            }
            if case
                .get("quickscorer_records")
                .and_then(JsonValue::as_f64)
                .is_none()
            {
                return Err(format!("case {i}: missing \"quickscorer_records\""));
            }
        }
        let runs = case
            .get("runs")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| format!("case {i}: missing \"runs\" array"))?;
        if runs.is_empty() {
            return Err(format!("case {i}: \"runs\" is empty"));
        }
        for (j, run) in runs.iter().enumerate() {
            if run.get("flat_records_per_sec").is_none() {
                return Err(format!("case {i} run {j}: missing throughput"));
            }
            if run.get("bit_exact") != Some(&JsonValue::Bool(true)) {
                return Err(format!("case {i} run {j}: not bit-exact"));
            }
        }
    }
    Ok(cases.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_predict_matches_reference_batch() {
        let forest =
            RandomForest::synthetic_full(&ForestConfig::classification(12, 4, 3).with_depth(7), 21);
        let data = Dataset::iris(97, 5).normalized();
        assert_eq!(
            naive_predict(&forest, data.frame().as_slice()),
            forest.predict_batch(data.frame().as_slice())
        );

        let reg = RandomForest::synthetic_full(&ForestConfig::regression(5, 6).with_depth(5), 3);
        let frame =
            mlscore_data::TabularFrame::from_rows((0..60).map(|i| i as f32 * 0.13).collect(), 6)
                .unwrap();
        let naive = naive_predict(&reg, frame.as_slice());
        let reference = reg.predict_batch(frame.as_slice());
        let (a, b) = (naive.as_values().unwrap(), reference.as_values().unwrap());
        assert!(a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn quick_cell_is_bit_exact_and_serializes() {
        let opts = BenchOptions {
            quick: true,
            kernel: None,
        };
        let case = run_case("iris", 8, 200, &opts);
        assert!(case.runs.iter().all(|r| r.bit_exact));
        assert!(case.naive_rps > 0.0);
        // With no kernel filter every run measures the full vector tier.
        assert!(case.runs.iter().all(|r| r.simd_rps.is_some()));
        assert!(case.runs.iter().all(|r| r.quickscorer_rps.is_some()));
        let cache = run_cache_pair(&opts);
        let fused = fused_cells_for(SklearnCpu::with_threads(2), &higgs_bundle(), &[300], 1);
        let json = to_json(std::slice::from_ref(&case), &cache, &fused, &opts);
        assert_eq!(validate(&json), Ok(1));
        assert!(json.contains("\"chosen_kernel\""));
        assert!(json.contains("\"simd_records_per_sec\""));
        assert!(json.contains("\"fused\""));
    }

    fn higgs_bundle() -> ModelBundle {
        ModelBundle::serialize(&RandomForest::synthetic_full(
            &ForestConfig::classification(128, 28, 2).with_depth(SWEEP_DEPTH),
            7,
        ))
    }

    #[test]
    fn fused_cells_are_bit_exact_and_eliminate_the_tax() {
        let cells = fused_cells_for(SklearnCpu::with_threads(2), &higgs_bundle(), &[777], 1);
        assert_eq!(cells.len(), FUSED_CHUNK_SWEEP.len());
        for cell in &cells {
            assert!(cell.bit_exact, "fused diverged at {} rows", cell.chunk_rows);
            assert_eq!(cell.n_chunks, 777usize.div_ceil(cell.chunk_rows));
            assert!(
                cell.eliminated_frac >= 0.8,
                "handoff tax {}s barely below staged tax {}s",
                cell.fused_tax_secs,
                cell.staged_tax_secs
            );
            assert!(cell.staged_wall_secs > 0.0 && cell.fused_wall_secs > 0.0);
        }
    }

    #[test]
    fn kernel_filter_skips_excluded_tiers() {
        let opts = BenchOptions {
            quick: true,
            kernel: Some(Kernel::Blocked),
        };
        let case = run_case("iris", 8, 200, &opts);
        assert!(case.runs.iter().all(|r| r.bit_exact));
        assert!(case.runs.iter().all(|r| r.simd_rps.is_none()));
        assert!(case.runs.iter().all(|r| r.quickscorer_rps.is_none()));

        let simd_only = BenchOptions {
            quick: true,
            kernel: Some(Kernel::Simd),
        };
        let case = run_case("iris", 8, 200, &simd_only);
        assert!(case.runs.iter().all(|r| r.simd_rps.is_some()));
        assert!(case.runs.iter().all(|r| r.quickscorer_rps.is_none()));
    }

    #[test]
    fn cache_pair_hits_and_warm_is_cheaper() {
        let cache = run_cache_pair(&BenchOptions {
            quick: true,
            kernel: None,
        });
        assert_eq!(cache.hits, 1);
        assert_eq!(cache.misses, 1);
        assert!(cache.cold_total_secs >= cache.warm_total_secs);
        assert!(cache.warm_speedup() >= 1.0);
        assert!(cache.compile_ms > 0.0);
    }

    #[test]
    fn validate_rejects_garbage_and_empty() {
        assert!(validate("not json").is_err());
        assert!(validate("{\"schema\": \"wrong\"}").is_err());
        // v1 documents (no schema_version, no cache block) are stale.
        assert!(validate("{\"schema\": \"mlscore/bench-cpu-scoring/v1\", \"cases\": []}").is_err());
        // A hitless cache block is a broken warm path.
        let hitless = "{\"schema\": \"mlscore/bench-cpu-scoring/v1\", \"schema_version\": 2, \
                       \"cache\": {\"hits\": 0, \"cold_total_secs\": 2.0, \"warm_total_secs\": 1.0}, \
                       \"cases\": [1]}";
        assert!(validate(hitless).unwrap_err().contains("hit"));
        // Warm costing more than cold means the split is wired backwards.
        let inverted = "{\"schema\": \"mlscore/bench-cpu-scoring/v1\", \"schema_version\": 2, \
                        \"cache\": {\"hits\": 1, \"cold_total_secs\": 1.0, \"warm_total_secs\": 2.0}, \
                        \"cases\": [1]}";
        assert!(validate(inverted).unwrap_err().contains("cheaper"));
    }

    #[test]
    fn validate_enforces_the_v4_fused_bar() {
        let doc = |fused: &str| {
            format!(
                "{{\"schema\": \"mlscore/bench-cpu-scoring/v1\", \"schema_version\": 4, \
                 \"cache\": {{\"hits\": 1, \"cold_total_secs\": 2.0, \"warm_total_secs\": 1.0}}, \
                 {fused}\
                 \"cases\": [{{\"trees\": 8, \"records\": 10, \"naive_records_per_sec\": 1.0, \
                 \"chosen_kernel\": \"blocked\", \"quickscorer_records\": 10, \
                 \"runs\": [{{\"threads\": 1, \"flat_records_per_sec\": 1.0, \
                 \"bit_exact\": true}}]}}]}}"
            )
        };
        let cell = |tax: f64, frac: f64, exact: bool| {
            format!(
                "\"fused\": {{\"cells\": [{{\"records\": 100, \"chunk_rows\": 512, \
                 \"n_chunks\": 1, \"staged_tax_secs\": 1.0, \"fused_tax_secs\": {tax}, \
                 \"eliminated_frac\": {frac}, \"staged_wall_secs\": 0.5, \
                 \"fused_wall_secs\": 0.4, \"bit_exact\": {exact}}}]}}, "
            )
        };
        // v4 without the fused block is stale.
        assert!(validate(&doc("")).unwrap_err().contains("fused"));
        // A healthy cell passes.
        assert_eq!(validate(&doc(&cell(0.001, 0.999, true))), Ok(1));
        // Handoff tax above 20% of the staged tax fails the bar.
        assert!(validate(&doc(&cell(0.5, 0.5, true)))
            .unwrap_err()
            .contains("20%"));
        // A non-bit-exact fused pass can never be published.
        assert!(validate(&doc(&cell(0.001, 0.999, false)))
            .unwrap_err()
            .contains("bit-exact"));
    }

    #[test]
    fn thread_sweep_is_deduped_and_sorted() {
        let sweep = thread_sweep();
        assert!(!sweep.is_empty());
        assert!(sweep.windows(2).all(|w| w[0] < w[1]));
        assert!(sweep.contains(&1) && sweep.contains(&4));
    }
}
