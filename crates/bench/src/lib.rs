//! Benchmark crate: Criterion benches (one per paper figure plus
//! ablations) and the `repro` binary that regenerates every table/figure.
//!
//! Run `cargo run -p mlscore-bench --bin repro -- all` to print the full
//! set, or name a figure: `fig1`, `fig7a`, `fig7b`, `fig8`, `fig9`,
//! `fig10`, `fig11`, `headlines`, `scheduler`.
//!
//! [`cpu_bench`] is the *measured* (wall-clock) counterpart: `repro bench`
//! sweeps the real CPU scoring kernels and writes `BENCH_cpu_scoring.json`.
//!
//! [`serve_bench`] drives the discrete-event serving engine: `repro serve`
//! sweeps offered load with micro-batch coalescing on and off and writes
//! `BENCH_serving.json`.
//!
//! [`run_report`] renders one observed serving run (`repro report`):
//! windowed metrics, per-class SLO attainment, budget-burn alerts, and
//! slowest-request stage breakdowns from the lifecycle journal.
//!
//! [`diff`] compares two measured CPU benchmark reports cell by cell
//! (`repro bench --diff old.json new.json`) and flags regressions beyond
//! a relative tolerance.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cpu_bench;
pub mod diff;
pub mod run_report;
pub mod serve_bench;
