//! Regenerates every table and figure from the paper's evaluation section.
//!
//! Usage: `repro [all|fig1|fig7a|fig7b|fig8|fig9|fig10|fig11|headlines|scheduler]`

use mlscore_core::{figures, headline::HeadlineReport, report, shmoo::ShmooTable};
use mlscore_data::DatasetSpec;
use mlscore_forest::ModelStats;
use mlscore_sched::{
    evaluate_policy, paper_backends, AffineFitPolicy, HeuristicPolicy, OraclePolicy,
};

fn fig1() {
    println!("== Fig. 1: best-performing hardware by model complexity x data size ==");
    for dataset in DatasetSpec::all() {
        let table = ShmooTable::paper_grid(dataset);
        println!();
        for (i, &n) in table.record_counts.iter().enumerate() {
            let row: Vec<String> = table.cells[i]
                .iter()
                .map(|c| format!("{:>4}", c.family()))
                .collect();
            println!("{} {:>9}: {}", dataset.name(), n, row.join(" "));
        }
    }
    println!();
}

fn fig7(records: u64, label: &str) {
    println!("== Fig. {label}: FPGA scoring-time breakdown ({records} record(s)) ==");
    let panel = if records == 1 {
        figures::fig7a()
    } else {
        figures::fig7b()
    };
    println!("{}", report::render_fig7(&panel));
}

fn fig8() {
    println!("== Fig. 8: best backend + speedup over CPU (depth 10) ==");
    for dataset in DatasetSpec::all() {
        println!("{}", report::render_shmoo(&ShmooTable::paper_grid(dataset)));
    }
}

fn fig9() {
    println!("== Fig. 9: scoring latency ==");
    for panel in figures::fig9_all() {
        println!("{}", report::render_latency(&panel));
    }
}

fn fig10() {
    println!("== Fig. 10: scoring throughput ==");
    for panel in figures::fig9_all() {
        println!("{}", report::render_throughput(&panel));
    }
}

fn fig11() {
    println!("== Fig. 11: end-to-end T-SQL query breakdown ==");
    for (dataset, trees, records) in [
        (DatasetSpec::Iris, 1, 1u64),
        (DatasetSpec::Iris, 128, 1_000_000),
        (DatasetSpec::Higgs, 128, 1_000_000),
    ] {
        println!(
            "{} — {} trees, 10 levels, {} records",
            dataset.name(),
            trees,
            records
        );
        println!(
            "{}",
            report::render_fig11(&figures::fig11(dataset, trees, 10, records))
        );
    }
}

fn headlines() {
    println!("== §IV headline ratios ==");
    println!("{}", HeadlineReport::compute());
    println!();
}

fn scheduler() {
    println!("== Scheduler policy regret (extension A4) ==");
    let backends = paper_backends();
    let mut grid = Vec::new();
    for dataset in DatasetSpec::all() {
        for &trees in &mlscore_core::calibration::TREE_SWEEP {
            let stats = ModelStats::of(&mlscore_core::calibration::paper_model(
                dataset, trees, 10,
            ));
            for &n in &mlscore_core::calibration::RECORD_SWEEP {
                grid.push((stats, n));
            }
        }
    }
    for report in [
        evaluate_policy(&OraclePolicy, &grid, &backends),
        evaluate_policy(&HeuristicPolicy::default(), &grid, &backends),
        evaluate_policy(&AffineFitPolicy::default(), &grid, &backends),
    ] {
        println!(
            "  {:<16} points {:>3}  mispicks {:>3}  agreement {:>5.1}%  worst {:>6.2}x  mean {:>5.2}x",
            report.policy,
            report.points,
            report.mispicks,
            report.agreement() * 100.0,
            report.worst_factor,
            report.mean_factor
        );
    }
    println!();
}

fn main() {
    let what = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    match what.as_str() {
        "fig1" => fig1(),
        "fig7a" => fig7(1, "7a"),
        "fig7b" => fig7(1_000_000, "7b"),
        "fig8" => fig8(),
        "fig9" => fig9(),
        "fig10" => fig10(),
        "fig11" => fig11(),
        "headlines" => headlines(),
        "scheduler" => scheduler(),
        "csv" => {
            let dir = std::env::args()
                .nth(2)
                .unwrap_or_else(|| "figures_out".to_string());
            let written = mlscore_core::export::save_all(std::path::Path::new(&dir))
                .expect("writing figure CSVs");
            println!("wrote {} CSV files to {dir}/", written.len());
        }
        "all" => {
            fig1();
            fig7(1, "7a");
            fig7(1_000_000, "7b");
            fig8();
            fig9();
            fig10();
            fig11();
            headlines();
            scheduler();
        }
        other => {
            eprintln!(
                "unknown figure '{other}'; try all, fig1, fig7a, fig7b, fig8, fig9, fig10, fig11, headlines, scheduler, csv [dir]"
            );
            std::process::exit(2);
        }
    }
}
