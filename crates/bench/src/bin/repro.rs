//! Regenerates every table and figure from the paper's evaluation section,
//! and exports Perfetto traces of simulated queries.
//!
//! Run `repro --help` for the full target list.

use mlscore_backend::{OnnxCpu, ScoringBackend, SklearnCpu};
use mlscore_core::{figures, headline::HeadlineReport, report, shmoo::ShmooTable};
use mlscore_data::DatasetSpec;
use mlscore_forest::{ModelBundle, ModelStats};
use mlscore_fpga::FpgaBackend;
use mlscore_gpu::{HummingbirdGpu, RapidsFil};
use mlscore_pipeline::QueryPipeline;
use mlscore_sched::{
    evaluate_policy, paper_backends, AffineFitPolicy, HeuristicPolicy, OraclePolicy, Policy,
    QueryTrace, TraceOutcome,
};
use mlscore_sim::SimInstant;
use mlscore_telemetry::{perfetto, MetricsRegistry, Tracer};

fn fig1() {
    println!("== Fig. 1: best-performing hardware by model complexity x data size ==");
    for dataset in DatasetSpec::all() {
        let table = ShmooTable::paper_grid(dataset);
        println!();
        for (i, &n) in table.record_counts.iter().enumerate() {
            let row: Vec<String> = table.cells[i]
                .iter()
                .map(|c| format!("{:>4}", c.family()))
                .collect();
            println!("{} {:>9}: {}", dataset.name(), n, row.join(" "));
        }
    }
    println!();
}

fn fig7(records: u64, label: &str) {
    println!("== Fig. {label}: FPGA scoring-time breakdown ({records} record(s)) ==");
    let panel = if records == 1 {
        figures::fig7a()
    } else {
        figures::fig7b()
    };
    println!("{}", report::render_fig7(&panel));
}

fn fig8() {
    println!("== Fig. 8: best backend + speedup over CPU (depth 10) ==");
    for dataset in DatasetSpec::all() {
        println!("{}", report::render_shmoo(&ShmooTable::paper_grid(dataset)));
    }
}

fn fig9() {
    println!("== Fig. 9: scoring latency ==");
    for panel in figures::fig9_all() {
        println!("{}", report::render_latency(&panel));
    }
}

fn fig10() {
    println!("== Fig. 10: scoring throughput ==");
    for panel in figures::fig9_all() {
        println!("{}", report::render_throughput(&panel));
    }
}

fn fig11() {
    println!("== Fig. 11: end-to-end T-SQL query breakdown ==");
    for (dataset, trees, records) in [
        (DatasetSpec::Iris, 1, 1u64),
        (DatasetSpec::Iris, 128, 1_000_000),
        (DatasetSpec::Higgs, 128, 1_000_000),
    ] {
        println!(
            "{} — {} trees, 10 levels, {} records",
            dataset.name(),
            trees,
            records
        );
        println!(
            "{}",
            report::render_fig11(&figures::fig11(dataset, trees, 10, records))
        );
    }
}

fn headlines() {
    println!("== §IV headline ratios ==");
    println!("{}", HeadlineReport::compute());
    println!();
}

/// Serial fixed-policy replay: each trace query is charged the modelled
/// time of the backend the policy picks. (`repro serve` layers queueing,
/// coalescing, and device contention on top of this simple loop.)
fn replay_policy(
    policy: &dyn Policy,
    trace: &QueryTrace,
    backends: &[Box<dyn ScoringBackend>],
) -> TraceOutcome {
    let mut total = mlscore_sim::SimDuration::ZERO;
    let mut latencies = Vec::with_capacity(trace.len());
    let mut picks: std::collections::BTreeMap<String, usize> = std::collections::BTreeMap::new();
    for q in trace.queries() {
        let choice = policy
            .choose(&q.stats, q.n_records, backends)
            .expect("every trace query has a supporting backend");
        let latency = backends[choice.index]
            .estimate(&q.stats, q.n_records)
            .total();
        total += latency;
        latencies.push(latency);
        *picks.entry(choice.name).or_default() += 1;
    }
    TraceOutcome {
        policy: policy.name().to_string(),
        total,
        latencies,
        picks,
    }
}

fn scheduler() {
    println!("== Scheduler policy regret (extension A4) ==");
    let backends = paper_backends();
    let mut grid = Vec::new();
    for dataset in DatasetSpec::all() {
        for &trees in &mlscore_core::calibration::TREE_SWEEP {
            let stats = ModelStats::of(&mlscore_core::calibration::paper_model(dataset, trees, 10));
            for &n in &mlscore_core::calibration::RECORD_SWEEP {
                grid.push((stats, n));
            }
        }
    }
    for report in [
        evaluate_policy(&OraclePolicy, &grid, &backends),
        evaluate_policy(&HeuristicPolicy::default(), &grid, &backends),
        evaluate_policy(&AffineFitPolicy::default(), &grid, &backends),
    ] {
        println!(
            "  {:<16} points {:>3}  mispicks {:>3}  agreement {:>5.1}%  worst {:>6.2}x  mean {:>5.2}x",
            report.policy,
            report.points,
            report.mispicks,
            report.agreement() * 100.0,
            report.worst_factor,
            report.mean_factor
        );
    }
    println!();

    // Per-policy latency distributions from a synthetic mixed trace, folded
    // through the shared telemetry histograms (p50/p95/p99 come from the
    // same log-bucketed type every layer records into).
    println!("== Trace replay: latency percentiles (200-query synthetic mix) ==");
    let trace = QueryTrace::synthetic(200, 42);
    let registry = MetricsRegistry::new();
    for outcome in [
        replay_policy(&OraclePolicy, &trace, &backends),
        replay_policy(&HeuristicPolicy::default(), &trace, &backends),
        replay_policy(&AffineFitPolicy::default(), &trace, &backends),
    ] {
        let name = format!("latency.{}", outcome.policy);
        for &latency in &outcome.latencies {
            registry.record(&name, latency);
        }
        for (backend, n) in &outcome.picks {
            registry.inc_counter(&format!("picks.{}.{backend}", outcome.policy), *n as u64);
        }
    }
    print!("{}", registry.render());
    println!();
}

/// Builds the backend a `repro trace` argument names.
fn backend_by_name(name: &str) -> Option<Box<dyn ScoringBackend>> {
    Some(match name {
        "cpu" | "onnx" => Box::new(OnnxCpu::paper_52th()),
        "onnx1" => Box::new(OnnxCpu::single_thread()),
        "sklearn" => Box::new(SklearnCpu::paper_default()),
        "gpu" | "gpu-hb" | "hummingbird" => Box::new(HummingbirdGpu::p100()),
        "gpu-rapids" | "rapids" | "fil" => Box::new(RapidsFil::p100()),
        "fpga" => Box::new(FpgaBackend::paper_default()),
        _ => return None,
    })
}

/// Parses a record count with optional `k`/`m` suffix (`"250k"`, `"1m"`).
fn parse_count(text: &str) -> Option<u64> {
    let lower = text.to_ascii_lowercase();
    let (digits, mult) = match lower.strip_suffix(['k', 'm']) {
        Some(d) if lower.ends_with('k') => (d, 1_000),
        Some(d) => (d, 1_000_000),
        None => (lower.as_str(), 1),
    };
    digits.parse::<u64>().ok().map(|n| n * mult)
}

/// `repro trace [--out FILE] [--warm|--cold] [--fused] [dataset] [trees] [records] [backend]`
fn trace(args: &[String]) {
    let mut out_path: Option<String> = None;
    let mut warm = false;
    let mut fused = false;
    let mut pos: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--out" {
            match it.next() {
                Some(path) => out_path = Some(path.clone()),
                None => {
                    eprintln!("--out needs a file path");
                    std::process::exit(2);
                }
            }
        } else if arg == "--warm" {
            warm = true;
        } else if arg == "--cold" {
            warm = false;
        } else if arg == "--fused" {
            fused = true;
        } else {
            pos.push(arg.clone());
        }
    }
    fn fail(msg: String) -> ! {
        eprintln!("{msg}");
        eprintln!(
            "usage: repro trace [--out FILE] [--warm|--cold] [--fused] [iris|higgs] [trees] [records] [backend]"
        );
        eprintln!("backends: cpu sklearn onnx1 gpu gpu-rapids fpga");
        std::process::exit(2);
    }
    let dataset = match pos.first().map(String::as_str).unwrap_or("higgs") {
        "higgs" => DatasetSpec::Higgs,
        "iris" => DatasetSpec::Iris,
        other => fail(format!("unknown dataset '{other}'")),
    };
    let trees: usize = match pos.get(1).map(String::as_str).unwrap_or("128").parse() {
        Ok(t) if t >= 1 => t,
        _ => fail(format!("bad tree count '{}' (need >= 1)", pos[1])),
    };
    let records = match parse_count(pos.get(2).map(String::as_str).unwrap_or("1m")) {
        Some(n) => n,
        None => fail(format!("bad record count '{}'", pos[2])),
    };
    let backend_name = pos.get(3).map(String::as_str).unwrap_or("fpga");
    let backend = match backend_by_name(backend_name) {
        Some(b) => b,
        None => fail(format!("unknown backend '{backend_name}'")),
    };

    let forest = mlscore_core::calibration::paper_model(dataset, trees, 10);
    let stats = ModelStats::of(&forest);
    if let Err(e) = backend.supports(&stats) {
        fail(format!("backend rejects this model: {e}"));
    }
    let bundle = ModelBundle::serialize(&forest);
    let pipeline = QueryPipeline::new(backend);
    let tracer = Tracer::new();
    // Warm queries replay the artifact-cache hit path: no bundle marshal,
    // model pre-processing collapsed to a cache probe, no compile spans.
    // Fused queries replay the in-process streaming path: no Python launch,
    // no marshal, no separate pre-processing — the Fig. 11 breakdown
    // collapses to model prep + per-chunk handoff + scoring + post.
    let breakdown = match (fused, warm) {
        (true, true) => pipeline.estimate_fused_warm_traced(
            &stats,
            bundle.len() as u64,
            records,
            mlscore_data::DEFAULT_CHUNK_ROWS,
            &tracer,
            SimInstant::ZERO,
        ),
        (true, false) => pipeline.estimate_fused_traced(
            &stats,
            bundle.len() as u64,
            records,
            mlscore_data::DEFAULT_CHUNK_ROWS,
            &tracer,
            SimInstant::ZERO,
        ),
        (false, true) => pipeline.estimate_warm_traced(
            &stats,
            bundle.len() as u64,
            records,
            &tracer,
            SimInstant::ZERO,
        ),
        (false, false) => pipeline.estimate_traced(
            &stats,
            bundle.len() as u64,
            records,
            &tracer,
            SimInstant::ZERO,
        ),
    };
    let span_trace = tracer.take();
    let json = perfetto::to_json(&span_trace);
    match out_path {
        Some(path) => {
            std::fs::write(&path, &json).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            println!(
                "wrote {path}: {} spans, {} bytes (open at ui.perfetto.dev)",
                span_trace.len(),
                json.len()
            );
            println!(
                "{} x{} trees, {} records on {} ({}{}): total {}",
                dataset.name(),
                trees,
                records,
                pipeline.backend().name(),
                if warm { "warm" } else { "cold" },
                if fused { ", fused" } else { "" },
                breakdown.total()
            );
            for (stage, d) in breakdown.iter() {
                println!("  {stage:<20} {d}");
            }
        }
        None => println!("{json}"),
    }
}

/// `repro bench [--quick] [--kernel auto|blocked|simd|quickscorer]
///              [--out FILE] [--check FILE]
///              [--diff OLD NEW [--tolerance T]]`
///
/// Runs the measured CPU scoring sweep ([`mlscore_bench::cpu_bench`]) and
/// writes `BENCH_cpu_scoring.json`; `--kernel` restricts the vector-tier
/// measurements to one kernel (the blocked baselines always run). With
/// `--check` it validates an existing report file (the CI smoke gate),
/// and with `--diff` it compares two report files cell by cell and exits
/// non-zero when any throughput number regressed beyond the relative
/// tolerance.
fn bench(args: &[String]) {
    use mlscore_bench::cpu_bench::{self, BenchOptions, CaseResult};
    use mlscore_bench::diff;
    use mlscore_exec::Kernel;

    let mut quick = false;
    let mut kernel: Option<Kernel> = None;
    let mut out_path = "BENCH_cpu_scoring.json".to_string();
    let mut check: Option<String> = None;
    let mut diff_paths: Option<(String, String)> = None;
    let mut tolerance = diff::DEFAULT_TOLERANCE;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--kernel" => match it.next().map(String::as_str) {
                Some("auto") => kernel = None,
                Some(name) if Kernel::parse(name).is_some() => kernel = Kernel::parse(name),
                _ => {
                    eprintln!("--kernel needs one of auto|blocked|simd|quickscorer");
                    std::process::exit(2);
                }
            },
            "--out" => match it.next() {
                Some(path) => out_path = path.clone(),
                None => {
                    eprintln!("--out needs a file path");
                    std::process::exit(2);
                }
            },
            "--check" => match it.next() {
                Some(path) => check = Some(path.clone()),
                None => {
                    eprintln!("--check needs a file path");
                    std::process::exit(2);
                }
            },
            "--diff" => match (it.next(), it.next()) {
                (Some(old), Some(new)) => diff_paths = Some((old.clone(), new.clone())),
                _ => {
                    eprintln!("--diff needs two file paths (old new)");
                    std::process::exit(2);
                }
            },
            "--tolerance" => match it.next().map(|t| t.parse::<f64>()) {
                Some(Ok(t)) => tolerance = t,
                _ => {
                    eprintln!("--tolerance needs a fraction in [0, 1)");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown bench flag '{other}'");
                eprintln!(
                    "usage: repro bench [--quick] [--kernel auto|blocked|simd|quickscorer] \
                     [--out FILE] [--check FILE] [--diff OLD NEW [--tolerance T]]"
                );
                std::process::exit(2);
            }
        }
    }

    if let Some((old_path, new_path)) = diff_paths {
        let read = |path: &str| {
            std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            })
        };
        let (old_text, new_text) = (read(&old_path), read(&new_path));
        match diff::diff(&old_text, &new_text, tolerance) {
            Ok(regressions) if regressions.is_empty() => {
                println!(
                    "{new_path}: no regressions vs {old_path} \
                     (tolerance {:.0}%)",
                    tolerance * 100.0
                );
            }
            Ok(regressions) => {
                eprintln!(
                    "{new_path}: {} regression(s) vs {old_path}:",
                    regressions.len()
                );
                for line in &regressions {
                    eprintln!("  {line}");
                }
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("cannot diff: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    if let Some(path) = check {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        });
        match cpu_bench::validate(&text) {
            Ok(n) => println!("{path}: valid benchmark report, {n} case(s)"),
            Err(e) => {
                eprintln!("{path}: invalid benchmark report: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let opts = BenchOptions { quick, kernel };
    println!(
        "== Measured CPU scoring sweep ({} mode, kernel {}) ==",
        if quick { "quick" } else { "full" },
        kernel.map_or("auto", Kernel::name)
    );
    let cases = cpu_bench::run(&opts);
    let cache = cpu_bench::run_cache_pair(&opts);
    println!(
        "cache {:>5} x{:<3} trees, {:>6} records | cold {:.3}s warm {:.3}s ({:.3}x) | \
         compile {:.2}ms | {} hit(s) {} miss(es)",
        "higgs",
        cache.trees,
        cache.records,
        cache.cold_total_secs,
        cache.warm_total_secs,
        cache.warm_speedup(),
        cache.compile_ms,
        cache.hits,
        cache.misses
    );
    println!("== Fused vs. staged marshaling-tax shmoo ==");
    let fused = cpu_bench::run_fused(&opts);
    let json = cpu_bench::to_json(&cases, &cache, &fused, &opts);
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    let worst = cases
        .iter()
        .map(CaseResult::best_speedup)
        .fold(f64::INFINITY, f64::min);
    println!(
        "wrote {out_path}: {} cases, worst best-thread speedup {worst:.2}x vs the naive seed path",
        cases.len()
    );
}

/// `repro serve [--quick] [--out FILE] [--check FILE] [--trace-out FILE]`
///
/// Runs the serving-engine load sweep ([`mlscore_bench::serve_bench`]) and
/// writes `BENCH_serving.json`; with `--check` it validates an existing
/// report instead, and `--trace-out` additionally exports a Perfetto
/// timeline of the FPGA overload run (per-device lanes with queue-wait,
/// coalesce, compile, setup/transfer/compute/drain spans).
fn serve(args: &[String]) {
    use mlscore_bench::serve_bench::{self, ServeBenchOptions};
    use mlscore_serve::{
        ArrivalProcess, CoalesceConfig, ModelCatalog, QueueConfig, ServeConfig, ServeEngine,
        WorkloadSpec,
    };

    let mut quick = false;
    let mut out_path = "BENCH_serving.json".to_string();
    let mut check: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => match it.next() {
                Some(path) => out_path = path.clone(),
                None => {
                    eprintln!("--out needs a file path");
                    std::process::exit(2);
                }
            },
            "--check" => match it.next() {
                Some(path) => check = Some(path.clone()),
                None => {
                    eprintln!("--check needs a file path");
                    std::process::exit(2);
                }
            },
            "--trace-out" => match it.next() {
                Some(path) => trace_out = Some(path.clone()),
                None => {
                    eprintln!("--trace-out needs a file path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown serve flag '{other}'");
                eprintln!(
                    "usage: repro serve [--quick] [--out FILE] [--check FILE] [--trace-out FILE]"
                );
                std::process::exit(2);
            }
        }
    }

    if let Some(path) = check {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        });
        match serve_bench::validate(&text) {
            Ok(n) => println!("{path}: valid serving report, {n} sweep point(s)"),
            Err(e) => {
                eprintln!("{path}: invalid serving report: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    println!(
        "== Serving-engine load sweep ({} mode) ==",
        if quick { "quick" } else { "full" }
    );
    let opts = ServeBenchOptions { quick };
    let report = serve_bench::run(&opts);
    let json = serve_bench::to_json(&report, &opts);
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    println!(
        "wrote {out_path}: {} sweep point(s) + FPGA overload comparison",
        report.sweep.len()
    );

    if let Some(path) = trace_out {
        // A traced rerun of the FPGA overload point: the interesting
        // timeline (queue build-up, merged passes, shed requests).
        let engine = ServeEngine::new(
            paper_backends()
                .into_iter()
                .filter(|b| b.name() == "FPGA")
                .collect(),
            ModelCatalog::paper_mix(),
            ServeConfig {
                queue: QueueConfig {
                    capacity: Some(32),
                    ..QueueConfig::default()
                },
                coalesce: CoalesceConfig::default(),
                cpu_seats: serve_bench::CPU_SEATS,
                gpu_streams: serve_bench::GPU_STREAMS,
                ..ServeConfig::default()
            },
        );
        let tracer = Tracer::new();
        engine
            .run(
                &WorkloadSpec {
                    queries: if quick { 150 } else { 500 },
                    seed: serve_bench::SEED,
                    arrivals: ArrivalProcess::OpenPoisson { rate_qps: 2_000.0 },
                },
                &tracer,
            )
            .expect("the overload trace workload is a fixed valid spec");
        let span_trace = tracer.take();
        let trace_json = perfetto::to_json(&span_trace);
        std::fs::write(&path, &trace_json).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!(
            "wrote {path}: {} spans (open at ui.perfetto.dev)",
            span_trace.len()
        );
    }
}

/// `repro report [--quick] [--out FILE] [--top N]`
///
/// Runs the observed FPGA overload workload ([`mlscore_bench::run_report`])
/// and prints the human-readable run report; `--out` additionally writes
/// the JSON document (`mlscore/run-report/v1`), which is byte-identical
/// across reruns — CI regenerates it twice and compares.
fn report(args: &[String]) {
    use mlscore_bench::run_report::{self, RunReportOptions};

    let mut opts = RunReportOptions::default();
    let mut out_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--out" => match it.next() {
                Some(path) => out_path = Some(path.clone()),
                None => {
                    eprintln!("--out needs a file path");
                    std::process::exit(2);
                }
            },
            "--top" => match it.next().map(|n| n.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => opts.top_n = n,
                _ => {
                    eprintln!("--top needs a positive integer");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown report flag '{other}'");
                eprintln!("usage: repro report [--quick] [--out FILE] [--top N]");
                std::process::exit(2);
            }
        }
    }

    println!(
        "== Serving run report ({} mode) ==",
        if opts.quick { "quick" } else { "full" }
    );
    let report = run_report::run(&opts);
    print!("{}", run_report::to_text(&report, &opts));
    if let Some(path) = out_path {
        let json = run_report::to_json(&report, &opts);
        std::fs::write(&path, &json).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!(
            "\nwrote {path}: {} window(s), {} alert(s), top-{} slowest",
            report.series.len(),
            report.alerts.len(),
            opts.top_n
        );
    }
}

fn usage() -> String {
    "usage: repro [target]\n\
     targets:\n\
       all              every figure, table, and the scheduler study (default)\n\
       fig1             best backend by model complexity x data size\n\
       fig7a            FPGA scoring-time breakdown, 1 record\n\
       fig7b            FPGA scoring-time breakdown, 1M records\n\
       fig8             best backend + speedup over CPU (depth 10)\n\
       fig9             scoring latency curves\n\
       fig10            scoring throughput curves\n\
       fig11            end-to-end T-SQL query breakdown\n\
       headlines        headline ratios from the paper's section IV\n\
       scheduler        policy regret + latency percentiles (telemetry histograms)\n\
       trace [--out FILE] [--warm|--cold] [--fused] [iris|higgs] [trees] [records] [backend]\n\
                        export a Perfetto trace of one simulated query\n\
                        (defaults: higgs 128 1m fpga, cold; records accept k/m\n\
                         suffixes; backends: cpu sklearn onnx1 gpu gpu-rapids fpga;\n\
                         --warm replays an artifact-cache hit: no bundle marshal,\n\
                         model pre-processing collapsed to a cache probe;\n\
                         --fused replays the pull-based RecordStream path: no\n\
                         inbound marshal or data pre-processing stages, only\n\
                         per-chunk handoff, with per-chunk detail spans)\n\
       bench [--quick] [--kernel auto|blocked|simd|quickscorer] [--out FILE] [--check FILE] [--diff OLD NEW [--tolerance T]]\n\
                        measure real CPU kernel throughput (naive seed path vs\n\
                        blocked executor) plus a warm/cold artifact-cache pair,\n\
                        and write BENCH_cpu_scoring.json; --check validates an\n\
                        existing report instead; --diff compares two reports\n\
                        cell by cell and exits non-zero on any throughput\n\
                        regression beyond the relative tolerance (default 25%)\n\
       serve [--quick] [--out FILE] [--check FILE] [--trace-out FILE]\n\
                        sweep offered load through the discrete-event serving\n\
                        engine (admission control, micro-batch coalescing,\n\
                        device contention) with coalescing on vs off, plus an\n\
                        FPGA-only overload comparison, and write\n\
                        BENCH_serving.json; --check validates an existing\n\
                        report; --trace-out exports a Perfetto timeline of\n\
                        the FPGA overload run (per-device lanes, request\n\
                        flow arrows from queue wait to device pass)\n\
       report [--quick] [--out FILE] [--top N]\n\
                        run the observed FPGA overload workload and render\n\
                        the serving run report: windowed metrics, per-class\n\
                        SLO attainment, budget-burn alerts, and the top-N\n\
                        slowest requests with journal stage breakdowns;\n\
                        --out writes the deterministic JSON document\n\
       analyze [--json] [--check-baseline] [--write-baseline]\n\
                        run the workspace determinism & hot-path lints\n\
                        (mlscore-analyze; see DESIGN.md section 10)\n\
       csv [dir]        write every figure as CSV (default dir: figures_out)\n\
       help             this message"
        .to_string()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let what = args.get(1).map(String::as_str).unwrap_or("all");
    match what {
        "fig1" => fig1(),
        "fig7a" => fig7(1, "7a"),
        "fig7b" => fig7(1_000_000, "7b"),
        "fig8" => fig8(),
        "fig9" => fig9(),
        "fig10" => fig10(),
        "fig11" => fig11(),
        "headlines" => headlines(),
        "scheduler" => scheduler(),
        "trace" => trace(&args[2..]),
        "bench" => bench(&args[2..]),
        "serve" => serve(&args[2..]),
        "report" => report(&args[2..]),
        "analyze" => std::process::exit(mlscore_analysis::cli::run(&args[2..])),
        "csv" => {
            let dir = args
                .get(2)
                .cloned()
                .unwrap_or_else(|| "figures_out".to_string());
            let written = mlscore_core::export::save_all(std::path::Path::new(&dir))
                .expect("writing figure CSVs");
            println!("wrote {} CSV files to {dir}/", written.len());
        }
        "all" => {
            fig1();
            fig7(1, "7a");
            fig7(1_000_000, "7b");
            fig8();
            fig9();
            fig10();
            fig11();
            headlines();
            scheduler();
        }
        "help" | "--help" | "-h" => println!("{}", usage()),
        other => {
            eprintln!("unknown target '{other}'");
            eprintln!("{}", usage());
            std::process::exit(2);
        }
    }
}
