//! Ablation A5: split execution for trees deeper than the engine's 10
//! levels (§III-B's proposed extension) — how much work lands back on the
//! CPU as depth grows, and the functional cost of the split scorer.

use criterion::{criterion_group, BenchmarkId, Criterion};
use mlscore_data::Dataset;
use mlscore_forest::{ForestConfig, RandomForest};
use mlscore_fpga::{split_score, InferenceEngine};

fn deep_forest(depth: usize) -> RandomForest {
    RandomForest::synthetic_capped(
        &ForestConfig::classification(16, 4, 3).with_depth(depth),
        600,
        7,
    )
}

fn print_ablation() {
    println!("\n--- Ablation A5: split execution (FPGA first 10 levels + CPU rest) ---");
    let engine = InferenceEngine::paper_default();
    let data = Dataset::iris(1_000, 5).normalized();
    println!(
        "{:>6} {:>18} {:>14}",
        "depth", "finished on FPGA", "CPU visits"
    );
    for depth in [8usize, 10, 12, 14, 16] {
        let forest = deep_forest(depth);
        let (preds, report) = split_score(&engine, &forest, data.frame());
        assert_eq!(preds, forest.predict_batch(data.frame().as_slice()));
        println!(
            "{:>6} {:>17.1}% {:>14}",
            depth,
            report.fpga_fraction() * 100.0,
            report.cpu_visits
        );
    }
}

fn bench(c: &mut Criterion) {
    let engine = InferenceEngine::paper_default();
    let data = Dataset::iris(500, 5).normalized();
    let mut g = c.benchmark_group("ablation_split_depth");
    g.sample_size(20);
    for depth in [10usize, 14] {
        let forest = deep_forest(depth);
        g.bench_with_input(BenchmarkId::from_parameter(depth), &forest, |b, f| {
            b.iter(|| split_score(&engine, f, data.frame()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_ablation();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
