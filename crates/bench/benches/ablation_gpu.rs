//! Ablation A3: GPU mechanism knobs — warp divergence for RAPIDS-FIL and
//! the redundant-traffic factor for Hummingbird. Shows how much of each
//! strategy's cost comes from the mechanism the paper blames.

use criterion::{criterion_group, Criterion};
use mlscore_backend::ScoringBackend;
use mlscore_data::{Dataset, DatasetSpec};
use mlscore_forest::ModelStats;
use mlscore_gpu::{
    measured_divergence, warp_efficiency, FilCostParams, HummingbirdCostParams, HummingbirdGpu,
    RapidsFil,
};

fn print_ablation() {
    println!("\n--- Ablation A3: GPU mechanism knobs (HIGGS, 128 trees, 1M records) ---");
    let stats = ModelStats::of(&mlscore_core::calibration::paper_model(
        DatasetSpec::Higgs,
        128,
        10,
    ));
    // FIL: with and without the divergence penalty.
    let with_div = RapidsFil::p100().estimate(&stats, 1_000_000).total();
    let no_div = RapidsFil::new(
        mlscore_gpu::GpuDevice::tesla_p100(),
        FilCostParams {
            // Counteract the depth-10 divergence factor exactly.
            visits_per_sm_cycle: FilCostParams::default().visits_per_sm_cycle
                / warp_efficiency(stats.max_depth),
            ..FilCostParams::default()
        },
    )
    .estimate(&stats, 1_000_000)
    .total();
    println!(
        "  RAPIDS with divergence {with_div}, divergence-free {no_div} ({:.2}x)",
        with_div.ratio(no_div)
    );

    // HB: traffic factor 1.5 vs 1.0.
    let hb_default = HummingbirdGpu::p100().estimate(&stats, 1_000_000).total();
    let hb_lean = HummingbirdGpu::new(
        mlscore_gpu::GpuDevice::tesla_p100(),
        HummingbirdCostParams {
            traffic_factor: 1.0,
            ..HummingbirdCostParams::default()
        },
    )
    .estimate(&stats, 1_000_000)
    .total();
    println!("  HB with gather-tensor traffic {hb_default}, lean {hb_lean}");

    // Empirical divergence on leaf-capped (IRIS-like) trees vs the analytic
    // curve.
    let iris_model = mlscore_core::calibration::paper_model(DatasetSpec::Iris, 16, 10);
    let data = Dataset::iris(256, 3).normalized();
    println!(
        "  measured lane activity (IRIS capped trees): {:.3}; analytic warp_efficiency(10) = {:.3}",
        measured_divergence(&iris_model, data.frame()),
        warp_efficiency(10)
    );
}

fn bench(c: &mut Criterion) {
    let stats = ModelStats::of(&mlscore_core::calibration::paper_model(
        DatasetSpec::Higgs,
        128,
        10,
    ));
    let mut g = c.benchmark_group("ablation_gpu");
    let fil = RapidsFil::p100();
    let hb = HummingbirdGpu::p100();
    g.bench_function("fil_estimate", |b| {
        b.iter(|| fil.estimate(std::hint::black_box(&stats), 1_000_000))
    });
    g.bench_function("hb_estimate", |b| {
        b.iter(|| hb.estimate(std::hint::black_box(&stats), 1_000_000))
    });
    let iris_model = mlscore_core::calibration::paper_model(DatasetSpec::Iris, 8, 10);
    let data = Dataset::iris(128, 3).normalized();
    g.bench_function("measured_divergence", |b| {
        b.iter(|| measured_divergence(&iris_model, data.frame()))
    });
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_ablation();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
