//! Fig. 9: scoring latency curves for all eight panels.

use criterion::{criterion_group, Criterion};
use mlscore_core::{figures, report};
use mlscore_data::DatasetSpec;

fn print_figure() {
    println!("\n--- Fig. 9 (all panels) ---");
    for panel in figures::fig9_all() {
        println!("{}", report::render_latency(&panel));
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9");
    g.sample_size(10);
    g.bench_function("one_panel", |b| {
        b.iter(|| figures::fig9(DatasetSpec::Higgs, 128, 10))
    });
    g.bench_function("all_panels", |b| b.iter(figures::fig9_all));
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_figure();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
