//! Ablation A6: GPU generations. The paper: "GPUs with larger caches can
//! improve the slopes of the GPU performance curves and shift the
//! crossover points in Figures 9 and 10." We re-run the heavy HIGGS
//! configuration on P100/V100/A100 device models and report the GPU-vs-CPU
//! crossover motion.

use criterion::{criterion_group, Criterion};
use mlscore_backend::{OnnxCpu, ScoringBackend, SklearnCpu};
use mlscore_data::DatasetSpec;
use mlscore_forest::ModelStats;
use mlscore_gpu::{FilCostParams, GpuDevice, HummingbirdCostParams, HummingbirdGpu, RapidsFil};

fn devices() -> [(&'static str, GpuDevice); 3] {
    [
        ("P100", GpuDevice::tesla_p100()),
        ("V100", GpuDevice::tesla_v100()),
        ("A100", GpuDevice::a100()),
    ]
}

fn print_ablation() {
    println!("\n--- Ablation A6: GPU generations (HIGGS, 128 trees, depth 10) ---");
    let stats = ModelStats::of(&mlscore_core::calibration::paper_model(
        DatasetSpec::Higgs,
        128,
        10,
    ));
    let sklearn = SklearnCpu::paper_default();
    let onnx52 = OnnxCpu::paper_52th();
    let best_cpu = |n: u64| {
        sklearn
            .estimate(&stats, n)
            .total()
            .min(onnx52.estimate(&stats, n).total())
    };
    println!(
        "{:<6} {:>14} {:>14} {:>16} {:>20}",
        "GPU", "HB @1M", "RAPIDS @1M", "best-GPU speedup", "GPU crossover (rec)"
    );
    for (name, device) in devices() {
        let hb = HummingbirdGpu::new(device.clone(), HummingbirdCostParams::default());
        let fil = RapidsFil::new(device, FilCostParams::default());
        let hb_t = hb.estimate(&stats, 1_000_000).total();
        let fil_t = fil.estimate(&stats, 1_000_000).total();
        let best = hb_t.min(fil_t);
        let crossover = mlscore_core::headline::DENSE_SWEEP
            .iter()
            .copied()
            .find(|&n| {
                hb.estimate(&stats, n)
                    .total()
                    .min(fil.estimate(&stats, n).total())
                    < best_cpu(n)
            });
        println!(
            "{:<6} {:>14} {:>14} {:>15.1}x {:>20}",
            name,
            hb_t.to_string(),
            fil_t.to_string(),
            best_cpu(1_000_000).ratio(best),
            crossover
                .map(|n| n.to_string())
                .unwrap_or_else(|| "never".into())
        );
    }
}

fn bench(c: &mut Criterion) {
    let stats = ModelStats::of(&mlscore_core::calibration::paper_model(
        DatasetSpec::Higgs,
        128,
        10,
    ));
    let mut g = c.benchmark_group("ablation_gpu_cache");
    for (name, device) in devices() {
        let hb = HummingbirdGpu::new(device, HummingbirdCostParams::default());
        g.bench_function(name, |b| {
            b.iter(|| hb.estimate(std::hint::black_box(&stats), 1_000_000))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_ablation();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
