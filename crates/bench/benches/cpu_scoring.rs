//! Real (wall-clock) scoring throughput of the functional backends — this
//! benchmarks the library's own execution engines, not the modelled times.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mlscore_backend::{OnnxCpu, ScoringBackend, ScoringRequest, SklearnCpu};
use mlscore_bench::cpu_bench::naive_predict;
use mlscore_data::Dataset;
use mlscore_exec::{kernel, ExecPool, RunConfig};
use mlscore_forest::{FlatForest, ForestConfig, RandomForest};
use mlscore_fpga::FpgaBackend;
use mlscore_gpu::HummingbirdGpu;

fn bench(c: &mut Criterion) {
    let forest =
        RandomForest::synthetic_full(&ForestConfig::classification(64, 28, 2).with_depth(10), 7);
    let data = Dataset::higgs(2_000, 3).normalized();
    let request = ScoringRequest::new(&forest, data.frame()).unwrap();
    let n = data.frame().n_rows() as u64;

    let backends: Vec<(&str, Box<dyn ScoringBackend>)> = vec![
        ("sklearn_1t", Box::new(SklearnCpu::with_threads(1))),
        ("sklearn_8t", Box::new(SklearnCpu::with_threads(8))),
        ("onnx_flat", Box::new(OnnxCpu::single_thread())),
        ("fpga_engine", Box::new(FpgaBackend::paper_default())),
        ("hummingbird_gemm", Box::new(HummingbirdGpu::p100())),
    ];
    let mut g = c.benchmark_group("functional_scoring");
    g.sample_size(10);
    g.throughput(Throughput::Elements(n));
    for (name, backend) in &backends {
        g.bench_with_input(BenchmarkId::from_parameter(name), backend, |b, backend| {
            b.iter(|| backend.score(&request).unwrap())
        });
    }
    g.finish();

    // The executor kernels against the seed's naive per-record path, on the
    // same model/frame — the criterion view of the `repro bench` sweep.
    let flat = FlatForest::from_forest(&forest, forest.max_depth()).unwrap();
    let mut g = c.benchmark_group("blocked_kernel");
    g.sample_size(10);
    g.throughput(Throughput::Elements(n));
    g.bench_function("naive_per_record", |b| {
        b.iter(|| naive_predict(&forest, data.frame().as_slice()))
    });
    for threads in [1usize, 4] {
        let pool = ExecPool::new(threads);
        let cfg = RunConfig::for_threads(threads);
        g.bench_function(&format!("flat_lockstep_{threads}t"), |b| {
            b.iter(|| kernel::score_flat_batch(&flat, data.frame(), &pool, &cfg))
        });
        g.bench_function(&format!("forest_blocked_{threads}t"), |b| {
            b.iter(|| kernel::score_forest_batch(&forest, data.frame(), &pool, &cfg))
        });
    }
    g.finish();

    // Model preparation costs: flat-layout encoding and bundle (de)serialization.
    let mut g = c.benchmark_group("model_prep");
    g.bench_function("flat_encode_64x10", |b| {
        b.iter(|| mlscore_forest::FlatForest::from_forest(&forest, 10).unwrap())
    });
    let bundle = mlscore_forest::ModelBundle::serialize(&forest);
    g.bench_function("bundle_serialize", |b| {
        b.iter(|| mlscore_forest::ModelBundle::serialize(&forest))
    });
    g.bench_function("bundle_deserialize", |b| {
        b.iter(|| bundle.deserialize().unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
