//! Ablation A7: DBMS↔ML integration tightness (§IV-E). How much of the
//! end-to-end query time is the *pipeline's own* software overhead, and
//! what a tighter integration (resident runtime, in-engine scoring) buys
//! once the scoring stage itself has been accelerated.

use criterion::{criterion_group, Criterion};
use mlscore_data::DatasetSpec;
use mlscore_forest::{ModelBundle, ModelStats};
use mlscore_fpga::FpgaBackend;
use mlscore_pipeline::{IntegrationMode, QueryPipeline};

fn print_ablation() {
    println!(
        "\n--- Ablation A7: integration modes (HIGGS, 128 trees, 1M records, FPGA scoring) ---"
    );
    let model = mlscore_core::calibration::paper_model(DatasetSpec::Higgs, 128, 10);
    let stats = ModelStats::of(&model);
    let model_bytes = ModelBundle::serialize(&model).len() as u64;
    println!(
        "{:<18} {:>14} {:>18} {:>24}",
        "mode", "query total", "scoring fraction", "speedup vs external"
    );
    let mut baseline = None;
    for mode in IntegrationMode::all() {
        let pipeline = QueryPipeline::with_params(FpgaBackend::paper_default(), mode.params());
        let b = pipeline.estimate(&stats, model_bytes, 1_000_000);
        let total = b.total();
        let baseline_total = *baseline.get_or_insert(total);
        println!(
            "{:<18} {:>14} {:>17.1}% {:>23.1}x",
            mode.name(),
            total.to_string(),
            b.fraction(mlscore_sim::Stage::Scoring) * 100.0,
            baseline_total.ratio(total)
        );
    }
}

fn bench(c: &mut Criterion) {
    let model = mlscore_core::calibration::paper_model(DatasetSpec::Higgs, 128, 10);
    let stats = ModelStats::of(&model);
    let model_bytes = ModelBundle::serialize(&model).len() as u64;
    let mut g = c.benchmark_group("ablation_integration");
    for mode in IntegrationMode::all() {
        let pipeline = QueryPipeline::with_params(FpgaBackend::paper_default(), mode.params());
        g.bench_function(mode.name(), |b| {
            b.iter(|| pipeline.estimate(std::hint::black_box(&stats), model_bytes, 1_000_000))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_ablation();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
