//! Fig. 7: FPGA scoring-time breakdown regeneration (panels a and b), plus
//! the per-estimate cost of the FPGA timing model.

use criterion::{criterion_group, Criterion};
use mlscore_backend::ScoringBackend;
use mlscore_core::{figures, report};
use mlscore_data::DatasetSpec;
use mlscore_forest::ModelStats;
use mlscore_fpga::FpgaBackend;

fn print_figure() {
    println!("\n--- Fig. 7a (1 record) ---");
    println!("{}", report::render_fig7(&figures::fig7a()));
    println!("--- Fig. 7b (1M records) ---");
    println!("{}", report::render_fig7(&figures::fig7b()));
}

fn bench(c: &mut Criterion) {
    let backend = FpgaBackend::paper_default();
    let stats = ModelStats::of(&mlscore_core::calibration::paper_model(
        DatasetSpec::Higgs,
        128,
        10,
    ));
    c.bench_function("fig7/panel_a", |b| b.iter(figures::fig7a));
    c.bench_function("fig7/panel_b", |b| b.iter(figures::fig7b));
    c.bench_function("fig7/single_estimate", |b| {
        b.iter(|| backend.estimate(std::hint::black_box(&stats), 1_000_000))
    });
}

criterion_group!(benches, bench);

fn main() {
    print_figure();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
