//! Fig. 11: end-to-end T-SQL query breakdowns (CPU vs GPU vs FPGA scoring).

use criterion::{criterion_group, Criterion};
use mlscore_core::{figures, report};
use mlscore_data::DatasetSpec;

fn print_figure() {
    println!("\n--- Fig. 11 ---");
    for (dataset, trees, records) in [
        (DatasetSpec::Iris, 1usize, 1u64),
        (DatasetSpec::Iris, 128, 1_000_000),
        (DatasetSpec::Higgs, 128, 1_000_000),
    ] {
        println!(
            "{} — {trees} trees, 10 levels, {records} records",
            dataset.name()
        );
        println!(
            "{}",
            report::render_fig11(&figures::fig11(dataset, trees, 10, records))
        );
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11");
    g.sample_size(10);
    g.bench_function("higgs_heavy", |b| {
        b.iter(|| figures::fig11(DatasetSpec::Higgs, 128, 10, 1_000_000))
    });
    g.bench_function("iris_light", |b| {
        b.iter(|| figures::fig11(DatasetSpec::Iris, 1, 10, 1))
    });
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_figure();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
