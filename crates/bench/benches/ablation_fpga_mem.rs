//! Ablation A2: BRAM-resident vs DDR-backed tree memories. The paper's
//! design keeps everything on chip ("we only used the on-chip BRAM and thus
//! avoided the high cost of cache misses"); this ablation quantifies what
//! that choice buys by re-running the engine with a DDR initiation
//! interval.

use criterion::{criterion_group, Criterion};
use mlscore_backend::ScoringBackend;
use mlscore_data::DatasetSpec;
use mlscore_forest::ModelStats;
use mlscore_fpga::{EngineConfig, FpgaBackend, FpgaDevice, MemoryBackend};

fn backend(memory: MemoryBackend) -> FpgaBackend {
    FpgaBackend::with_config(
        FpgaDevice::stratix10_gx2800(),
        EngineConfig {
            memory,
            ..EngineConfig::default()
        },
    )
}

fn print_ablation() {
    println!("\n--- Ablation A2: BRAM vs DDR tree memories ---");
    println!(
        "{:<8} {:>12} {:>12} {:>12}",
        "memory", "IRIS 128t", "HIGGS 128t", "HIGGS 1t"
    );
    for (name, mem) in [("BRAM", MemoryBackend::Bram), ("DDR", MemoryBackend::Ddr)] {
        let b = backend(mem);
        let cell = |ds, trees| {
            let stats = ModelStats::of(&mlscore_core::calibration::paper_model(ds, trees, 10));
            b.estimate(&stats, 1_000_000).total().to_string()
        };
        println!(
            "{:<8} {:>12} {:>12} {:>12}",
            name,
            cell(DatasetSpec::Iris, 128),
            cell(DatasetSpec::Higgs, 128),
            cell(DatasetSpec::Higgs, 1),
        );
    }
}

fn print_quantized_capacity() {
    use mlscore_forest::{FlatForest, ForestConfig, QuantScheme, QuantizedForest, RandomForest};
    println!("\n    quantized (16-bit) layout vs the Fig. 4b f32 layout:");
    let forest =
        RandomForest::synthetic_full(&ForestConfig::classification(128, 28, 2).with_depth(10), 3);
    let flat = FlatForest::from_forest(&forest, 10).unwrap();
    let quant = QuantizedForest::from_forest(&forest, QuantScheme::unit(28)).unwrap();
    let data = mlscore_data::Dataset::higgs(2_000, 9).normalized();
    let rate = quant.mismatch_rate(&forest, data.frame().as_slice());
    println!(
        "      f32 image {} KiB (padded), quantized {} KiB (live), mismatch rate {:.4}%",
        flat.footprint_bytes() / 1024,
        quant.footprint_bytes() / 1024,
        rate * 100.0
    );
    println!("      -> the same 28.6 MB BRAM holds ~2x the trees (or one more tree level)");
}

fn bench(c: &mut Criterion) {
    let stats = ModelStats::of(&mlscore_core::calibration::paper_model(
        DatasetSpec::Iris,
        128,
        10,
    ));
    let mut g = c.benchmark_group("ablation_fpga_mem");
    for (name, mem) in [("bram", MemoryBackend::Bram), ("ddr", MemoryBackend::Ddr)] {
        let b_ = backend(mem);
        g.bench_function(name, |b| {
            b.iter(|| b_.estimate(std::hint::black_box(&stats), 1_000_000))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_ablation();
    print_quantized_capacity();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
