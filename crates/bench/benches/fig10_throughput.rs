//! Fig. 10: scoring throughput (million scorings per second) for all eight
//! panels, derived from the same sweeps as Fig. 9.

use criterion::{criterion_group, Criterion};
use mlscore_core::{figures, report};
use mlscore_data::DatasetSpec;

fn print_figure() {
    println!("\n--- Fig. 10 (all panels) ---");
    for panel in figures::fig9_all() {
        println!("{}", report::render_throughput(&panel));
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10");
    g.sample_size(10);
    let panel = figures::fig9(DatasetSpec::Higgs, 128, 10);
    g.bench_function("derive_throughput", |b| {
        b.iter(|| {
            panel
                .records
                .iter()
                .map(|&n| panel.throughput("FPGA", n).unwrap())
                .sum::<f64>()
        })
    });
    g.bench_function("render", |b| b.iter(|| report::render_throughput(&panel)));
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_figure();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
