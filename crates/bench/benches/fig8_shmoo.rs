//! Fig. 8 (and Fig. 1): the best-backend shmoo grids for both datasets.

use criterion::{criterion_group, Criterion};
use mlscore_core::{report, shmoo::ShmooTable};
use mlscore_data::DatasetSpec;

fn print_figure() {
    println!("\n--- Fig. 8 ---");
    for dataset in DatasetSpec::all() {
        println!("{}", report::render_shmoo(&ShmooTable::paper_grid(dataset)));
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    g.bench_function("iris_grid", |b| {
        b.iter(|| ShmooTable::paper_grid(DatasetSpec::Iris))
    });
    g.bench_function("higgs_grid", |b| {
        b.iter(|| ShmooTable::paper_grid(DatasetSpec::Higgs))
    });
    g.bench_function("reduced_grid", |b| {
        b.iter(|| ShmooTable::build(DatasetSpec::Higgs, 10, &[1, 128], &[1, 1_000_000]))
    });
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_figure();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
