//! Ablation A1: how the PCIe generation moves the FPGA's costs and the
//! offload crossover. The paper (§IV-E) flags link bandwidth as an
//! intrinsic hardware limit; gen4/gen5 relax the record-streaming bound
//! that caps HIGGS scoring at one record per link-delivered row.

use criterion::{criterion_group, Criterion};
use mlscore_backend::{OnnxCpu, ScoringBackend};
use mlscore_data::DatasetSpec;
use mlscore_forest::ModelStats;
use mlscore_fpga::{EngineConfig, FpgaBackend, FpgaDevice};
use mlscore_offload::PcieLink;

fn backend_with_link(link: PcieLink) -> FpgaBackend {
    let device = FpgaDevice {
        link,
        ..FpgaDevice::stratix10_gx2800()
    };
    FpgaBackend::with_config(device, EngineConfig::default())
}

fn print_ablation() {
    println!("\n--- Ablation A1: PCIe generation sweep (HIGGS, 128 trees, depth 10) ---");
    let stats = ModelStats::of(&mlscore_core::calibration::paper_model(
        DatasetSpec::Higgs,
        128,
        10,
    ));
    let cpu = OnnxCpu::paper_52th();
    println!(
        "{:<10} {:>14} {:>14} {:>18}",
        "link", "FPGA @1M", "speedup vs CPU", "crossover (records)"
    );
    for (name, link) in [
        ("gen3 x16", PcieLink::gen3_x16()),
        ("gen4 x16", PcieLink::gen4_x16()),
        ("gen5 x16", PcieLink::gen5_x16()),
    ] {
        let fpga = backend_with_link(link);
        let t = fpga.estimate(&stats, 1_000_000).total();
        let cpu_t = cpu.estimate(&stats, 1_000_000).total();
        let crossover = mlscore_core::headline::DENSE_SWEEP
            .iter()
            .copied()
            .find(|&n| fpga.estimate(&stats, n).total() < cpu.estimate(&stats, n).total());
        println!(
            "{:<10} {:>14} {:>13.1}x {:>18}",
            name,
            t.to_string(),
            cpu_t.ratio(t),
            crossover
                .map(|n| n.to_string())
                .unwrap_or_else(|| "never".into())
        );
    }
}

fn bench(c: &mut Criterion) {
    let stats = ModelStats::of(&mlscore_core::calibration::paper_model(
        DatasetSpec::Higgs,
        128,
        10,
    ));
    let mut g = c.benchmark_group("ablation_pcie");
    for (name, link) in [
        ("gen3", PcieLink::gen3_x16()),
        ("gen4", PcieLink::gen4_x16()),
        ("gen5", PcieLink::gen5_x16()),
    ] {
        let backend = backend_with_link(link);
        g.bench_function(name, |b| {
            b.iter(|| backend.estimate(std::hint::black_box(&stats), 1_000_000))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_ablation();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
