//! Ablation A4: scheduler policy comparison on the full paper grid —
//! regret relative to the oracle, and the cost of evaluating each policy.

use criterion::{criterion_group, Criterion};
use mlscore_core::calibration::{paper_model, RECORD_SWEEP, TREE_SWEEP};
use mlscore_data::DatasetSpec;
use mlscore_forest::ModelStats;
use mlscore_sched::{
    evaluate_policy, paper_backends, AffineFitPolicy, HeuristicPolicy, OraclePolicy, Policy,
};

fn grid() -> Vec<(ModelStats, u64)> {
    let mut grid = Vec::new();
    for dataset in DatasetSpec::all() {
        for &trees in &TREE_SWEEP {
            let stats = ModelStats::of(&paper_model(dataset, trees, 10));
            for &n in &RECORD_SWEEP {
                grid.push((stats, n));
            }
        }
    }
    grid
}

fn print_ablation() {
    println!("\n--- Ablation A4: scheduler policy regret ---");
    let backends = paper_backends();
    let grid = grid();
    for r in [
        evaluate_policy(&OraclePolicy, &grid, &backends),
        evaluate_policy(&HeuristicPolicy::default(), &grid, &backends),
        evaluate_policy(&AffineFitPolicy::default(), &grid, &backends),
    ] {
        println!(
            "  {:<16} agreement {:>5.1}%  worst {:>6.2}x  mean {:>5.2}x",
            r.policy,
            r.agreement() * 100.0,
            r.worst_factor,
            r.mean_factor
        );
    }
}

fn bench(c: &mut Criterion) {
    let backends = paper_backends();
    let stats = ModelStats::of(&paper_model(DatasetSpec::Higgs, 128, 10));
    let mut g = c.benchmark_group("ablation_sched");
    g.sample_size(20);
    let policies: [(&str, &dyn Policy); 3] = [
        ("oracle", &OraclePolicy),
        (
            "heuristic",
            &HeuristicPolicy {
                cpu_max_records: 5_000,
                simple_max_trees: 1,
            },
        ),
        (
            "affine",
            &AffineFitPolicy {
                probe_small: 1,
                probe_large: 100_000,
            },
        ),
    ];
    for (name, policy) in policies {
        g.bench_function(name, |b| {
            b.iter(|| policy.choose(std::hint::black_box(&stats), 1_000_000, &backends))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_ablation();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
