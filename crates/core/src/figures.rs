//! Generators for the paper's figures. Each returns a structured table the
//! `repro` binary (and the benches) render; nothing here prints.

use mlscore_backend::{OnnxCpu, ScoringBackend};
use mlscore_data::DatasetSpec;
use mlscore_forest::{ModelBundle, ModelStats};
use mlscore_fpga::FpgaBackend;
use mlscore_pipeline::QueryPipeline;
use mlscore_sim::{SimDuration, TimingBreakdown};

use crate::calibration::{paper_model, RECORD_SWEEP};
use crate::experiment::SweepPoint;

/// One bar of Fig. 7: the FPGA scoring-time breakdown at a configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7Result {
    /// Dataset family.
    pub dataset: DatasetSpec,
    /// Ensemble size.
    pub n_trees: usize,
    /// Tree depth.
    pub depth: usize,
    /// Batch size.
    pub n_records: u64,
    /// The six-component FPGA breakdown.
    pub breakdown: TimingBreakdown,
}

/// Fig. 7 for one configuration.
pub fn fig7(dataset: DatasetSpec, n_trees: usize, depth: usize, n_records: u64) -> Fig7Result {
    let stats = ModelStats::of(&paper_model(dataset, n_trees, depth));
    let breakdown = FpgaBackend::paper_default().estimate(&stats, n_records);
    Fig7Result {
        dataset,
        n_trees,
        depth,
        n_records,
        breakdown,
    }
}

/// Fig. 7a: all four 1-record bars ({IRIS, HIGGS} × {1, 128} trees).
pub fn fig7a() -> Vec<Fig7Result> {
    fig7_panel(1)
}

/// Fig. 7b: all four 1M-record bars.
pub fn fig7b() -> Vec<Fig7Result> {
    fig7_panel(1_000_000)
}

fn fig7_panel(n_records: u64) -> Vec<Fig7Result> {
    let mut out = Vec::new();
    for dataset in DatasetSpec::all() {
        for n_trees in [1usize, 128] {
            out.push(fig7(dataset, n_trees, 10, n_records));
        }
    }
    out
}

/// One latency/throughput series of Figs. 9–10.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Backend legend name.
    pub name: String,
    /// Total scoring time per record count (aligned with the curve set's
    /// `records`).
    pub totals: Vec<SimDuration>,
}

/// A Fig. 9 panel: scoring latency vs. record count for every supported
/// backend at one (dataset, trees, depth).
#[derive(Debug, Clone, PartialEq)]
pub struct CurveSet {
    /// Dataset family.
    pub dataset: DatasetSpec,
    /// Ensemble size.
    pub n_trees: usize,
    /// Tree depth.
    pub depth: usize,
    /// The record-count axis.
    pub records: Vec<u64>,
    /// One series per backend.
    pub series: Vec<Series>,
}

impl CurveSet {
    /// The series for a named backend.
    pub fn series_for(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name)
    }

    /// Latency of `backend` at `n_records`, if both are present.
    pub fn latency(&self, backend: &str, n_records: u64) -> Option<SimDuration> {
        let idx = self.records.iter().position(|&r| r == n_records)?;
        Some(self.series_for(backend)?.totals[idx])
    }

    /// Throughput (scorings per second) of `backend` at `n_records` —
    /// the Fig. 10 quantity.
    pub fn throughput(&self, backend: &str, n_records: u64) -> Option<f64> {
        Some(self.latency(backend, n_records)?.throughput(n_records))
    }
}

/// Fig. 9 panel (and the data for the matching Fig. 10 panel) at one
/// configuration, over the paper's record sweep.
pub fn fig9(dataset: DatasetSpec, n_trees: usize, depth: usize) -> CurveSet {
    fig9_over(dataset, n_trees, depth, &RECORD_SWEEP)
}

/// Fig. 9 panel over an explicit record axis.
pub fn fig9_over(dataset: DatasetSpec, n_trees: usize, depth: usize, records: &[u64]) -> CurveSet {
    let mut series: Vec<Series> = Vec::new();
    let mut names: Vec<String> = Vec::new();
    let points: Vec<SweepPoint> = records
        .iter()
        .map(|&n| SweepPoint::evaluate(dataset, n_trees, depth, n))
        .collect();
    if let Some(first) = points.first() {
        names = first.results.iter().map(|r| r.backend.clone()).collect();
    }
    for name in names {
        let totals = points
            .iter()
            .map(|p| {
                p.result(&name)
                    .expect("backend support is record-count independent")
                    .total()
            })
            .collect();
        series.push(Series {
            name: name.clone(),
            totals,
        });
    }
    CurveSet {
        dataset,
        n_trees,
        depth,
        records: records.to_vec(),
        series,
    }
}

/// All eight Fig. 9 panels (a–h): {IRIS, HIGGS} × {1, 128} trees × {6, 10}
/// levels.
pub fn fig9_all() -> Vec<CurveSet> {
    let mut out = Vec::new();
    for dataset in DatasetSpec::all() {
        for n_trees in [1usize, 128] {
            for depth in [6usize, 10] {
                out.push(fig9(dataset, n_trees, depth));
            }
        }
    }
    out
}

/// One row of Fig. 11: a backend's end-to-end query breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig11Row {
    /// Scoring backend used inside the query ("CPU", "GPU", "FPGA"
    /// families, with the concrete engine in parentheses).
    pub backend: String,
    /// The Fig. 11 stage breakdown.
    pub breakdown: TimingBreakdown,
}

/// Fig. 11: end-to-end T-SQL query breakdowns at one configuration for a
/// single-threaded CPU (as the figure assumes), the best GPU, and the FPGA.
pub fn fig11(dataset: DatasetSpec, n_trees: usize, depth: usize, n_records: u64) -> Vec<Fig11Row> {
    let model = paper_model(dataset, n_trees, depth);
    let stats = ModelStats::of(&model);
    let model_bytes = ModelBundle::serialize(&model).len() as u64;
    let mut rows = Vec::new();

    let cpu = QueryPipeline::new(OnnxCpu::single_thread());
    rows.push(Fig11Row {
        backend: "CPU (ONNX, 1 thread)".to_string(),
        breakdown: cpu.estimate(&stats, model_bytes, n_records),
    });

    // Best GPU for this model: RAPIDS only handles binary classification.
    let gpu_point = SweepPoint::evaluate(dataset, n_trees, depth, n_records);
    if let Some(best_gpu) = gpu_point.best_gpu() {
        let breakdown = if best_gpu.backend == "GPU-RAPIDS" {
            QueryPipeline::new(mlscore_gpu::RapidsFil::p100()).estimate(
                &stats,
                model_bytes,
                n_records,
            )
        } else {
            QueryPipeline::new(mlscore_gpu::HummingbirdGpu::p100()).estimate(
                &stats,
                model_bytes,
                n_records,
            )
        };
        rows.push(Fig11Row {
            backend: format!("GPU ({})", best_gpu.backend),
            breakdown,
        });
    }

    let fpga = QueryPipeline::new(FpgaBackend::paper_default());
    rows.push(Fig11Row {
        backend: "FPGA".to_string(),
        breakdown: fpga.estimate(&stats, model_bytes, n_records),
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlscore_sim::Stage;

    #[test]
    fn fig7_panels_have_four_bars_each() {
        assert_eq!(fig7a().len(), 4);
        assert_eq!(fig7b().len(), 4);
    }

    #[test]
    fn fig7_breakdowns_use_the_six_components() {
        let r = fig7(DatasetSpec::Higgs, 128, 10, 1_000_000);
        for stage in Stage::fpga_breakdown_order() {
            assert!(!r.breakdown.get(stage).is_zero(), "missing {stage}");
        }
    }

    #[test]
    fn fig9_series_align_with_record_axis() {
        let c = fig9_over(DatasetSpec::Iris, 1, 6, &[1, 100, 10_000]);
        assert_eq!(c.records.len(), 3);
        for s in &c.series {
            assert_eq!(s.totals.len(), 3);
        }
        assert!(c.series_for("FPGA").is_some());
        assert!(c.series_for("CPU_SKLearn_52th").is_some());
        assert!(c.series_for("GPU-RAPIDS").is_none(), "IRIS is 3-class");
    }

    #[test]
    fn fig9_higgs_includes_rapids() {
        let c = fig9_over(DatasetSpec::Higgs, 1, 6, &[1, 100]);
        assert!(c.series_for("GPU-RAPIDS").is_some());
    }

    #[test]
    fn latency_and_throughput_lookups() {
        let c = fig9_over(DatasetSpec::Higgs, 16, 10, &[1_000]);
        let lat = c.latency("FPGA", 1_000).unwrap();
        let thr = c.throughput("FPGA", 1_000).unwrap();
        assert!((thr - 1_000.0 / lat.as_secs()).abs() < 1e-6 * thr);
        assert!(c.latency("FPGA", 5).is_none());
        assert!(c.latency("nope", 1_000).is_none());
    }

    #[test]
    fn fig9_all_has_eight_panels() {
        // Use a tiny record axis via fig9_over for speed elsewhere; the full
        // fig9_all is the real protocol and must enumerate 8 panels.
        let panels = fig9_all();
        assert_eq!(panels.len(), 8);
    }

    #[test]
    fn fig11_has_cpu_gpu_fpga_rows() {
        let rows = fig11(DatasetSpec::Higgs, 128, 10, 1_000_000);
        assert_eq!(rows.len(), 3);
        assert!(rows[0].backend.starts_with("CPU"));
        assert!(rows[1].backend.starts_with("GPU"));
        assert_eq!(rows[2].backend, "FPGA");
        for row in &rows {
            assert!(!row.breakdown.get(Stage::PythonInvocation).is_zero());
            assert!(!row.breakdown.get(Stage::DataTransfer).is_zero());
        }
    }

    #[test]
    fn fig11_offload_makes_data_transfer_dominant() {
        // The paper: offloading scoring makes data transfer the dominant
        // component of the query.
        let rows = fig11(DatasetSpec::Higgs, 128, 10, 1_000_000);
        let fpga = &rows[2];
        assert_eq!(fpga.breakdown.dominant().unwrap().0, Stage::DataTransfer);
        // While the single-threaded CPU query is scoring-dominated.
        let cpu = &rows[0];
        assert_eq!(cpu.breakdown.dominant().unwrap().0, Stage::Scoring);
    }
}
