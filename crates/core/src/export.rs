//! CSV export of figure data, for external plotting.

use std::fs;
use std::io::{self, Write};
use std::path::Path;

use mlscore_data::DatasetSpec;
use mlscore_sim::Stage;

use crate::figures::{self, CurveSet, Fig11Row, Fig7Result};
use crate::shmoo::ShmooTable;

/// Writes a Fig. 7 panel: one row per (configuration, stage).
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_fig7_csv<W: Write>(results: &[Fig7Result], mut writer: W) -> io::Result<()> {
    writeln!(writer, "dataset,trees,depth,records,stage,seconds")?;
    for r in results {
        for (stage, d) in r.breakdown.iter() {
            writeln!(
                writer,
                "{},{},{},{},{},{}",
                r.dataset.name(),
                r.n_trees,
                r.depth,
                r.n_records,
                stage,
                d.as_secs()
            )?;
        }
    }
    Ok(())
}

/// Writes a Fig. 9/10 panel: one row per record count, one column per
/// backend (latency in seconds; throughput derives as records/latency).
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_curves_csv<W: Write>(curves: &CurveSet, mut writer: W) -> io::Result<()> {
    let names: Vec<&str> = curves.series.iter().map(|s| s.name.as_str()).collect();
    writeln!(writer, "records,{}", names.join(","))?;
    for (i, &n) in curves.records.iter().enumerate() {
        let cells: Vec<String> = curves
            .series
            .iter()
            .map(|s| s.totals[i].as_secs().to_string())
            .collect();
        writeln!(writer, "{n},{}", cells.join(","))?;
    }
    Ok(())
}

/// Writes a shmoo grid: one row per cell.
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_shmoo_csv<W: Write>(table: &ShmooTable, mut writer: W) -> io::Result<()> {
    writeln!(writer, "dataset,records,trees,winner,family,speedup")?;
    for (i, &records) in table.record_counts.iter().enumerate() {
        for (j, &trees) in table.tree_counts.iter().enumerate() {
            let cell = &table.cells[i][j];
            writeln!(
                writer,
                "{},{records},{trees},{},{},{}",
                table.dataset.name(),
                cell.winner,
                cell.family(),
                cell.speedup
            )?;
        }
    }
    Ok(())
}

/// Writes a Fig. 11 table: one row per (backend, stage).
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_fig11_csv<W: Write>(rows: &[Fig11Row], mut writer: W) -> io::Result<()> {
    writeln!(writer, "backend,stage,seconds")?;
    for row in rows {
        for (stage, d) in row.breakdown.iter() {
            writeln!(writer, "{},{},{}", row.backend, stage, d.as_secs())?;
        }
    }
    Ok(())
}

/// Regenerates every figure and writes one CSV per figure into `dir`
/// (created if missing). Returns the file names written.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save_all(dir: &Path) -> io::Result<Vec<String>> {
    fs::create_dir_all(dir)?;
    let mut written = Vec::new();
    let mut save =
        |name: &str, body: &dyn Fn(&mut dyn Write) -> io::Result<()>| -> io::Result<()> {
            let path = dir.join(name);
            let mut file = fs::File::create(&path)?;
            body(&mut file)?;
            written.push(name.to_string());
            Ok(())
        };

    save("fig7a.csv", &|w| write_fig7_csv(&figures::fig7a(), w))?;
    save("fig7b.csv", &|w| write_fig7_csv(&figures::fig7b(), w))?;
    for dataset in DatasetSpec::all() {
        let table = ShmooTable::paper_grid(dataset);
        save(
            &format!("fig8_{}.csv", dataset.name().to_lowercase()),
            &|w| write_shmoo_csv(&table, w),
        )?;
    }
    for panel in figures::fig9_all() {
        let name = format!(
            "fig9_{}_{}trees_{}levels.csv",
            panel.dataset.name().to_lowercase(),
            panel.n_trees,
            panel.depth
        );
        save(&name, &|w| write_curves_csv(&panel, w))?;
    }
    let fig11 = figures::fig11(DatasetSpec::Higgs, 128, 10, 1_000_000);
    save("fig11_higgs_128t_1m.csv", &|w| write_fig11_csv(&fig11, w))?;
    Ok(written)
}

/// Sanity helper used in tests: a stage column exists for every Fig. 7
/// component.
pub fn fig7_stage_names() -> Vec<String> {
    Stage::fpga_breakdown_order()
        .iter()
        .map(|s| s.to_string())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_csv_has_all_stages() {
        let mut buf = Vec::new();
        write_fig7_csv(&[figures::fig7(DatasetSpec::Iris, 1, 10, 1)], &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        for stage in fig7_stage_names() {
            assert!(text.contains(&stage), "missing {stage}");
        }
        assert!(text.starts_with("dataset,trees,depth,records,stage,seconds"));
    }

    #[test]
    fn curves_csv_is_rectangular() {
        let panel = figures::fig9_over(DatasetSpec::Higgs, 1, 6, &[1, 100]);
        let mut buf = Vec::new();
        write_curves_csv(&panel, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3); // header + 2 record counts
        let cols = lines[0].split(',').count();
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), cols);
        }
    }

    #[test]
    fn shmoo_csv_enumerates_cells() {
        let table = ShmooTable::build(DatasetSpec::Iris, 10, &[1, 128], &[1, 1_000_000]);
        let mut buf = Vec::new();
        write_shmoo_csv(&table, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 1 + 4);
        assert!(text.contains("IRIS,1000000,128,"));
    }

    #[test]
    fn fig11_csv_lists_backends() {
        let rows = figures::fig11(DatasetSpec::Iris, 1, 6, 10);
        let mut buf = Vec::new();
        write_fig11_csv(&rows, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("CPU"));
        assert!(text.contains("FPGA"));
        assert!(text.contains("python invocation"));
    }

    #[test]
    fn save_all_writes_every_figure() {
        let dir = std::env::temp_dir().join(format!("mlscore_export_{}", std::process::id()));
        let written = save_all(&dir).unwrap();
        // 2 fig7 + 2 fig8 + 8 fig9 + 1 fig11 = 13 files.
        assert_eq!(written.len(), 13);
        for name in &written {
            let meta = std::fs::metadata(dir.join(name)).unwrap();
            assert!(meta.len() > 0, "{name} is empty");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
