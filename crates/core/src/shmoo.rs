//! The Fig. 1 / Fig. 8 "shmoo" grids: best backend per (trees × records)
//! cell, with the best speedup over the CPU.

use mlscore_data::DatasetSpec;
use serde::{Deserialize, Serialize};

use crate::calibration::{RECORD_SWEEP, TREE_SWEEP};
use crate::experiment::SweepPoint;

/// One shmoo cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShmooCell {
    /// Winning backend's figure-legend name.
    pub winner: String,
    /// Best achievable speedup over the best CPU backend (1.0 when the CPU
    /// wins the cell).
    pub speedup: f64,
}

impl ShmooCell {
    /// Coarse backend family of the winner: `"CPU"`, `"GPU"`, or `"FPGA"` —
    /// what Fig. 1 prints in each cell.
    pub fn family(&self) -> &str {
        if self.winner.starts_with("CPU") {
            "CPU"
        } else if self.winner.starts_with("GPU") {
            "GPU"
        } else {
            "FPGA"
        }
    }
}

/// A full shmoo grid for one dataset (Fig. 8 left or right panel).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShmooTable {
    /// Dataset family.
    pub dataset: DatasetSpec,
    /// Tree depth used throughout (10 in Fig. 8).
    pub depth: usize,
    /// Column axis: tree counts.
    pub tree_counts: Vec<usize>,
    /// Row axis: record counts.
    pub record_counts: Vec<u64>,
    /// `cells[row][col]` for `record_counts[row]` × `tree_counts[col]`.
    pub cells: Vec<Vec<ShmooCell>>,
    /// The bottom "1M, GPU" row: best-GPU speedup over the CPU at 1M
    /// records per tree count (absent entries mean no GPU supports the
    /// model).
    pub gpu_row: Vec<Option<f64>>,
}

impl ShmooTable {
    /// Builds the Fig. 8 grid for `dataset` at depth 10 over the paper's
    /// sweeps.
    pub fn paper_grid(dataset: DatasetSpec) -> Self {
        Self::build(dataset, 10, &TREE_SWEEP, &RECORD_SWEEP)
    }

    /// Builds a grid over explicit axes.
    pub fn build(
        dataset: DatasetSpec,
        depth: usize,
        tree_counts: &[usize],
        record_counts: &[u64],
    ) -> Self {
        let cells = record_counts
            .iter()
            .map(|&n| {
                tree_counts
                    .iter()
                    .map(|&t| {
                        let point = SweepPoint::evaluate(dataset, t, depth, n);
                        ShmooCell {
                            winner: point.best().backend.clone(),
                            speedup: point.best_speedup_vs_cpu(),
                        }
                    })
                    .collect()
            })
            .collect();
        let gpu_row = tree_counts
            .iter()
            .map(|&t| {
                let point = SweepPoint::evaluate(dataset, t, depth, 1_000_000);
                point
                    .best_gpu()
                    .map(|gpu| point.best_cpu().total().ratio(gpu.total()))
            })
            .collect();
        Self {
            dataset,
            depth,
            tree_counts: tree_counts.to_vec(),
            record_counts: record_counts.to_vec(),
            cells,
            gpu_row,
        }
    }

    /// The cell for a given (records, trees) pair, if on the grid.
    pub fn cell(&self, n_records: u64, n_trees: usize) -> Option<&ShmooCell> {
        let row = self.record_counts.iter().position(|&r| r == n_records)?;
        let col = self.tree_counts.iter().position(|&t| t == n_trees)?;
        Some(&self.cells[row][col])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_grid(dataset: DatasetSpec) -> ShmooTable {
        ShmooTable::build(dataset, 10, &[1, 128], &[1, 1_000, 1_000_000])
    }

    #[test]
    fn top_rows_are_cpu_bottom_right_is_fpga() {
        for dataset in DatasetSpec::all() {
            let t = small_grid(dataset);
            assert_eq!(t.cell(1, 1).unwrap().family(), "CPU", "{dataset:?} 1x1");
            assert_eq!(t.cell(1, 128).unwrap().family(), "CPU", "{dataset:?} 1x128");
            assert_eq!(
                t.cell(1_000_000, 128).unwrap().family(),
                "FPGA",
                "{dataset:?} 1Mx128"
            );
        }
    }

    #[test]
    fn cpu_cells_have_unit_speedup() {
        let t = small_grid(DatasetSpec::Iris);
        assert_eq!(t.cell(1, 1).unwrap().speedup, 1.0);
    }

    #[test]
    fn heavy_cells_have_large_speedup() {
        let t = small_grid(DatasetSpec::Higgs);
        let s = t.cell(1_000_000, 128).unwrap().speedup;
        assert!(s > 20.0, "1M x 128 speedup {s}");
    }

    #[test]
    fn gpu_row_present_for_both_datasets() {
        let iris = small_grid(DatasetSpec::Iris);
        let higgs = small_grid(DatasetSpec::Higgs);
        // HB supports IRIS multi-class, so the GPU row exists there too.
        assert!(iris.gpu_row.iter().all(Option::is_some));
        assert!(higgs.gpu_row.iter().all(Option::is_some));
    }

    #[test]
    fn off_grid_lookup_is_none() {
        let t = small_grid(DatasetSpec::Iris);
        assert!(t.cell(5, 1).is_none());
        assert!(t.cell(1, 5).is_none());
    }
}
