//! The §IV headline numbers, computed from the models — the quantities
//! EXPERIMENTS.md compares against the paper.

use std::fmt;

use mlscore_data::DatasetSpec;
use serde::{Deserialize, Serialize};

use crate::experiment::{crossover_records, SweepPoint};
use crate::figures::fig11;

/// A dense record sweep for locating crossover points between decades.
pub const DENSE_SWEEP: [u64; 17] = [
    1, 10, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000, 200_000, 500_000,
    700_000, 850_000, 1_000_000,
];

/// Every headline ratio from §IV, as computed by this reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeadlineReport {
    /// FPGA speedup over the best CPU, IRIS, 128 trees, 10 levels, 1M
    /// records (paper: 54x).
    pub iris_fpga_speedup: f64,
    /// Best-GPU speedup over the best CPU, same point (paper: 7.5x).
    pub iris_gpu_speedup: f64,
    /// FPGA speedup over the best CPU, HIGGS, 128 trees, 10 levels, 1M
    /// records (paper: 69.7x).
    pub higgs_fpga_speedup: f64,
    /// Best-GPU speedup over the best CPU, same point (paper: 16.5x).
    pub higgs_gpu_speedup: f64,
    /// FPGA speedup over the best CPU, IRIS, 1 tree, 6 levels, 1M records
    /// (paper: 2.9x).
    pub iris_small_fpga_speedup: f64,
    /// Best-GPU speedup over the best CPU, IRIS, 1 tree, 10 levels, 1M
    /// records (paper: 6.7x, GPU-HB).
    pub iris_small_gpu_speedup: f64,
    /// First record count where an accelerator beats the best CPU — IRIS,
    /// 1 tree, 10 levels (paper: ~10K).
    pub iris_crossover_1_tree: Option<u64>,
    /// Same for IRIS, 128 trees (paper: ~1K).
    pub iris_crossover_128_trees: Option<u64>,
    /// Same for HIGGS, 1 tree (paper: ~5K).
    pub higgs_crossover_1_tree: Option<u64>,
    /// Same for HIGGS, 128 trees (paper: ~500).
    pub higgs_crossover_128_trees: Option<u64>,
    /// First record count where GPU-RAPIDS beats GPU-HB — HIGGS, 128
    /// trees, 10 levels (paper: ~700K).
    pub rapids_beats_hb_at: Option<u64>,
    /// Latency penalty of wrongly offloading a tiny job (1 record, 1 tree,
    /// IRIS) to the FPGA (paper: ~10x).
    pub wrong_offload_penalty: f64,
    /// Throughput forfeited by wrongly staying on the CPU for the heavy job
    /// (HIGGS, 128 trees, 1M records) (paper: ~70x).
    pub wrong_stay_penalty: f64,
    /// End-to-end T-SQL query speedup from offloading scoring to the FPGA,
    /// HIGGS, 128 trees, 1M records, vs. a single-threaded CPU
    /// (paper: ~2.6x).
    pub query_speedup_higgs: f64,
}

impl HeadlineReport {
    /// Computes every headline quantity from the calibrated models.
    pub fn compute() -> Self {
        let accel_crossover = |dataset, trees| {
            // First batch size where the overall winner is not a CPU.
            DENSE_SWEEP.iter().copied().find(|&n| {
                !SweepPoint::evaluate(dataset, trees, 10, n)
                    .best()
                    .backend
                    .starts_with("CPU")
            })
        };
        let speedups = |dataset, trees: usize, depth: usize| {
            let p = SweepPoint::evaluate(dataset, trees, depth, 1_000_000);
            let cpu = p.best_cpu().total();
            let fpga = p
                .result("FPGA")
                .map(|r| cpu.ratio(r.total()))
                .unwrap_or(0.0);
            let gpu = p.best_gpu().map(|r| cpu.ratio(r.total())).unwrap_or(0.0);
            (fpga, gpu)
        };
        let (iris_fpga_speedup, iris_gpu_speedup) = speedups(DatasetSpec::Iris, 128, 10);
        let (higgs_fpga_speedup, higgs_gpu_speedup) = speedups(DatasetSpec::Higgs, 128, 10);
        let (iris_small_fpga_speedup, _) = speedups(DatasetSpec::Iris, 1, 6);
        let (_, iris_small_gpu_speedup) = speedups(DatasetSpec::Iris, 1, 10);

        // Wrong offload: tiny job forced onto the FPGA.
        let tiny = SweepPoint::evaluate(DatasetSpec::Iris, 1, 10, 1);
        let wrong_offload_penalty = tiny
            .result("FPGA")
            .expect("FPGA present")
            .total()
            .ratio(tiny.best_cpu().total());

        // Wrong stay: heavy job kept on the CPU (throughput factor = time
        // factor at fixed records).
        let heavy = SweepPoint::evaluate(DatasetSpec::Higgs, 128, 10, 1_000_000);
        let wrong_stay_penalty = heavy.best_cpu().total().ratio(heavy.best().total());

        let fig11_rows = fig11(DatasetSpec::Higgs, 128, 10, 1_000_000);
        let cpu_total = fig11_rows[0].breakdown.total();
        let fpga_total = fig11_rows
            .last()
            .expect("fig11 includes the FPGA row")
            .breakdown
            .total();

        Self {
            iris_fpga_speedup,
            iris_gpu_speedup,
            higgs_fpga_speedup,
            higgs_gpu_speedup,
            iris_small_fpga_speedup,
            iris_small_gpu_speedup,
            iris_crossover_1_tree: accel_crossover(DatasetSpec::Iris, 1),
            iris_crossover_128_trees: accel_crossover(DatasetSpec::Iris, 128),
            higgs_crossover_1_tree: accel_crossover(DatasetSpec::Higgs, 1),
            higgs_crossover_128_trees: accel_crossover(DatasetSpec::Higgs, 128),
            rapids_beats_hb_at: crossover_records(
                DatasetSpec::Higgs,
                128,
                10,
                "GPU-HB",
                "GPU-RAPIDS",
                &DENSE_SWEEP,
            ),
            wrong_offload_penalty,
            wrong_stay_penalty,
            query_speedup_higgs: cpu_total.ratio(fpga_total),
        }
    }
}

impl fmt::Display for HeadlineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn x(v: Option<u64>) -> String {
            v.map(|n| n.to_string()).unwrap_or_else(|| "never".into())
        }
        writeln!(f, "headline ratios (paper -> measured):")?;
        writeln!(
            f,
            "  IRIS  128t/10l/1M : FPGA 54x    -> {:6.1}x   GPU 7.5x  -> {:6.1}x",
            self.iris_fpga_speedup, self.iris_gpu_speedup
        )?;
        writeln!(
            f,
            "  HIGGS 128t/10l/1M : FPGA 69.7x  -> {:6.1}x   GPU 16.5x -> {:6.1}x",
            self.higgs_fpga_speedup, self.higgs_gpu_speedup
        )?;
        writeln!(
            f,
            "  IRIS  1t/6l/1M    : FPGA 2.9x   -> {:6.1}x",
            self.iris_small_fpga_speedup
        )?;
        writeln!(
            f,
            "  IRIS  1t/10l/1M   : GPU  6.7x   -> {:6.1}x",
            self.iris_small_gpu_speedup
        )?;
        writeln!(
            f,
            "  crossovers (records): IRIS 1t ~10K -> {}, IRIS 128t ~1K -> {}, HIGGS 1t ~5K -> {}, HIGGS 128t ~500 -> {}",
            x(self.iris_crossover_1_tree),
            x(self.iris_crossover_128_trees),
            x(self.higgs_crossover_1_tree),
            x(self.higgs_crossover_128_trees)
        )?;
        writeln!(
            f,
            "  RAPIDS beats HB past ~700K -> {}",
            x(self.rapids_beats_hb_at)
        )?;
        writeln!(
            f,
            "  wrong offload ~10x -> {:.1}x    wrong stay ~70x -> {:.1}x",
            self.wrong_offload_penalty, self.wrong_stay_penalty
        )?;
        write!(
            f,
            "  end-to-end query speedup (HIGGS 1M) ~2.6x -> {:.1}x",
            self.query_speedup_higgs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_computes_and_displays() {
        let r = HeadlineReport::compute();
        let s = format!("{r}");
        assert!(s.contains("headline ratios"));
        assert!(r.higgs_fpga_speedup > 1.0);
    }
}
