//! Experiment harness: calibration, sweeps, and generators for every table
//! and figure in the paper's evaluation (Figs. 1 and 7–11, plus the §IV
//! headline ratios).
//!
//! # Example
//!
//! ```
//! use mlscore_core::figures;
//! use mlscore_data::DatasetSpec;
//!
//! // Regenerate Fig. 7a: the FPGA scoring-time breakdown for one record.
//! let fig = figures::fig7(DatasetSpec::Iris, 128, 10, 1);
//! assert!(!fig.breakdown.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibration;
pub mod experiment;
pub mod export;
pub mod figures;
pub mod headline;
pub mod report;
pub mod shmoo;

pub use experiment::{BackendResult, SweepPoint};
pub use headline::HeadlineReport;
pub use shmoo::{ShmooCell, ShmooTable};
