//! Plain-text renderers for the figure tables — what the `repro` binary
//! prints.

use std::fmt::Write as _;

use mlscore_sim::Stage;

use crate::figures::{CurveSet, Fig11Row, Fig7Result};
use crate::shmoo::ShmooTable;

/// Renders a Fig. 7 panel (a set of FPGA breakdown bars) as a table:
/// stages as rows, configurations as columns.
pub fn render_fig7(results: &[Fig7Result]) -> String {
    let mut out = String::new();
    let _ = write!(out, "{:<22}", "component");
    for r in results {
        let _ = write!(
            out,
            " | {:>20}",
            format!("{} {}t", r.dataset.name(), r.n_trees)
        );
    }
    let _ = writeln!(out);
    for stage in Stage::fpga_breakdown_order() {
        let _ = write!(out, "{:<22}", stage.to_string());
        for r in results {
            let _ = write!(out, " | {:>20}", r.breakdown.get(stage).to_string());
        }
        let _ = writeln!(out);
    }
    let _ = write!(out, "{:<22}", "TOTAL");
    for r in results {
        let _ = write!(out, " | {:>20}", r.breakdown.total().to_string());
    }
    let _ = writeln!(out);
    out
}

/// Renders a shmoo grid (Fig. 1 / Fig. 8): winner family and speedup per
/// cell, plus the bottom "1M, GPU" row.
pub fn render_shmoo(table: &ShmooTable) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} shmoo (depth {}): best backend (speedup vs best CPU)",
        table.dataset.name(),
        table.depth
    );
    let _ = write!(out, "{:>10}", "records");
    for t in &table.tree_counts {
        let _ = write!(out, " | {:>16}", format!("{t} trees"));
    }
    let _ = writeln!(out);
    for (i, &n) in table.record_counts.iter().enumerate() {
        let _ = write!(out, "{:>10}", n);
        for cell in &table.cells[i] {
            let _ = write!(
                out,
                " | {:>16}",
                format!("{} ({:.1}x)", cell.family(), cell.speedup)
            );
        }
        let _ = writeln!(out);
    }
    let _ = write!(out, "{:>10}", "1M, GPU");
    for g in &table.gpu_row {
        let _ = match g {
            Some(s) => write!(out, " | {:>16}", format!("{s:.1}x")),
            None => write!(out, " | {:>16}", "n/a"),
        };
    }
    let _ = writeln!(out);
    out
}

/// Renders a Fig. 9 latency panel: records as rows, backends as columns.
pub fn render_latency(curves: &CurveSet) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} latency, {} trees, {} levels",
        curves.dataset.name(),
        curves.n_trees,
        curves.depth
    );
    let _ = write!(out, "{:>10}", "records");
    for s in &curves.series {
        let _ = write!(out, " | {:>16}", s.name);
    }
    let _ = writeln!(out);
    for (i, &n) in curves.records.iter().enumerate() {
        let _ = write!(out, "{:>10}", n);
        for s in &curves.series {
            let _ = write!(out, " | {:>16}", s.totals[i].to_string());
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders a Fig. 10 throughput panel (million scorings per second).
pub fn render_throughput(curves: &CurveSet) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} throughput (M scorings/s), {} trees, {} levels",
        curves.dataset.name(),
        curves.n_trees,
        curves.depth
    );
    let _ = write!(out, "{:>10}", "records");
    for s in &curves.series {
        let _ = write!(out, " | {:>16}", s.name);
    }
    let _ = writeln!(out);
    for (i, &n) in curves.records.iter().enumerate() {
        let _ = write!(out, "{:>10}", n);
        for s in &curves.series {
            let mps = s.totals[i].throughput(n) / 1e6;
            let _ = write!(out, " | {:>16}", format!("{mps:.4}"));
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders a Fig. 11 end-to-end breakdown table.
pub fn render_fig11(rows: &[Fig11Row]) -> String {
    let mut out = String::new();
    let _ = write!(out, "{:<24}", "stage");
    for r in rows {
        let _ = write!(out, " | {:>22}", r.backend);
    }
    let _ = writeln!(out);
    let mut stages: Vec<Stage> = Stage::query_breakdown_order().to_vec();
    stages.push(Stage::PostProcessing);
    for stage in stages {
        let _ = write!(out, "{:<24}", stage.to_string());
        for r in rows {
            let _ = write!(out, " | {:>22}", r.breakdown.get(stage).to_string());
        }
        let _ = writeln!(out);
    }
    let _ = write!(out, "{:<24}", "TOTAL");
    for r in rows {
        let _ = write!(out, " | {:>22}", r.breakdown.total().to_string());
    }
    let _ = writeln!(out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures;
    use mlscore_data::DatasetSpec;

    #[test]
    fn fig7_table_mentions_all_components() {
        let s = render_fig7(&[figures::fig7(DatasetSpec::Iris, 1, 10, 1)]);
        for stage in Stage::fpga_breakdown_order() {
            assert!(s.contains(&stage.to_string()), "missing {stage}");
        }
        assert!(s.contains("TOTAL"));
    }

    #[test]
    fn shmoo_table_renders_every_cell() {
        let t = ShmooTable::build(DatasetSpec::Iris, 10, &[1, 128], &[1, 1_000_000]);
        let s = render_shmoo(&t);
        assert!(s.contains("128 trees"));
        assert!(s.contains("1M, GPU"));
        assert!(s.matches('x').count() >= 4);
    }

    #[test]
    fn latency_and_throughput_tables_render() {
        let c = figures::fig9_over(DatasetSpec::Higgs, 1, 6, &[1, 1_000]);
        let lat = render_latency(&c);
        assert!(lat.contains("HIGGS latency"));
        assert!(lat.contains("FPGA"));
        let thr = render_throughput(&c);
        assert!(thr.contains("M scorings/s"));
    }

    #[test]
    fn fig11_table_renders_rows() {
        let rows = figures::fig11(DatasetSpec::Iris, 1, 6, 100);
        let s = render_fig11(&rows);
        assert!(s.contains("python invocation"));
        assert!(s.contains("TOTAL"));
    }
}
