//! Sweeping backends over model/batch grids.

use mlscore_backend::ScoringBackend;
use mlscore_data::DatasetSpec;
use mlscore_forest::ModelStats;
use mlscore_sched::paper_backends;
use mlscore_sim::{SimDuration, TimingBreakdown};

use crate::calibration::paper_model;

/// One backend's modelled result at a sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendResult {
    /// Backend name (figure legend).
    pub backend: String,
    /// The modelled scoring-time breakdown.
    pub breakdown: TimingBreakdown,
}

impl BackendResult {
    /// Total scoring time.
    pub fn total(&self) -> SimDuration {
        self.breakdown.total()
    }

    /// Throughput in scorings per second for `n_records`.
    pub fn throughput(&self, n_records: u64) -> f64 {
        self.total().throughput(n_records)
    }
}

/// All supported backends evaluated at one (dataset, model, batch) point.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Dataset family.
    pub dataset: DatasetSpec,
    /// Ensemble size.
    pub n_trees: usize,
    /// Tree depth in levels.
    pub depth: usize,
    /// Batch size.
    pub n_records: u64,
    /// Per-backend results (unsupported backends are absent).
    pub results: Vec<BackendResult>,
}

impl SweepPoint {
    /// Evaluates the paper's backend roster at one point.
    pub fn evaluate(dataset: DatasetSpec, n_trees: usize, depth: usize, n_records: u64) -> Self {
        let model = paper_model(dataset, n_trees, depth);
        let stats = ModelStats::of(&model);
        Self::evaluate_with(
            &paper_backends(),
            &stats,
            dataset,
            n_trees,
            depth,
            n_records,
        )
    }

    /// Evaluates an explicit backend set at one point.
    pub fn evaluate_with(
        backends: &[Box<dyn ScoringBackend>],
        stats: &ModelStats,
        dataset: DatasetSpec,
        n_trees: usize,
        depth: usize,
        n_records: u64,
    ) -> Self {
        let results = backends
            .iter()
            .filter(|b| b.supports(stats).is_ok())
            .map(|b| BackendResult {
                backend: b.name().to_string(),
                breakdown: b.estimate(stats, n_records),
            })
            .collect();
        Self {
            dataset,
            n_trees,
            depth,
            n_records,
            results,
        }
    }

    /// The result for a named backend, if present.
    pub fn result(&self, backend: &str) -> Option<&BackendResult> {
        self.results.iter().find(|r| r.backend == backend)
    }

    /// The fastest backend overall.
    ///
    /// # Panics
    ///
    /// Panics if the point has no results.
    pub fn best(&self) -> &BackendResult {
        self.results
            .iter()
            .min_by(|a, b| a.total().cmp(&b.total()))
            .expect("sweep point has at least one backend")
    }

    /// The fastest CPU backend — the paper's comparison baseline ("for each
    /// number of records, we select the model with the best performance for
    /// the CPU").
    ///
    /// # Panics
    ///
    /// Panics if no CPU backend was evaluated.
    pub fn best_cpu(&self) -> &BackendResult {
        self.results
            .iter()
            .filter(|r| r.backend.starts_with("CPU"))
            .min_by(|a, b| a.total().cmp(&b.total()))
            .expect("sweep point includes a CPU backend")
    }

    /// The fastest GPU backend, if any GPU supports the model.
    pub fn best_gpu(&self) -> Option<&BackendResult> {
        self.results
            .iter()
            .filter(|r| r.backend.starts_with("GPU"))
            .min_by(|a, b| a.total().cmp(&b.total()))
    }

    /// Best overall speedup relative to the best CPU (1.0 when the CPU
    /// wins).
    pub fn best_speedup_vs_cpu(&self) -> f64 {
        self.best_cpu().total().ratio(self.best().total())
    }
}

/// Finds the crossover record count: the first batch size in `sweep` where
/// `contender` beats `baseline` at the given model shape, scanning a dense
/// decade grid. Returns `None` when the contender never wins.
pub fn crossover_records(
    dataset: DatasetSpec,
    n_trees: usize,
    depth: usize,
    baseline: &str,
    contender: &str,
    sweep: &[u64],
) -> Option<u64> {
    for &n in sweep {
        let point = SweepPoint::evaluate(dataset, n_trees, depth, n);
        match (point.result(baseline), point.result(contender)) {
            (Some(base), Some(cont)) if cont.total() < base.total() => return Some(n),
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_includes_cpu_backends_everywhere() {
        let p = SweepPoint::evaluate(DatasetSpec::Iris, 16, 10, 1_000);
        assert!(p.result("CPU_SKLearn_52th").is_some());
        assert!(p.result("CPU_ONNX").is_some());
        assert!(p.result("FPGA").is_some());
        // IRIS is 3-class: RAPIDS absent.
        assert!(p.result("GPU-RAPIDS").is_none());
    }

    #[test]
    fn higgs_points_include_rapids() {
        let p = SweepPoint::evaluate(DatasetSpec::Higgs, 16, 10, 1_000);
        assert!(p.result("GPU-RAPIDS").is_some());
    }

    #[test]
    fn best_cpu_is_cpu() {
        let p = SweepPoint::evaluate(DatasetSpec::Higgs, 128, 10, 1_000_000);
        assert!(p.best_cpu().backend.starts_with("CPU"));
        assert!(p.best_speedup_vs_cpu() >= 1.0);
    }

    #[test]
    fn tiny_batches_favor_cpu() {
        let p = SweepPoint::evaluate(DatasetSpec::Iris, 128, 10, 1);
        assert!(
            p.best().backend.starts_with("CPU"),
            "best {}",
            p.best().backend
        );
        assert_eq!(p.best_speedup_vs_cpu(), 1.0);
    }

    #[test]
    fn crossover_exists_for_heavy_models() {
        let xover = crossover_records(
            DatasetSpec::Higgs,
            128,
            10,
            "CPU_ONNX_52th",
            "FPGA",
            &crate::calibration::RECORD_SWEEP,
        );
        let n = xover.expect("FPGA must eventually beat the CPU");
        assert!(n <= 10_000, "crossover at {n}");
    }
}
