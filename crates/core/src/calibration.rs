//! Central calibration: the model/dataset/backends setup every figure uses.
//!
//! All device-level constants live with their devices (`CpuSpec`,
//! `GpuDevice`, `FpgaDevice`, `PcieLink`, `PipelineParams`) — this module
//! fixes the *experimental protocol*: which models stand in for the paper's
//! trained models, and which record/tree sweeps the figures run.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

use mlscore_data::DatasetSpec;
use mlscore_forest::{ForestConfig, RandomForest};

/// The record-count sweep used by Figs. 8–10 (1 to 1M, decades).
pub const RECORD_SWEEP: [u64; 7] = [1, 10, 100, 1_000, 10_000, 100_000, 1_000_000];

/// The tree-count sweep used by Fig. 8.
pub const TREE_SWEEP: [usize; 5] = [1, 16, 32, 64, 128];

/// The tree depths the paper evaluates (Figs. 9–10).
pub const DEPTH_SWEEP: [usize; 2] = [6, 10];

/// IRIS was replicated from 150 original samples (§IV-A), so a trained IRIS
/// tree can never grow more leaves than distinct samples — and with
/// bootstrap resampling each tree sees only ~63.2% of them (~95 distinct
/// samples). This leaf cap is what makes IRIS models "simpler" than HIGGS
/// models at identical tree count and depth — the mechanism behind the
/// paper's dataset-sensitivity findings.
pub const IRIS_DISTINCT_SAMPLES: usize = 95;

/// Builds the stand-in for the paper's trained model on `dataset` with the
/// given ensemble shape: leaf-capped trees for IRIS (150 distinct samples),
/// full trees for HIGGS (its 11M-row pool saturates depth-10 trees).
///
/// Deterministic in `(dataset, n_trees, depth)`.
///
/// # Example
///
/// ```
/// use mlscore_core::calibration::paper_model;
/// use mlscore_data::DatasetSpec;
///
/// let iris = paper_model(DatasetSpec::Iris, 128, 10);
/// let higgs = paper_model(DatasetSpec::Higgs, 128, 10);
/// assert!(iris.n_nodes() < higgs.n_nodes());
/// ```
pub fn paper_model(dataset: DatasetSpec, n_trees: usize, depth: usize) -> RandomForest {
    // Sweeps evaluate the same handful of shapes hundreds of times; cache
    // the (deterministic) builds.
    type ModelCache = Mutex<BTreeMap<(DatasetSpec, usize, usize), RandomForest>>;
    static CACHE: OnceLock<ModelCache> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(BTreeMap::new()));
    if let Some(model) = cache
        .lock()
        .expect("calibration cache poisoned")
        .get(&(dataset, n_trees, depth))
    {
        return model.clone();
    }
    let config = ForestConfig::classification(n_trees, dataset.n_features(), dataset.n_classes())
        .with_depth(depth);
    let seed = 0xC0FFEE ^ (n_trees as u64) << 16 ^ (depth as u64);
    let model = match dataset {
        DatasetSpec::Iris => RandomForest::synthetic_capped(&config, IRIS_DISTINCT_SAMPLES, seed),
        DatasetSpec::Higgs => RandomForest::synthetic_full(&config, seed),
    };
    cache
        .lock()
        .expect("calibration cache poisoned")
        .insert((dataset, n_trees, depth), model.clone());
    model
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_match_paper_axes() {
        assert_eq!(RECORD_SWEEP[0], 1);
        assert_eq!(*RECORD_SWEEP.last().unwrap(), 1_000_000);
        assert_eq!(*TREE_SWEEP.last().unwrap(), 128);
        assert_eq!(DEPTH_SWEEP, [6, 10]);
    }

    #[test]
    fn iris_models_are_leaf_capped() {
        let m = paper_model(DatasetSpec::Iris, 8, 10);
        for t in m.trees() {
            assert!(t.n_leaves() <= IRIS_DISTINCT_SAMPLES);
        }
        assert_eq!(m.n_features(), 4);
    }

    #[test]
    fn higgs_models_are_full() {
        let m = paper_model(DatasetSpec::Higgs, 4, 10);
        for t in m.trees() {
            assert_eq!(t.n_leaves(), 1 << 10);
        }
        assert_eq!(m.n_features(), 28);
    }

    #[test]
    fn models_are_deterministic() {
        assert_eq!(
            paper_model(DatasetSpec::Iris, 16, 6),
            paper_model(DatasetSpec::Iris, 16, 6)
        );
    }

    #[test]
    fn shallow_models_respect_depth() {
        let m = paper_model(DatasetSpec::Higgs, 2, 6);
        assert_eq!(m.max_depth(), 6);
    }
}
