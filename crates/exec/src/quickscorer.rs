//! QuickScorer-class bitvector traversal kernel.
//!
//! Instead of walking root→leaf per (record, tree), QuickScorer flips the
//! loop to run over *split conditions*: every decision node whose test
//! `x[feature] <= threshold` comes out FALSE rules out its entire left
//! subtree — a contiguous range of leaves once leaves are numbered in
//! DFS left-to-right order. Each node therefore carries a precomputed
//! bitvector mask (all ones minus its left-subtree leaf range), grouped by
//! feature and sorted by threshold:
//!
//! ```text
//!   per feature f:  (thr₀, tree, mask) (thr₁, tree, mask) …   thr ascending
//!   per record:     bv[t] = base[t];            // all leaves possible
//!                   for f: while thrᵢ < x[f]:   // false nodes only
//!                       bv[tree_of(i)] &= maskᵢ
//!   exit leaf of t: lowest set bit of bv[t]     // trailing_zeros scan
//! ```
//!
//! The per-record cost is `O(false nodes × words)` mask ANDs plus a
//! `O(trees × words)` scan — independent of tree *depth*, which is why the
//! kernel wins on wide, shallow ensembles (≤ 64 leaves/tree needs a single
//! `u64` word per tree) and loses badly on full depth-10 trees (16 words
//! per AND). The [`choice`](crate::choice) cost model encodes exactly that
//! trade-off.
//!
//! # Bit-exactness
//!
//! The surviving lowest bit is the leaf the root→leaf walk reaches, so
//! payloads — and the vote / ascending-tree-order accumulation folds —
//! are identical to the blocked and SIMD walkers, *including* NaN inputs:
//! a NaN feature value fails every `x <= thr` test, which the scorer
//! mirrors by applying every mask of that feature (the ascending-threshold
//! early exit is only valid for ordered values), and NaN *thresholds*
//! (always-false tests) are folded into each tree's `base` bitvector at
//! build time.

use mlscore_data::TabularFrame;
use mlscore_forest::{FlatForest, FlatTree, NodeRecord, Predictions, RandomForest, Task};

use crate::kernel::{blocks, FlatImage, Scratch, SharedOut, SCRATCH};
use crate::pool::{ExecPool, RunConfig};
use crate::report::RunReport;

/// The SoA QuickScorer layout for one forest, built once per
/// [`FlatImage`] and cached there.
pub(crate) struct QuickScorer {
    n_features: usize,
    n_trees: usize,
    /// Bitvector words per tree: `ceil(max leaves per tree / 64)`.
    words: usize,
    /// Per-feature item ranges into the three parallel arrays below.
    feat_start: Vec<usize>,
    /// Item split thresholds, ascending within each feature.
    thr: Vec<f32>,
    /// Item owning tree.
    tree_of: Vec<u32>,
    /// Item masks, `words` words each: ones minus the left-subtree range.
    masks: Vec<u64>,
    /// Initial per-tree bitvectors (`n_trees × words`): all ones with
    /// NaN-threshold (always-false) node masks pre-applied.
    base: Vec<u64>,
    /// Per-tree offset into `leaves`.
    leaf_start: Vec<u32>,
    /// Leaf payloads in DFS left-to-right order, per tree.
    leaves: Vec<f32>,
}

/// One decision node collected during the DFS, before sorting.
struct Item {
    feature: u32,
    thr: f32,
    tree: u32,
    /// Left-subtree leaf range (local leaf indices).
    lo: u32,
    hi: u32,
}

impl QuickScorer {
    /// Builds the per-feature threshold lists, masks, and leaf tables from
    /// a flat forest.
    pub(crate) fn build(forest: &FlatForest) -> Self {
        let n_features = forest.n_features();
        let n_trees = forest.n_trees();
        let mut items: Vec<Item> = Vec::new();
        let mut leaves: Vec<f32> = Vec::new();
        let mut leaf_start: Vec<u32> = Vec::with_capacity(n_trees + 1);
        let mut max_leaves = 1usize;
        for (t, tree) in forest.trees().iter().enumerate() {
            let before = leaves.len();
            leaf_start.push(before as u32);
            dfs(tree, t as u32, 0, 0, before, &mut items, &mut leaves);
            max_leaves = max_leaves.max(leaves.len() - before);
        }
        leaf_start.push(leaves.len() as u32);
        let words = max_leaves.div_ceil(64);

        // Deterministic order: by feature, then threshold ascending (total
        // order so NaNs group at the end), then tree, then leaf range.
        items.sort_by(|a, b| {
            a.feature
                .cmp(&b.feature)
                .then(a.thr.total_cmp(&b.thr))
                .then(a.tree.cmp(&b.tree))
                .then(a.lo.cmp(&b.lo))
        });

        let mut base = vec![!0u64; n_trees * words];
        let mut feat_start = vec![0usize; n_features + 1];
        let mut thr = Vec::new();
        let mut tree_of = Vec::new();
        let mut masks = Vec::new();
        for item in &items {
            if item.thr.is_nan() {
                // `x <= NaN` is false for every x: the left subtree is
                // never reachable. Fold the mask into the tree's base
                // bitvector instead of scanning it per record.
                and_range_mask(
                    &mut base[item.tree as usize * words..(item.tree as usize + 1) * words],
                    item.lo as usize,
                    item.hi as usize,
                );
                continue;
            }
            feat_start[item.feature as usize + 1] += 1;
            thr.push(item.thr);
            tree_of.push(item.tree);
            let at = masks.len();
            masks.resize(at + words, !0u64);
            and_range_mask(&mut masks[at..], item.lo as usize, item.hi as usize);
        }
        for f in 0..n_features {
            feat_start[f + 1] += feat_start[f];
        }
        Self {
            n_features,
            n_trees,
            words,
            feat_start,
            thr,
            tree_of,
            masks,
            base,
            leaf_start,
            leaves,
        }
    }

    /// Bitvector words per tree.
    pub(crate) fn words_per_tree(&self) -> usize {
        self.words
    }

    /// Total decision-node items across all per-feature lists.
    pub(crate) fn n_items(&self) -> usize {
        self.thr.len()
    }

    /// Bytes held by the mask, threshold, and leaf tables.
    pub(crate) fn layout_bytes(&self) -> usize {
        self.masks.len() * 8
            + self.base.len() * 8
            + self.thr.len() * 4
            + self.tree_of.len() * 4
            + self.leaves.len() * 4
    }

    /// Scores one record, appending each tree's leaf payload through
    /// `fold` in ascending tree order. `bv` is the caller's reusable
    /// `n_trees × words` scratch.
    // analyze: hot
    #[inline]
    fn score_record(&self, row: &[f32], bv: &mut [u64], mut fold: impl FnMut(usize, f32)) {
        debug_assert_eq!(row.len(), self.n_features, "row width != model width");
        let w = self.words;
        bv.copy_from_slice(&self.base);
        for (f, &x) in row.iter().enumerate() {
            let (s0, s1) = (self.feat_start[f], self.feat_start[f + 1]);
            if x.is_nan() {
                // Every `x <= thr` test is false: apply every mask.
                for i in s0..s1 {
                    let t = self.tree_of[i] as usize;
                    let m = &self.masks[i * w..(i + 1) * w];
                    for (b, &mw) in bv[t * w..(t + 1) * w].iter_mut().zip(m) {
                        *b &= mw;
                    }
                }
                continue;
            }
            let mut i = s0;
            // Thresholds ascend: the first `thr >= x` ends the false run.
            while i < s1 && self.thr[i] < x {
                let t = self.tree_of[i] as usize;
                let m = &self.masks[i * w..(i + 1) * w];
                for (b, &mw) in bv[t * w..(t + 1) * w].iter_mut().zip(m) {
                    *b &= mw;
                }
                i += 1;
            }
        }
        for t in 0..self.n_trees {
            let tv = &bv[t * w..(t + 1) * w];
            let mut leaf = 0usize;
            for (wi, &word) in tv.iter().enumerate() {
                if word != 0 {
                    leaf = wi * 64 + word.trailing_zeros() as usize;
                    break;
                }
            }
            let payload = self.leaves[self.leaf_start[t] as usize + leaf];
            fold(t, payload);
        }
    }
}

/// ANDs away bits `[lo, hi)` from a `words`-long bitvector in place.
fn and_range_mask(bv: &mut [u64], lo: usize, hi: usize) {
    for (w, word) in bv.iter_mut().enumerate() {
        let wlo = w * 64;
        let s = lo.max(wlo);
        let e = hi.min(wlo + 64);
        if s < e {
            let cnt = e - s;
            let bits = if cnt == 64 {
                !0u64
            } else {
                ((1u64 << cnt) - 1) << (s - wlo)
            };
            *word &= !bits;
        }
    }
}

/// DFS left-to-right over the live tree: numbers leaves (locally to the
/// tree, given the global offset `start` where its leaves begin), collects
/// one [`Item`] per decision node. Returns the subtree's local leaf range.
fn dfs(
    tree: &FlatTree,
    t: u32,
    node: usize,
    depth: usize,
    start: usize,
    items: &mut Vec<Item>,
    leaves: &mut Vec<f32>,
) -> (u32, u32) {
    assert!(
        depth <= 32,
        "flat tree deeper than any supported encoding — corrupt node table?"
    );
    match tree.record(node) {
        NodeRecord::Leaf { payload } => {
            let local = (leaves.len() - start) as u32;
            leaves.push(payload);
            (local, local + 1)
        }
        NodeRecord::Decision {
            left,
            right,
            feature,
            threshold,
        } => {
            let (llo, lhi) = dfs(tree, t, left as usize, depth + 1, start, items, leaves);
            let (_, rhi) = dfs(tree, t, right as usize, depth + 1, start, items, leaves);
            items.push(Item {
                feature,
                thr: threshold,
                tree: t,
                lo: llo,
                hi: lhi,
            });
            (llo, rhi)
        }
    }
}

/// Scores a frame against a prepared [`FlatImage`] with the QuickScorer
/// bitvector kernel, building (and caching) the layout on first use.
///
/// Bit-exact with [`score_image_batch`](crate::kernel::score_image_batch)
/// for every input, including NaN feature values and NaN thresholds (see
/// the module docs).
///
/// # Panics
///
/// Panics if the frame's feature count differs from the model's.
pub fn score_quickscorer_batch(
    image: &FlatImage,
    frame: &TabularFrame,
    pool: &ExecPool,
    cfg: &RunConfig,
) -> (Predictions, RunReport) {
    let forest = image.flat();
    assert_eq!(
        frame.n_features(),
        forest.n_features(),
        "frame/model feature width mismatch: frame has {} features, model expects {}",
        frame.n_features(),
        forest.n_features()
    );
    let qs = image.quickscorer();
    let n = frame.n_rows();
    match forest.task() {
        Task::Classification { n_classes } => {
            let n_classes = n_classes as usize;
            let mut out = vec![0u32; n];
            let shared = SharedOut::new(&mut out);
            let report = pool.run(n, cfg, &|_w, range| {
                SCRATCH.with(|s| {
                    let s = &mut *s.borrow_mut();
                    for rows in blocks(range.clone(), cfg.record_block) {
                        qs_classify_block(qs, frame, rows, n_classes, s, &shared);
                    }
                });
            });
            (Predictions::Classes(out), report)
        }
        Task::Regression => {
            let mut out = vec![0f32; n];
            let shared = SharedOut::new(&mut out);
            let report = pool.run(n, cfg, &|_w, range| {
                SCRATCH.with(|s| {
                    let s = &mut *s.borrow_mut();
                    for rows in blocks(range.clone(), cfg.record_block) {
                        qs_regress_block(qs, frame, rows, s, &shared);
                    }
                });
            });
            (Predictions::Values(out), report)
        }
    }
}

/// Scores one record block: per record, intersect masks and vote.
// analyze: hot
fn qs_classify_block(
    qs: &QuickScorer,
    frame: &TabularFrame,
    rows: std::ops::Range<usize>,
    n_classes: usize,
    s: &mut Scratch,
    out: &SharedOut<u32>,
) {
    s.bv.clear();
    s.bv.resize(qs.n_trees * qs.words, 0);
    s.votes.clear();
    s.votes.resize(n_classes, 0);
    for r in rows {
        for v in s.votes.iter_mut() {
            *v = 0;
        }
        let votes = &mut s.votes;
        qs.score_record(frame.row(r), &mut s.bv, |_t, payload| {
            votes[payload as usize] += 1;
        });
        out.write(r, RandomForest::majority(&s.votes));
    }
}

/// Scores one record block of a regression forest.
// analyze: hot
fn qs_regress_block(
    qs: &QuickScorer,
    frame: &TabularFrame,
    rows: std::ops::Range<usize>,
    s: &mut Scratch,
    out: &SharedOut<f32>,
) {
    s.bv.clear();
    s.bv.resize(qs.n_trees * qs.words, 0);
    let n_trees = qs.n_trees as f32;
    for r in rows {
        let mut acc = 0.0f32;
        // `score_record` folds in ascending tree order: the identical f32
        // fold the sequential and walker paths perform.
        qs.score_record(frame.row(r), &mut s.bv, |_t, payload| {
            acc += payload;
        });
        out.write(r, acc / n_trees);
    }
}
