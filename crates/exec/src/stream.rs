//! Chunked scoring off a [`RecordStream`]: the executor end of the fused
//! scan→featurize→score path.
//!
//! [`score_stream`] pulls cache-sized chunks from a scanner and feeds each
//! one to whichever kernel the [`KernelChoice`] cost model picks for that
//! chunk's row count — the same dispatch
//! [`score_auto_batch`](crate::choice::score_auto_batch) performs for a
//! whole frame, re-ranked per chunk (a short final chunk may fall back to
//! the blocked walker where the full batch would have gone SIMD).
//!
//! Per-chunk predictions are folded deterministically: every record is
//! fully scored within exactly one chunk, and all kernels are bit-exact at
//! any batch size, so appending chunk predictions in pull order
//! reproduces the whole-frame result bit for bit (pinned by
//! `tests/fused_stream.rs`).

use mlscore_data::{RecordStream, TabularFrame};
use mlscore_forest::Predictions;

use crate::choice::{Kernel, KernelChoice};
use crate::kernel::{self, FlatImage};
use crate::kernel_simd::{score_simd_batch, SimdLevel};
use crate::pool::{ExecPool, RunConfig};
use crate::quickscorer::score_quickscorer_batch;

/// One scored chunk: its row count and the kernel the cost model picked
/// for it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkRun {
    /// Rows in the chunk.
    pub rows: usize,
    /// The cost model's verdict for this chunk.
    pub choice: KernelChoice,
}

/// Summary of one [`score_stream`] run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StreamReport {
    rows: usize,
    chunks: Vec<ChunkRun>,
}

impl StreamReport {
    /// Total rows scored.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of chunks pulled.
    pub fn n_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Per-chunk rows and kernel picks, in pull order.
    pub fn chunks(&self) -> &[ChunkRun] {
        &self.chunks
    }

    /// Distinct kernels dispatched across the run, in first-use order.
    pub fn kernels(&self) -> Vec<Kernel> {
        let mut out: Vec<Kernel> = Vec::new();
        for c in &self.chunks {
            if !out.contains(&c.choice.kernel) {
                out.push(c.choice.kernel);
            }
        }
        out
    }
}

/// Scores every chunk of `stream` against `image`, folding per-chunk
/// predictions in pull order.
///
/// # Panics
///
/// Panics if the stream's feature count differs from the model's (same
/// contract as the whole-frame kernels).
pub fn score_stream(
    image: &FlatImage,
    stream: &mut dyn RecordStream,
    pool: &ExecPool,
    cfg: &RunConfig,
) -> (Predictions, StreamReport) {
    let level = SimdLevel::detect();
    let mut report = StreamReport::default();
    let mut out: Option<Predictions> = None;
    while let Some(chunk) = stream.next_chunk() {
        if chunk.is_empty() {
            continue;
        }
        let choice = KernelChoice::choose(image.stats(), chunk.n_rows(), level);
        let (preds, _run) = match choice.kernel {
            Kernel::Blocked => kernel::score_image_batch(image, chunk, pool, cfg),
            Kernel::Simd => score_simd_batch(image, chunk, pool, cfg, choice.level),
            Kernel::Quickscorer => score_quickscorer_batch(image, chunk, pool, cfg),
        };
        report.rows += chunk.n_rows();
        report.chunks.push(ChunkRun {
            rows: chunk.n_rows(),
            choice,
        });
        match &mut out {
            None => out = Some(preds),
            Some(acc) => acc.append(&preds),
        }
    }
    let preds = out.unwrap_or_else(|| empty_predictions(image, pool, cfg));
    (preds, report)
}

/// A zero-record prediction batch of the image's task kind.
fn empty_predictions(image: &FlatImage, pool: &ExecPool, cfg: &RunConfig) -> Predictions {
    let empty = TabularFrame::with_capacity(0, image.stats().n_features);
    kernel::score_image_batch(image, &empty, pool, cfg).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlscore_data::{Dataset, FrameScanner};
    use mlscore_forest::{ForestConfig, RandomForest};

    fn image(trees: usize, depth: usize, classes: u32, seed: u64) -> (RandomForest, FlatImage) {
        let forest = RandomForest::synthetic_full(
            &ForestConfig::classification(trees, 4, classes).with_depth(depth),
            seed,
        );
        let image = FlatImage::from_forest(&forest, depth).unwrap();
        (forest, image)
    }

    #[test]
    fn stream_scoring_matches_whole_frame() {
        let (forest, image) = image(16, 6, 3, 7);
        let data = Dataset::iris(333, 9).normalized();
        let want = forest.predict_batch(data.frame().as_slice());
        for chunk_rows in [1, 7, 64, 1000] {
            let mut scanner = FrameScanner::new(data.frame(), chunk_rows);
            let (got, report) = score_stream(
                &image,
                &mut scanner,
                ExecPool::global(),
                &RunConfig::default(),
            );
            assert_eq!(got, want, "chunk_rows={chunk_rows}");
            assert_eq!(report.rows(), 333);
            assert_eq!(report.n_chunks(), 333usize.div_ceil(chunk_rows));
        }
    }

    #[test]
    fn empty_stream_yields_empty_predictions_of_the_right_kind() {
        let (_, image) = image(4, 4, 3, 1);
        let frame = TabularFrame::from_rows(vec![], 4).unwrap();
        let mut scanner = FrameScanner::new(&frame, 8);
        let (preds, report) = score_stream(
            &image,
            &mut scanner,
            ExecPool::global(),
            &RunConfig::default(),
        );
        assert_eq!(preds, Predictions::Classes(vec![]));
        assert_eq!(report.rows(), 0);
        assert_eq!(report.n_chunks(), 0);
    }

    #[test]
    fn per_chunk_choices_rerank_short_tails() {
        // 128×10 picks SIMD for large chunks but the blocked walker for
        // sub-lane tails — the report records both.
        let (_, image) = image(128, 10, 2, 3);
        let data = Dataset::iris(crate::kernel::LANES * 4 + 3, 5).normalized();
        let mut scanner = FrameScanner::new(data.frame(), crate::kernel::LANES * 4);
        let (_, report) = score_stream(
            &image,
            &mut scanner,
            ExecPool::global(),
            &RunConfig::default(),
        );
        assert_eq!(report.n_chunks(), 2);
        let kernels: Vec<Kernel> = report.chunks().iter().map(|c| c.choice.kernel).collect();
        assert_eq!(
            kernels[1],
            Kernel::Blocked,
            "3-row tail avoids the SIMD path"
        );
        assert_eq!(report.kernels(), vec![Kernel::Simd, Kernel::Blocked]);
    }
}
