//! Blocked record×tree batch-scoring kernels.
//!
//! Each kernel runs on an [`ExecPool`]: the pool hands a task contiguous
//! row ranges, and the task tiles them into blocks of
//! [`RunConfig::record_block`] rows × [`RunConfig::tree_block`] trees so a
//! tree's node image stays cache-resident while a whole record block
//! traverses it — the opposite loop order from the seed's record-at-a-time
//! `score_one`, which streamed every tree's nodes past every record.
//!
//! The flat-layout kernel additionally walks [`LANES`] records through a
//! tree in lockstep with a branchless select step, so the traversal's
//! dependent node loads overlap across records (memory-level parallelism)
//! instead of serializing down one root-to-leaf chain at a time.
//!
//! All scratch (vote counts, regression accumulators, quantized rows) is
//! thread-local and reused across blocks and calls: the hot loops allocate
//! nothing.
//!
//! # Bit-exactness
//!
//! Every kernel reproduces its sequential reference exactly:
//!
//! * classification votes are commutative `u32` increments combined with
//!   [`RandomForest::majority`] — the same tie-breaking rule every backend
//!   uses;
//! * regression accumulates each row's tree outputs in ascending tree
//!   order, the identical `f32` fold the sequential `score_one` /
//!   `predict_one` paths perform;
//! * quantization happens once per record with the forest's own
//!   [`QuantScheme`](mlscore_forest::QuantScheme).

use std::cell::RefCell;
use std::ops::Range;
use std::sync::OnceLock;

use mlscore_data::TabularFrame;
use mlscore_forest::{
    FlatForest, FlatTree, ForestError, LeafValue, Predictions, QuantizedForest, RandomForest, Task,
    NODE_WORDS,
};

use crate::pool::{ExecPool, RunConfig};
use crate::report::RunReport;

/// Records walked through a flat tree in lockstep by the branchless inner
/// loop.
pub const LANES: usize = 8;

/// A shared output slice that parallel tasks write disjoint indices of.
///
/// # Safety
///
/// [`ExecPool::run`] invokes the task with disjoint ranges covering
/// `0..n` exactly once and blocks until all of them have executed, so
/// every index is written by exactly one worker while the owning `Vec` is
/// borrowed, and the buffer is only read again after `run` returns.
pub(crate) struct SharedOut<T>(*mut T, usize);

#[allow(unsafe_code)]
// SAFETY: workers write disjoint indices of a `T: Send` buffer; see above.
unsafe impl<T: Send> Send for SharedOut<T> {}
#[allow(unsafe_code)]
// SAFETY: as above — sharing `&SharedOut` only exposes disjoint writes.
unsafe impl<T: Send> Sync for SharedOut<T> {}

impl<T> SharedOut<T> {
    pub(crate) fn new(buf: &mut [T]) -> Self {
        Self(buf.as_mut_ptr(), buf.len())
    }

    /// Writes `val` at index `i`.
    ///
    /// Callers must write each index from at most one thread at a time —
    /// the pool's disjoint-range contract.
    #[allow(unsafe_code)]
    #[inline]
    pub(crate) fn write(&self, i: usize, val: T) {
        debug_assert!(i < self.1);
        // SAFETY: `i` is in bounds and, per the range contract, no other
        // thread writes it; the pointee stays alive for the whole run.
        unsafe { *self.0.add(i) = val };
    }
}

/// Reusable per-thread kernel scratch. Grown on first use, then reused
/// across blocks, runs, and scoring calls.
#[derive(Default)]
pub(crate) struct Scratch {
    /// Per-(row, class) vote counts for one record block.
    pub(crate) votes: Vec<u32>,
    /// Per-row regression accumulators for one record block.
    pub(crate) acc: Vec<f32>,
    /// Quantized features for one record block.
    pub(crate) xq: Vec<u16>,
    /// Per-tree leaf bitvectors for the QuickScorer kernel.
    pub(crate) bv: Vec<u64>,
}

thread_local! {
    pub(crate) static SCRATCH: RefCell<Scratch> = const {
        RefCell::new(Scratch {
            votes: Vec::new(),
            acc: Vec::new(),
            xq: Vec::new(),
            bv: Vec::new(),
        })
    };
}

/// Splits `range` into sub-blocks of at most `block` rows.
pub(crate) fn blocks(range: Range<usize>, block: usize) -> impl Iterator<Item = Range<usize>> {
    let block = block.max(1);
    range
        .clone()
        .step_by(block)
        .map(move |lo| lo..(lo + block).min(range.end))
}

/// One flat node decoded for the lockstep walk: the Fig. 4b image stores
/// child and feature words as `f32`, which costs two saturating
/// float→int conversions per traversal step; decoding once per scoring
/// call makes the hot step pure integer selects. Leaves are encoded as
/// self-loops (`left == right == own index`), so a finished lane keeps
/// spinning on its leaf with no extra "am I done" select.
#[derive(Clone, Copy)]
pub(crate) struct WalkNode {
    /// Left-child index (`x[feature] <= threshold`); self for leaves.
    pub(crate) left: u32,
    /// Right-child index; self for leaves.
    pub(crate) right: u32,
    /// Feature column to test; 0 for leaves (an always-in-bounds load).
    pub(crate) feature: u32,
    /// Split threshold; unused by leaves (both children are `self`).
    pub(crate) threshold: f32,
}

/// A flat tree decoded for traversal, plus its leaf payload table.
pub(crate) struct WalkTree {
    pub(crate) nodes: Vec<WalkNode>,
    /// Word 1 of every node: the leaf outcome at terminal indices.
    pub(crate) payload: Vec<f32>,
    /// Fixed step count — the encoded capacity depth.
    pub(crate) steps: usize,
}

impl WalkTree {
    pub(crate) fn decode(tree: &FlatTree) -> Self {
        let words = tree.words();
        let n_nodes = words.len() / NODE_WORDS;
        let mut nodes = Vec::with_capacity(n_nodes);
        let mut payload = Vec::with_capacity(n_nodes);
        for i in 0..n_nodes {
            let w = &words[i * NODE_WORDS..(i + 1) * NODE_WORDS];
            payload.push(w[1]);
            if w[0] >= 0.0 {
                nodes.push(WalkNode {
                    left: w[0] as u32,
                    right: w[1] as u32,
                    feature: w[2] as u32,
                    threshold: w[3],
                });
            } else {
                nodes.push(WalkNode {
                    left: i as u32,
                    right: i as u32,
                    feature: 0,
                    threshold: 0.0,
                });
            }
        }
        Self {
            nodes,
            payload,
            steps: tree.max_depth(),
        }
    }
}

/// A flat forest bundled with its integer-decoded traversal image.
///
/// Decoding the Fig. 4b `f32`-word layout into [`WalkTree`]s is the CPU
/// backend's model-lowering step: it costs one pass over every node array
/// and used to happen inside [`score_flat_batch`] on *every* scoring call.
/// Building a `FlatImage` once and scoring it repeatedly with
/// [`score_image_batch`] hoists that pass out of the hot path, which is
/// what the artifact cache stores per bundle.
pub struct FlatImage {
    flat: FlatForest,
    walk: Vec<WalkTree>,
    /// Heap-indexed re-encoding for the explicit-SIMD lane walker, built
    /// eagerly (it is smaller than `flat`'s own node table).
    simd: crate::kernel_simd::SimdForest,
    /// QuickScorer per-feature threshold lists + leaf bitvector masks.
    /// Built lazily on first use: the mask table is `O(internal nodes ×
    /// leaf-words)` — ~16 MiB for a 128-tree depth-10 forest — and only
    /// pays for itself on shallow ensembles the cost model routes there.
    qs: OnceLock<crate::quickscorer::QuickScorer>,
    /// Shape inputs to the kernel cost model, computed once here so the
    /// per-call [`KernelChoice`](crate::choice::KernelChoice) ranking is
    /// O(1).
    stats: crate::choice::ImageStats,
}

impl FlatImage {
    /// Decodes an already-flattened forest into a reusable image.
    pub fn from_flat(flat: FlatForest) -> Self {
        let walk: Vec<WalkTree> = flat.trees().iter().map(WalkTree::decode).collect();
        let simd = crate::kernel_simd::SimdForest::build(&walk, flat.n_features());
        let mut internal_nodes = 0usize;
        let mut max_leaves = 1usize;
        let mut steps = 0usize;
        for tree in flat.trees() {
            let leaves = tree.n_live_leaves();
            internal_nodes += tree.live_records().saturating_sub(leaves);
            max_leaves = max_leaves.max(leaves);
            steps = steps.max(tree.max_depth());
        }
        let stats = crate::choice::ImageStats {
            n_trees: flat.n_trees(),
            n_features: flat.n_features(),
            steps,
            internal_nodes,
            max_leaves,
        };
        Self {
            flat,
            walk,
            simd,
            qs: OnceLock::new(),
            stats,
        }
    }

    /// Flattens a pointer-tree forest at `max_depth` capacity and decodes
    /// it in one step.
    pub fn from_forest(forest: &RandomForest, max_depth: usize) -> Result<Self, ForestError> {
        Ok(Self::from_flat(FlatForest::from_forest(forest, max_depth)?))
    }

    /// The underlying flat forest (node tables, task, feature width).
    pub fn flat(&self) -> &FlatForest {
        &self.flat
    }

    /// The decoded lockstep-walk image (one [`WalkTree`] per tree).
    pub(crate) fn walk(&self) -> &[WalkTree] {
        &self.walk
    }

    /// The heap-indexed SIMD traversal image.
    pub(crate) fn simd(&self) -> &crate::kernel_simd::SimdForest {
        &self.simd
    }

    /// The QuickScorer layout, built on first call and cached in the
    /// image — so a prepared artifact amortizes it like the walk decode.
    pub(crate) fn quickscorer(&self) -> &crate::quickscorer::QuickScorer {
        self.qs
            .get_or_init(|| crate::quickscorer::QuickScorer::build(&self.flat))
    }

    /// Shape inputs for the kernel cost model.
    pub fn stats(&self) -> &crate::choice::ImageStats {
        &self.stats
    }

    /// Sizes of every prepared layout the image carries. Forces the
    /// QuickScorer build if it has not run yet (it is cached afterwards,
    /// exactly as a scoring call would leave it).
    pub fn layout(&self) -> ImageLayout {
        let qs = self.quickscorer();
        ImageLayout {
            walk_trees: self.walk().len(),
            simd_bytes: self
                .simd()
                .trees
                .iter()
                .map(crate::kernel_simd::SimdTree::image_bytes)
                .sum(),
            quickscorer_words_per_tree: qs.words_per_tree(),
            quickscorer_items: qs.n_items(),
            quickscorer_bytes: qs.layout_bytes(),
        }
    }
}

/// Memory footprint of a [`FlatImage`]'s prepared per-kernel layouts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImageLayout {
    /// Decoded lockstep-walk trees cached for the blocked kernel.
    pub walk_trees: usize,
    /// Bytes held by the heap-indexed SIMD traversal image.
    pub simd_bytes: usize,
    /// QuickScorer bitvector words per tree (`ceil(max leaves / 64)`).
    pub quickscorer_words_per_tree: usize,
    /// QuickScorer decision-node items across all per-feature lists.
    pub quickscorer_items: usize,
    /// Bytes held by the QuickScorer mask, threshold, and leaf tables.
    pub quickscorer_bytes: usize,
}

impl std::fmt::Debug for FlatImage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlatImage")
            .field("n_trees", &self.flat.n_trees())
            .field("n_features", &self.flat.n_features())
            .finish_non_exhaustive()
    }
}

/// Walks `LANES` consecutive records (starting at `row0`) through one
/// decoded tree in lockstep, returning each record's leaf outcome.
///
/// Every step is a branchless select per lane; the lanes' node loads are
/// mutually independent, so the traversal's dependent-load chains overlap
/// across records (memory-level parallelism) instead of serializing down
/// one root-to-leaf chain at a time. Leaf self-loops let all lanes run the
/// same fixed step count.
// analyze: hot
#[inline]
fn walk_flat_lanes(tree: &WalkTree, data: &[f32], n_features: usize, row0: usize) -> [f32; LANES] {
    let nodes = tree.nodes.as_slice();
    let base_off = row0 * n_features;
    let mut idx = [0usize; LANES];
    for _ in 0..tree.steps {
        for l in 0..LANES {
            let node = nodes[idx[l]];
            let x = data[base_off + l * n_features + node.feature as usize];
            idx[l] = if x <= node.threshold {
                node.left as usize
            } else {
                node.right as usize
            };
        }
    }
    let mut out = [0f32; LANES];
    for l in 0..LANES {
        out[l] = tree.payload[idx[l]];
    }
    out
}

/// Scores one record block of a flat classification forest into `votes`.
/// `walk` is the decoded image of `forest.trees()`, index for index.
// analyze: hot
#[allow(clippy::too_many_arguments)]
fn flat_classify_block(
    walk: &[WalkTree],
    forest: &FlatForest,
    frame: &TabularFrame,
    rows: Range<usize>,
    n_classes: usize,
    tree_block: usize,
    s: &mut Scratch,
    out: &SharedOut<u32>,
) {
    let blen = rows.len();
    let nf = frame.n_features();
    let data = frame.as_slice();
    s.votes.clear();
    s.votes.resize(blen * n_classes, 0);
    let chunks = walk
        .chunks(tree_block)
        .zip(forest.trees().chunks(tree_block));
    for (wchunk, fchunk) in chunks {
        let mut k = 0;
        while k + LANES <= blen {
            for tree in wchunk {
                let leaves = walk_flat_lanes(tree, data, nf, rows.start + k);
                for (l, &leaf) in leaves.iter().enumerate() {
                    s.votes[(k + l) * n_classes + leaf as usize] += 1;
                }
            }
            k += LANES;
        }
        for tree in fchunk {
            for r in k..blen {
                let c = tree.score(frame.row(rows.start + r)) as usize;
                s.votes[r * n_classes + c] += 1;
            }
        }
    }
    for r in 0..blen {
        let counts = &s.votes[r * n_classes..(r + 1) * n_classes];
        out.write(rows.start + r, RandomForest::majority(counts));
    }
}

/// Scores one record block of a flat regression forest into `acc`.
/// `walk` is the decoded image of `forest.trees()`, index for index.
// analyze: hot
fn flat_regress_block(
    walk: &[WalkTree],
    forest: &FlatForest,
    frame: &TabularFrame,
    rows: Range<usize>,
    tree_block: usize,
    s: &mut Scratch,
    out: &SharedOut<f32>,
) {
    let blen = rows.len();
    let nf = frame.n_features();
    let data = frame.as_slice();
    let n_trees = forest.n_trees() as f32;
    s.acc.clear();
    s.acc.resize(blen, 0.0);
    // Chunks ascend and trees ascend within each chunk, so each row's
    // accumulator adds tree outputs in exactly the sequential fold order.
    let chunks = walk
        .chunks(tree_block)
        .zip(forest.trees().chunks(tree_block));
    for (wchunk, fchunk) in chunks {
        let mut k = 0;
        while k + LANES <= blen {
            for tree in wchunk {
                let leaves = walk_flat_lanes(tree, data, nf, rows.start + k);
                for (l, &leaf) in leaves.iter().enumerate() {
                    s.acc[k + l] += leaf;
                }
            }
            k += LANES;
        }
        for tree in fchunk {
            for r in k..blen {
                s.acc[r] += tree.score(frame.row(rows.start + r));
            }
        }
    }
    for r in 0..blen {
        out.write(rows.start + r, s.acc[r] / n_trees);
    }
}

/// Scores a frame against a flat forest on the pool, returning predictions
/// plus the run's wall-clock occupancy report.
///
/// Bit-exact with applying [`FlatForest::score_one`] to every row.
///
/// # Panics
///
/// Panics if the frame's feature count differs from the model's.
pub fn score_flat_batch(
    forest: &FlatForest,
    frame: &TabularFrame,
    pool: &ExecPool,
    cfg: &RunConfig,
) -> (Predictions, RunReport) {
    // Decode the f32-word image once per call; the cost is one pass over
    // the node arrays, amortized over every (record, tree) traversal.
    let walk: Vec<WalkTree> = forest.trees().iter().map(WalkTree::decode).collect();
    score_decoded(forest, &walk, frame, pool, cfg)
}

/// Scores a frame against a pre-decoded [`FlatImage`] on the pool.
///
/// Identical to [`score_flat_batch`] except the decode pass already
/// happened when the image was built, so repeated calls on the same model
/// pay only the traversal.
///
/// # Panics
///
/// Panics if the frame's feature count differs from the model's.
pub fn score_image_batch(
    image: &FlatImage,
    frame: &TabularFrame,
    pool: &ExecPool,
    cfg: &RunConfig,
) -> (Predictions, RunReport) {
    score_decoded(&image.flat, &image.walk, frame, pool, cfg)
}

fn score_decoded(
    forest: &FlatForest,
    walk: &[WalkTree],
    frame: &TabularFrame,
    pool: &ExecPool,
    cfg: &RunConfig,
) -> (Predictions, RunReport) {
    assert_eq!(
        frame.n_features(),
        forest.n_features(),
        "frame/model feature width mismatch: frame has {} features, model expects {}",
        frame.n_features(),
        forest.n_features()
    );
    let n = frame.n_rows();
    match forest.task() {
        Task::Classification { n_classes } => {
            let n_classes = n_classes as usize;
            let mut out = vec![0u32; n];
            let shared = SharedOut::new(&mut out);
            let report = pool.run(n, cfg, &|_w, range| {
                SCRATCH.with(|s| {
                    let s = &mut *s.borrow_mut();
                    for rows in blocks(range.clone(), cfg.record_block) {
                        flat_classify_block(
                            walk,
                            forest,
                            frame,
                            rows,
                            n_classes,
                            cfg.tree_block,
                            s,
                            &shared,
                        );
                    }
                });
            });
            (Predictions::Classes(out), report)
        }
        Task::Regression => {
            let mut out = vec![0f32; n];
            let shared = SharedOut::new(&mut out);
            let report = pool.run(n, cfg, &|_w, range| {
                SCRATCH.with(|s| {
                    let s = &mut *s.borrow_mut();
                    for rows in blocks(range.clone(), cfg.record_block) {
                        flat_regress_block(walk, forest, frame, rows, cfg.tree_block, s, &shared);
                    }
                });
            });
            (Predictions::Values(out), report)
        }
    }
}

/// Scores a frame against a pointer-tree forest on the pool.
///
/// Bit-exact with [`RandomForest::predict_batch`]: votes are commutative
/// and regression sums accumulate in ascending tree order.
///
/// # Panics
///
/// Panics if the frame's feature count differs from the model's.
pub fn score_forest_batch(
    forest: &RandomForest,
    frame: &TabularFrame,
    pool: &ExecPool,
    cfg: &RunConfig,
) -> (Predictions, RunReport) {
    assert_eq!(
        frame.n_features(),
        forest.n_features(),
        "frame/model feature width mismatch: frame has {} features, model expects {}",
        frame.n_features(),
        forest.n_features()
    );
    let n = frame.n_rows();
    match forest.task() {
        Task::Classification { n_classes } => {
            let n_classes = n_classes as usize;
            let mut out = vec![0u32; n];
            let shared = SharedOut::new(&mut out);
            let report = pool.run(n, cfg, &|_w, range| {
                SCRATCH.with(|s| {
                    let s = &mut *s.borrow_mut();
                    for rows in blocks(range.clone(), cfg.record_block) {
                        let blen = rows.len();
                        s.votes.clear();
                        s.votes.resize(blen * n_classes, 0);
                        for chunk in forest.trees().chunks(cfg.tree_block) {
                            for tree in chunk {
                                for r in 0..blen {
                                    if let LeafValue::Class(c) =
                                        tree.predict(frame.row(rows.start + r))
                                    {
                                        s.votes[r * n_classes + c as usize] += 1;
                                    }
                                }
                            }
                        }
                        for r in 0..blen {
                            let counts = &s.votes[r * n_classes..(r + 1) * n_classes];
                            shared.write(rows.start + r, RandomForest::majority(counts));
                        }
                    }
                });
            });
            (Predictions::Classes(out), report)
        }
        Task::Regression => {
            let n_trees = forest.n_trees() as f32;
            let mut out = vec![0f32; n];
            let shared = SharedOut::new(&mut out);
            let report = pool.run(n, cfg, &|_w, range| {
                SCRATCH.with(|s| {
                    let s = &mut *s.borrow_mut();
                    for rows in blocks(range.clone(), cfg.record_block) {
                        let blen = rows.len();
                        s.acc.clear();
                        s.acc.resize(blen, 0.0);
                        for chunk in forest.trees().chunks(cfg.tree_block) {
                            for tree in chunk {
                                for r in 0..blen {
                                    s.acc[r] += tree
                                        .predict(frame.row(rows.start + r))
                                        .as_value()
                                        // analyze: allow(P001, reason="Task::Regression forests hold Value leaves by construction; a Class leaf is model corruption, not load")
                                        .expect("regression leaf");
                                }
                            }
                        }
                        for r in 0..blen {
                            shared.write(rows.start + r, s.acc[r] / n_trees);
                        }
                    }
                });
            });
            (Predictions::Values(out), report)
        }
    }
}

/// Scores a frame against a quantized forest on the pool, returning class
/// ids plus the run report.
///
/// Each record is quantized once per block with the forest's scheme, then
/// voted across trees — bit-exact with [`QuantizedForest::score_one`].
///
/// # Panics
///
/// Panics if the frame's feature count differs from the model's.
pub fn score_quantized_batch(
    forest: &QuantizedForest,
    frame: &TabularFrame,
    pool: &ExecPool,
    cfg: &RunConfig,
) -> (Vec<u32>, RunReport) {
    assert_eq!(
        frame.n_features(),
        forest.n_features(),
        "frame/model feature width mismatch: frame has {} features, model expects {}",
        frame.n_features(),
        forest.n_features()
    );
    let n = frame.n_rows();
    let nf = forest.n_features();
    let n_classes = forest.n_classes() as usize;
    let mut out = vec![0u32; n];
    let shared = SharedOut::new(&mut out);
    let report = pool.run(n, cfg, &|_w, range| {
        SCRATCH.with(|s| {
            let s = &mut *s.borrow_mut();
            for rows in blocks(range.clone(), cfg.record_block) {
                let blen = rows.len();
                s.xq.clear();
                s.xq.resize(blen * nf, 0);
                for r in 0..blen {
                    let row = frame.row(rows.start + r);
                    for (j, &v) in row.iter().enumerate() {
                        s.xq[r * nf + j] = forest.scheme().quantize(j, v);
                    }
                }
                s.votes.clear();
                s.votes.resize(blen * n_classes, 0);
                for chunk in forest.trees().chunks(cfg.tree_block) {
                    for tree in chunk {
                        for r in 0..blen {
                            let c = tree.score_quantized(&s.xq[r * nf..(r + 1) * nf]) as usize;
                            s.votes[r * n_classes + c] += 1;
                        }
                    }
                }
                for r in 0..blen {
                    let counts = &s.votes[r * n_classes..(r + 1) * n_classes];
                    shared.write(rows.start + r, RandomForest::majority(counts));
                }
            }
        });
    });
    (out, report)
}

/// Parallel indexed fill: computes `f(i)` for every `i in 0..n` on the
/// pool and collects the results in order.
///
/// This is the generic replacement for the seed's per-backend helpers
/// (`score_chunks` in the sklearn backend, `score_flat` in the ONNX
/// backend), which both hand-rolled scoped-thread scatter/gather over
/// static chunks.
pub fn fill_indexed<T, F>(n: usize, pool: &ExecPool, cfg: &RunConfig, f: F) -> (Vec<T>, RunReport)
where
    T: Default + Clone + Send,
    F: Fn(usize) -> T + Sync,
{
    let mut out = vec![T::default(); n];
    let shared = SharedOut::new(&mut out);
    let report = pool.run(n, cfg, &|_w, range| {
        for i in range {
            shared.write(i, f(i));
        }
    });
    (out, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlscore_forest::{ForestConfig, QuantScheme};

    fn frame(rows: usize, nf: usize, seed: u64) -> TabularFrame {
        let data: Vec<f32> = (0..rows * nf)
            .map(|i| {
                (((i as u64).wrapping_mul(2654435761).wrapping_add(seed)) % 1000) as f32 / 1000.0
            })
            .collect();
        TabularFrame::from_rows(data, nf).unwrap()
    }

    fn pool() -> ExecPool {
        ExecPool::new(4)
    }

    #[test]
    fn flat_classification_matches_sequential() {
        let forest =
            RandomForest::synthetic_full(&ForestConfig::classification(24, 5, 3).with_depth(7), 42);
        let flat = FlatForest::from_forest(&forest, 7).unwrap();
        let f = frame(333, 5, 1);
        let pool = pool();
        let cfg = RunConfig::for_threads(4)
            .with_record_block(32)
            .with_tree_block(5);
        let (preds, report) = score_flat_batch(&flat, &f, &pool, &cfg);
        let expected: Vec<u32> = f.rows().map(|r| flat.score_one(r) as u32).collect();
        assert_eq!(preds.as_classes().unwrap(), expected.as_slice());
        assert_eq!(report.rows(), 333);
    }

    #[test]
    fn flat_regression_matches_sequential_bit_exact() {
        let forest =
            RandomForest::synthetic_full(&ForestConfig::regression(17, 4).with_depth(6), 9);
        let flat = FlatForest::from_forest(&forest, 6).unwrap();
        let f = frame(200, 4, 7);
        let pool = pool();
        let cfg = RunConfig::for_threads(3)
            .with_record_block(16)
            .with_tree_block(4);
        let (preds, _) = score_flat_batch(&flat, &f, &pool, &cfg);
        let expected: Vec<f32> = f.rows().map(|r| flat.score_one(r)).collect();
        // Bit-exact, not approximately equal.
        let got: Vec<u32> = preds
            .as_values()
            .unwrap()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let want: Vec<u32> = expected.iter().map(|v| v.to_bits()).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn forest_kernel_matches_predict_batch() {
        let forest =
            RandomForest::synthetic_full(&ForestConfig::classification(9, 6, 4).with_depth(5), 3);
        let f = frame(150, 6, 2);
        let pool = pool();
        let cfg = RunConfig::for_threads(4).with_record_block(8);
        let (preds, _) = score_forest_batch(&forest, &f, &pool, &cfg);
        assert_eq!(preds, forest.predict_batch(f.as_slice()));
    }

    #[test]
    fn forest_regression_kernel_bit_exact() {
        let forest =
            RandomForest::synthetic_full(&ForestConfig::regression(11, 3).with_depth(6), 5);
        let f = frame(97, 3, 3);
        let pool = pool();
        let cfg = RunConfig::for_threads(4)
            .with_record_block(10)
            .with_tree_block(3);
        let (preds, _) = score_forest_batch(&forest, &f, &pool, &cfg);
        let expected = forest.predict_batch(f.as_slice());
        let got: Vec<u32> = preds
            .as_values()
            .unwrap()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let want: Vec<u32> = expected
            .as_values()
            .unwrap()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn quantized_kernel_matches_score_one() {
        let forest =
            RandomForest::synthetic_full(&ForestConfig::classification(12, 4, 3).with_depth(6), 8);
        let q = QuantizedForest::from_forest(&forest, QuantScheme::unit(4)).unwrap();
        let f = frame(121, 4, 5);
        let pool = pool();
        let cfg = RunConfig::for_threads(2).with_record_block(25);
        let (preds, _) = score_quantized_batch(&q, &f, &pool, &cfg);
        let expected: Vec<u32> = f.rows().map(|r| q.score_one(r)).collect();
        assert_eq!(preds, expected);
    }

    #[test]
    fn empty_and_single_record_batches() {
        let forest =
            RandomForest::synthetic_full(&ForestConfig::classification(4, 3, 2).with_depth(4), 1);
        let flat = FlatForest::from_forest(&forest, 4).unwrap();
        let pool = pool();
        let cfg = RunConfig::default();
        let empty = TabularFrame::from_rows(vec![], 3).unwrap();
        let (preds, report) = score_flat_batch(&flat, &empty, &pool, &cfg);
        assert!(preds.is_empty());
        assert_eq!(report.rows(), 0);
        let one = frame(1, 3, 4);
        let (preds, report) = score_flat_batch(&flat, &one, &pool, &cfg);
        assert_eq!(preds.len(), 1);
        assert_eq!(
            preds.as_classes().unwrap()[0],
            flat.score_one(one.row(0)) as u32
        );
        assert_eq!(report.rows(), 1);
    }

    #[test]
    fn lockstep_walk_matches_scalar_score() {
        let forest =
            RandomForest::synthetic_full(&ForestConfig::classification(1, 4, 3).with_depth(8), 77);
        // Encode with extra capacity so lockstep runs more steps than the
        // tree is deep — the leaf self-loop must hold the result.
        let flat = FlatTree::from_tree(&forest.trees()[0], 10).unwrap();
        let f = frame(LANES, 4, 6);
        let leaves = walk_flat_lanes(&WalkTree::decode(&flat), f.as_slice(), 4, 0);
        for l in 0..LANES {
            assert_eq!(leaves[l], flat.score(f.row(l)), "lane {l}");
        }
    }

    #[test]
    fn image_batch_matches_flat_batch_bit_exact() {
        let forest =
            RandomForest::synthetic_full(&ForestConfig::classification(24, 5, 3).with_depth(7), 42);
        let image = FlatImage::from_forest(&forest, 7).unwrap();
        let f = frame(333, 5, 1);
        let pool = pool();
        let cfg = RunConfig::for_threads(4)
            .with_record_block(32)
            .with_tree_block(5);
        let (fresh, _) = score_flat_batch(image.flat(), &f, &pool, &cfg);
        let (cached, _) = score_image_batch(&image, &f, &pool, &cfg);
        assert_eq!(fresh, cached);

        let reg = RandomForest::synthetic_full(&ForestConfig::regression(17, 4).with_depth(6), 9);
        let image = FlatImage::from_forest(&reg, 6).unwrap();
        let f = frame(200, 4, 7);
        let (fresh, _) = score_flat_batch(image.flat(), &f, &pool, &cfg);
        let (cached, _) = score_image_batch(&image, &f, &pool, &cfg);
        let want: Vec<u32> = fresh
            .as_values()
            .unwrap()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let got: Vec<u32> = cached
            .as_values()
            .unwrap()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(want, got);
    }

    #[test]
    fn fill_indexed_orders_results() {
        let pool = pool();
        let cfg = RunConfig::for_threads(4).with_record_block(7);
        let (v, report) = fill_indexed(100, &pool, &cfg, |i| i * 3);
        assert_eq!(v, (0..100).map(|i| i * 3).collect::<Vec<_>>());
        assert_eq!(report.rows(), 100);
    }

    #[test]
    fn degenerate_depth_zero_forest() {
        let forest = RandomForest::synthetic_full(&ForestConfig::regression(3, 2).with_depth(0), 2);
        let flat = FlatForest::from_forest(&forest, 0).unwrap();
        let f = frame(33, 2, 8);
        let pool = pool();
        let (preds, _) = score_flat_batch(&flat, &f, &pool, &RunConfig::for_threads(2));
        let expected: Vec<f32> = f.rows().map(|r| flat.score_one(r)).collect();
        assert_eq!(preds.as_values().unwrap(), expected.as_slice());
    }
}
