//! The persistent work-stealing thread pool.
//!
//! # Design
//!
//! * **Spawn once.** [`ExecPool::new`] spawns `threads - 1` OS threads that
//!   park on a condvar between jobs; the caller of [`ExecPool::run`] acts
//!   as worker 0, so a single-threaded pool spawns nothing and runs
//!   inline. [`ExecPool::global`] lazily builds one pool sized to the
//!   host's available parallelism and reuses it for every scoring call in
//!   the process — the per-call thread-spawn cost the seed backends paid
//!   is gone.
//!
//! * **Chunk-stealing deques over row ranges.** A job over `n` items seeds
//!   one contiguous shard per participating worker. Owners split blocks of
//!   [`RunConfig::record_block`] rows off the *front* of their own shard;
//!   a worker whose deque runs dry steals the *back half* of a victim's
//!   largest remaining range. Imbalance (one worker's rows traversing
//!   deeper trees, or a preempted worker on a busy host) therefore migrates
//!   work at range granularity instead of leaving static `div_ceil` chunks
//!   stranded.
//!
//! * **Blocking completion.** `run` does not return until every row of the
//!   job has been executed, which is what makes lending the task closure
//!   (and, inside the kernels, the output slice) to the persistent workers
//!   sound; see the safety notes on the two `unsafe` items below — the
//!   only `unsafe` in the crate.

use std::collections::VecDeque;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

use crate::report::{RunReport, WorkerReport};

/// Default rows per claimed block: small enough to load-balance, large
/// enough that a block's features and votes stay L1-resident while a
/// tree's nodes are walked.
pub const DEFAULT_RECORD_BLOCK: usize = 64;

/// Default trees per tile in the blocked kernels.
pub const DEFAULT_TREE_BLOCK: usize = 16;

/// Per-run execution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunConfig {
    /// Worker cap for this run (clamped to the pool's size; the pool never
    /// uses more workers than there are record blocks).
    pub threads: usize,
    /// Rows per claimed block.
    pub record_block: usize,
    /// Trees per tile in the blocked kernels (record×tree tiling).
    pub tree_block: usize,
}

impl RunConfig {
    /// A config using `threads` workers and the default block shape.
    pub fn for_threads(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            record_block: DEFAULT_RECORD_BLOCK,
            tree_block: DEFAULT_TREE_BLOCK,
        }
    }

    /// Overrides the record block size (values are clamped to at least 1).
    pub fn with_record_block(mut self, rows: usize) -> Self {
        self.record_block = rows.max(1);
        self
    }

    /// Overrides the tree tile size (values are clamped to at least 1).
    pub fn with_tree_block(mut self, trees: usize) -> Self {
        self.tree_block = trees.max(1);
        self
    }
}

impl Default for RunConfig {
    fn default() -> Self {
        Self::for_threads(default_threads())
    }
}

/// The host's available parallelism (1 when it cannot be determined).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Locks `m`, recovering the guard from a poisoned mutex. The pool's
/// mutexes only guard deques and counters — a panic in a caller's task
/// closure must not wedge every later scoring call on the shared pool.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A borrowed task callable with its lifetime erased, so parked workers
/// can hold it inside the job. Kept as a raw pointer — a job object can
/// outlive one `run` call (a parked worker may still hold its `Arc` while
/// re-checking for new epochs), and a raw pointer is allowed to dangle as
/// long as it is never dereferenced again.
///
/// # Safety
///
/// The pointee only lives for the duration of one [`ExecPool::run`] call.
/// Soundness rests on `run` blocking until `remaining == 0`: workers
/// invoke the task only while holding a claimed row range, and ranges
/// cannot exist after the job's row count drains to zero.
#[derive(Clone, Copy)]
struct TaskRef(*const (dyn Fn(usize, Range<usize>) + Sync + 'static));

#[allow(unsafe_code)]
// SAFETY: the erased closure is `Sync` and only ever shared by reference.
unsafe impl Send for TaskRef {}
#[allow(unsafe_code)]
// SAFETY: as above; `call` invokes a `Sync` pointee through `&self`.
unsafe impl Sync for TaskRef {}

impl TaskRef {
    /// Erases the closure's lifetime.
    ///
    /// # Safety
    ///
    /// The caller must guarantee `call` is never invoked after the borrow
    /// of `task` ends. [`ExecPool::run`] upholds this by joining the job
    /// (waiting for `remaining == 0`) before returning.
    #[allow(unsafe_code)]
    unsafe fn erase<'a>(task: &'a (dyn Fn(usize, Range<usize>) + Sync + 'a)) -> Self {
        // SAFETY: fat-pointer lifetime erasure only; see above.
        TaskRef(unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize, Range<usize>) + Sync + 'a),
                *const (dyn Fn(usize, Range<usize>) + Sync + 'static),
            >(task as *const _)
        })
    }

    #[allow(unsafe_code)]
    fn call(&self, worker: usize, range: Range<usize>) {
        // SAFETY: invoked only while the worker holds a claimed range of a
        // live job, which `ExecPool::run`'s join guarantees implies the
        // borrowed closure is still alive.
        let task = unsafe { &*self.0 };
        task(worker, range)
    }
}

/// Accumulated per-worker counters for one job.
#[derive(Debug, Clone, Copy, Default)]
struct WorkerStats {
    rows: usize,
    chunks: usize,
    steals: usize,
    busy_nanos: u128,
    first_start_nanos: Option<u128>,
    last_end_nanos: u128,
}

/// One in-flight job: the erased task plus the stealing state.
struct Job {
    task: TaskRef,
    /// One deque of pending row ranges per participating worker.
    queues: Vec<Mutex<VecDeque<Range<usize>>>>,
    /// Rows not yet executed. The job is complete when this reaches zero.
    remaining: AtomicUsize,
    /// Rows per claimed block.
    block: usize,
    /// Wall-clock epoch of the job, for worker span offsets.
    started: Instant,
    /// Per-worker counters, written once by each participant on exit.
    stats: Vec<Mutex<WorkerStats>>,
    /// Participants that have flushed their counters; the caller waits for
    /// all of them before assembling the report.
    stats_written: AtomicUsize,
    /// Completion rendezvous: the finishing worker notifies the caller.
    done: Mutex<bool>,
    done_cv: Condvar,
}

impl Job {
    /// Claims the next block: pop from the own deque front, else steal the
    /// back half of a victim's range.
    fn claim(&self, me: usize, stats: &mut WorkerStats) -> Option<Range<usize>> {
        if let Some(range) = self.pop_front_block(me) {
            return Some(range);
        }
        let n = self.queues.len();
        for step in 1..n {
            let victim = (me + step) % n;
            if let Some(stolen) = self.steal_back_half(victim) {
                stats.steals += 1;
                // Keep the back of the stolen range for future pops and
                // claim its first block now.
                let take = stolen.len().min(self.block);
                let (now, later) = (
                    stolen.start..stolen.start + take,
                    stolen.start + take..stolen.end,
                );
                if !later.is_empty() {
                    lock_recover(&self.queues[me]).push_front(later);
                }
                return Some(now);
            }
        }
        None
    }

    fn pop_front_block(&self, me: usize) -> Option<Range<usize>> {
        let mut q = lock_recover(&self.queues[me]);
        let range = q.pop_front()?;
        if range.len() > self.block {
            q.push_front(range.start + self.block..range.end);
            Some(range.start..range.start + self.block)
        } else {
            Some(range)
        }
    }

    /// Steals the back half of the victim's last (largest-remaining) range.
    fn steal_back_half(&self, victim: usize) -> Option<Range<usize>> {
        let mut q = lock_recover(&self.queues[victim]);
        let range = q.pop_back()?;
        if range.len() <= self.block {
            return Some(range);
        }
        let mid = range.start + range.len() / 2;
        q.push_back(range.start..mid);
        Some(mid..range.end)
    }

    /// Executes until the job drains. `me` indexes this participant's deque.
    fn work(&self, me: usize) {
        let mut local = WorkerStats::default();
        loop {
            match self.claim(me, &mut local) {
                Some(range) => {
                    let len = range.len();
                    let t0 = self.started.elapsed().as_nanos();
                    self.task.call(me, range);
                    let t1 = self.started.elapsed().as_nanos();
                    local.rows += len;
                    local.chunks += 1;
                    local.busy_nanos += t1 - t0;
                    local.first_start_nanos.get_or_insert(t0);
                    local.last_end_nanos = t1;
                    if self.remaining.fetch_sub(len, Ordering::AcqRel) == len {
                        // Last rows executed: wake the caller. Locking the
                        // mutex orders this notify against the caller's
                        // check-then-wait.
                        let mut done = lock_recover(&self.done);
                        *done = true;
                        self.done_cv.notify_all();
                    }
                }
                None => {
                    if self.remaining.load(Ordering::Acquire) == 0 {
                        break;
                    }
                    // Every pending row is inside another worker's
                    // in-flight block; nothing to steal, so yield until the
                    // job drains.
                    std::thread::yield_now();
                }
            }
        }
        *lock_recover(&self.stats[me]) = local;
        self.stats_written.fetch_add(1, Ordering::AcqRel);
    }
}

/// Shared pool state the parked workers wait on.
struct PoolShared {
    state: Mutex<PoolState>,
    wake: Condvar,
}

struct PoolState {
    /// Bumped once per job; workers run a job exactly once per epoch.
    epoch: u64,
    job: Option<Arc<Job>>,
    shutdown: bool,
}

/// A persistent work-stealing thread pool.
///
/// Cloning is not supported; share the pool by reference (or use the
/// process-wide [`ExecPool::global`]). Concurrent `run` calls from
/// different threads serialize on an internal lock — the pool is a batch
/// executor, not a general task scheduler.
pub struct ExecPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
    /// Maximum participants per job (spawned workers + the caller).
    max_workers: usize,
    /// Serializes `run` calls.
    run_lock: Mutex<()>,
}

impl std::fmt::Debug for ExecPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecPool")
            .field("max_workers", &self.max_workers)
            .finish()
    }
}

static GLOBAL: OnceLock<ExecPool> = OnceLock::new();

impl ExecPool {
    /// Builds a pool with `threads` total workers (the calling thread
    /// counts as one, so `threads - 1` OS threads are spawned).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero or a worker thread cannot be spawned.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker");
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                epoch: 0,
                job: None,
                shutdown: false,
            }),
            wake: Condvar::new(),
        });
        let handles = (1..threads)
            .map(|id| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("mlscore-exec-{id}"))
                    .spawn(move || worker_loop(&shared, id))
                    // analyze: allow(P001, reason="a host that cannot spawn threads cannot run the pool at all; failing construction loudly is the contract")
                    .expect("spawning executor worker")
            })
            .collect();
        Self {
            shared,
            handles,
            max_workers: threads,
            run_lock: Mutex::new(()),
        }
    }

    /// The process-wide pool, built on first use with one worker per
    /// available hardware thread.
    pub fn global() -> &'static ExecPool {
        GLOBAL.get_or_init(|| ExecPool::new(default_threads()))
    }

    /// Maximum workers a run can use (spawned threads + the caller).
    pub fn max_workers(&self) -> usize {
        self.max_workers
    }

    /// Runs `task` over `0..n_items`, blocking until every item has been
    /// executed. The task receives `(worker_index, row_range)` and is
    /// invoked once per claimed block; distinct invocations receive
    /// disjoint ranges covering `0..n_items` exactly once.
    ///
    /// Worker occupancy, block, and steal counts are returned in the
    /// [`RunReport`].
    #[allow(unsafe_code)]
    pub fn run(
        &self,
        n_items: usize,
        cfg: &RunConfig,
        task: &(dyn Fn(usize, Range<usize>) + Sync),
    ) -> RunReport {
        let block = cfg.record_block.max(1);
        let shards = cfg
            .threads
            .clamp(1, self.max_workers)
            .min(n_items.div_ceil(block).max(1));
        // analyze: allow(D001, reason="the executor measures real host occupancy; wall-clock worker spans are the product here, not a determinism hazard")
        let started = Instant::now();
        if n_items == 0 {
            return RunReport::empty();
        }
        if shards == 1 {
            // Inline fast path: no cross-thread handoff at all.
            task(0, 0..n_items);
            let elapsed = started.elapsed();
            return RunReport::single(n_items, elapsed);
        }

        let _serial = lock_recover(&self.run_lock);
        // SAFETY: `run` joins the job below (waits until `remaining == 0`,
        // and range claims are the only path to a task invocation), so the
        // erased borrow outlives every call through it.
        let task = unsafe { TaskRef::erase(task) };
        let job = Arc::new(Job {
            task,
            queues: (0..shards)
                .map(|w| {
                    let lo = n_items * w / shards;
                    let hi = n_items * (w + 1) / shards;
                    // The deque holds row *ranges* (work items), not rows.
                    #[allow(clippy::single_range_in_vec_init)]
                    Mutex::new(VecDeque::from([lo..hi]))
                })
                .collect(),
            remaining: AtomicUsize::new(n_items),
            block,
            started,
            stats: (0..shards)
                .map(|_| Mutex::new(WorkerStats::default()))
                .collect(),
            stats_written: AtomicUsize::new(0),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        });
        {
            let mut state = lock_recover(&self.shared.state);
            state.epoch += 1;
            state.job = Some(Arc::clone(&job));
            self.shared.wake.notify_all();
        }
        // The caller is worker 0.
        job.work(0);
        let mut done = lock_recover(&job.done);
        while job.remaining.load(Ordering::Acquire) != 0 {
            done = job
                .done_cv
                .wait(done)
                .unwrap_or_else(PoisonError::into_inner);
        }
        drop(done);
        // All rows are executed; wait (briefly) for the other participants
        // to flush their counters so the occupancy report is complete.
        while job.stats_written.load(Ordering::Acquire) < shards {
            std::thread::yield_now();
        }
        let elapsed = started.elapsed();
        let workers = job
            .stats
            .iter()
            .map(|s| WorkerReport::from_raw(*lock_recover(s)))
            .collect();
        RunReport::new(n_items, elapsed, workers)
    }
}

impl Drop for ExecPool {
    fn drop(&mut self) {
        {
            let mut state = lock_recover(&self.shared.state);
            state.shutdown = true;
            self.shared.wake.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl WorkerReport {
    fn from_raw(raw: WorkerStats) -> Self {
        WorkerReport {
            rows: raw.rows,
            chunks: raw.chunks,
            steals: raw.steals,
            busy: std::time::Duration::from_nanos(raw.busy_nanos.min(u64::MAX as u128) as u64),
            first_start: raw
                .first_start_nanos
                .map(|n| std::time::Duration::from_nanos(n.min(u64::MAX as u128) as u64)),
            last_end: std::time::Duration::from_nanos(
                raw.last_end_nanos.min(u64::MAX as u128) as u64
            ),
        }
    }
}

fn worker_loop(shared: &PoolShared, id: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut state = lock_recover(&shared.state);
            loop {
                if state.shutdown {
                    return;
                }
                if state.epoch != seen_epoch {
                    seen_epoch = state.epoch;
                    if let Some(job) = state.job.clone() {
                        break job;
                    }
                }
                state = shared
                    .wake
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        // Workers beyond the job's shard count sit this one out.
        if id < job.queues.len() {
            job.work(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn covers_every_index_exactly_once() {
        let pool = ExecPool::new(4);
        for n in [0usize, 1, 7, 64, 65, 1000] {
            let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
            let cfg = RunConfig::for_threads(4).with_record_block(16);
            let report = pool.run(n, &cfg, &|_w, range| {
                for i in range {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1), "n={n}");
            assert_eq!(report.rows(), n);
        }
    }

    #[test]
    fn reuses_workers_across_runs() {
        let pool = ExecPool::new(3);
        let count = AtomicU64::new(0);
        let cfg = RunConfig::for_threads(3).with_record_block(8);
        for _ in 0..50 {
            pool.run(100, &cfg, &|_w, range| {
                count.fetch_add(range.len() as u64, Ordering::Relaxed);
            });
        }
        assert_eq!(count.load(Ordering::Relaxed), 5000);
    }

    #[test]
    fn single_thread_runs_inline() {
        let pool = ExecPool::new(1);
        let caller = std::thread::current().id();
        let cfg = RunConfig::for_threads(1);
        pool.run(10, &cfg, &|w, _range| {
            assert_eq!(w, 0);
            assert_eq!(std::thread::current().id(), caller);
        });
    }

    #[test]
    fn stealing_rebalances_skewed_work() {
        // Worker 0's shard is artificially slow; the report must show the
        // other workers stealing part of it.
        let pool = ExecPool::new(4);
        let cfg = RunConfig::for_threads(4).with_record_block(1);
        let report = pool.run(256, &cfg, &|_w, range| {
            for i in range {
                if i < 64 {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
            }
        });
        let total_steals: usize = report.workers().iter().map(|w| w.steals).sum();
        assert!(total_steals > 0, "expected steals, report {report:?}");
        assert_eq!(report.rows(), 256);
    }

    #[test]
    fn run_caps_workers_at_block_count() {
        let pool = ExecPool::new(8);
        let cfg = RunConfig::for_threads(8).with_record_block(64);
        // 100 rows / 64-row blocks => at most 2 shards.
        let report = pool.run(100, &cfg, &|_w, _r| {});
        assert!(report.workers().len() <= 2, "report {report:?}");
    }

    #[test]
    fn global_pool_is_shared() {
        let a = ExecPool::global() as *const _;
        let b = ExecPool::global() as *const _;
        assert_eq!(a, b);
        assert!(ExecPool::global().max_workers() >= 1);
    }

    #[test]
    fn config_builders_clamp() {
        let cfg = RunConfig::for_threads(0)
            .with_record_block(0)
            .with_tree_block(0);
        assert_eq!(cfg.threads, 1);
        assert_eq!(cfg.record_block, 1);
        assert_eq!(cfg.tree_block, 1);
    }
}
