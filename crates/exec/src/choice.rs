//! Per-call kernel selection: blocked walk vs SIMD walk vs QuickScorer.
//!
//! The three CPU kernels have sharply different cost shapes:
//!
//! * the blocked walk pays ~constant time per `(tree, depth-step, record)`;
//! * the SIMD walk pays the same shape at a smaller constant (amortized
//!   over 8–16 lanes), plus it degenerates to the scalar tail for batches
//!   shorter than a lane group;
//! * QuickScorer pays per *false decision node* × bitvector words plus a
//!   per-tree scan — independent of depth, but the word count grows with
//!   `2^depth`, so it only wins on wide, shallow ensembles.
//!
//! [`KernelChoice::choose`] evaluates closed-form per-record estimates of
//! all three, with constants calibrated against the committed
//! `BENCH_cpu_scoring.json` sweeps on the reference host (see
//! `DESIGN.md` §12), and picks the minimum. The estimates are *relative*
//! prices for ranking, not absolute latency predictions — the scheduler
//! keeps its own measured affine models per backend and simply reports
//! which kernel the executor will run
//! ([`Choice::kernel`](../../mlscore_sched/policy/struct.Choice.html)).

use mlscore_forest::ModelStats;

use crate::kernel;
use crate::kernel::FlatImage;
use crate::kernel::LANES;
use crate::kernel_simd::{score_simd_batch, SimdLevel};
use crate::pool::{ExecPool, RunConfig};
use crate::quickscorer::score_quickscorer_batch;
use crate::report::RunReport;

use mlscore_data::TabularFrame;
use mlscore_forest::Predictions;

/// The CPU scoring kernels the executor can dispatch a batch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Blocked scalar lockstep walk ([`kernel::score_image_batch`]).
    Blocked,
    /// Explicit-SIMD lane walk ([`score_simd_batch`]).
    Simd,
    /// QuickScorer bitvector traversal ([`score_quickscorer_batch`]).
    Quickscorer,
}

impl Kernel {
    /// Stable lower-case name, used by `repro bench --kernel` and the
    /// scheduler's choice reporting.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Blocked => "blocked",
            Kernel::Simd => "simd",
            Kernel::Quickscorer => "quickscorer",
        }
    }

    /// Parses a kernel name as accepted by `repro bench --kernel`.
    pub fn parse(s: &str) -> Option<Kernel> {
        match s.trim().to_ascii_lowercase().as_str() {
            "blocked" => Some(Kernel::Blocked),
            "simd" => Some(Kernel::Simd),
            "quickscorer" | "qs" => Some(Kernel::Quickscorer),
            _ => None,
        }
    }
}

/// Model-shape inputs to the cost model, computed once per [`FlatImage`]
/// (or approximated from a [`ModelStats`] when no image is at hand).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImageStats {
    /// Trees in the forest.
    pub n_trees: usize,
    /// Feature columns.
    pub n_features: usize,
    /// Fixed lockstep step count: the maximum encoded capacity depth.
    pub steps: usize,
    /// Live decision nodes across all trees.
    pub internal_nodes: usize,
    /// Live leaves in the widest tree — determines QuickScorer's
    /// bitvector word count.
    pub max_leaves: usize,
}

impl ImageStats {
    /// Approximates image stats from backend-level model statistics.
    ///
    /// `total_leaves / n_trees` stands in for the widest tree's leaf
    /// count; for the near-uniform synthetic and trained forests in this
    /// repro the approximation is tight.
    pub fn from_model_stats(stats: &ModelStats) -> Self {
        let n_trees = stats.n_trees.max(1);
        Self {
            n_trees: stats.n_trees,
            n_features: stats.n_features,
            steps: stats.max_depth,
            internal_nodes: stats.total_nodes.saturating_sub(stats.total_leaves),
            max_leaves: (stats.total_leaves / n_trees).max(1),
        }
    }

    /// QuickScorer bitvector words per tree for this shape.
    pub fn qs_words(&self) -> usize {
        self.max_leaves.div_ceil(64)
    }
}

// Calibrated per-unit costs, in nanoseconds, measured on the reference
// host (1-socket Xeon, AVX2; see BENCH_cpu_scoring.json `host`). Only the
// *ratios* matter for ranking; rescaling all constants together changes
// nothing.
/// Blocked walk: per (tree × step × record) lane-step.
const BLOCKED_NS_PER_TREE_STEP: f64 = 1.75;
/// SIMD walk lane-step at each tier (amortized per record).
const SIMD_NS_PER_TREE_STEP_AVX512: f64 = 0.80;
const SIMD_NS_PER_TREE_STEP_AVX2: f64 = 0.87;
const SIMD_NS_PER_TREE_STEP_SSE2: f64 = 1.55;
const SIMD_NS_PER_TREE_STEP_PORTABLE: f64 = 1.05;
/// QuickScorer: per mask word ANDed (half the internal nodes are false on
/// average), per scan word, and per-record fixed cost.
const QS_NS_PER_AND_WORD: f64 = 0.55;
const QS_NS_PER_SCAN_WORD: f64 = 0.9;
const QS_NS_PER_RECORD: f64 = 6.0;

/// The cost model's verdict for one `(model shape, batch size)` call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelChoice {
    /// The kernel to dispatch.
    pub kernel: Kernel,
    /// The SIMD tier the walker would run at (hardware/override pick).
    pub level: SimdLevel,
    /// Estimated ns/record for the blocked walk.
    pub blocked_ns: f64,
    /// Estimated ns/record for the SIMD walk.
    pub simd_ns: f64,
    /// Estimated ns/record for QuickScorer.
    pub quickscorer_ns: f64,
}

impl KernelChoice {
    /// Ranks the three kernels for a batch of `records` over this shape.
    pub fn choose(stats: &ImageStats, records: usize, level: SimdLevel) -> Self {
        let tree_steps = (stats.n_trees * stats.steps) as f64;
        let blocked_ns = tree_steps * BLOCKED_NS_PER_TREE_STEP;
        let simd_step = match level {
            SimdLevel::Avx512 => SIMD_NS_PER_TREE_STEP_AVX512,
            SimdLevel::Avx2 => SIMD_NS_PER_TREE_STEP_AVX2,
            SimdLevel::Sse2 => SIMD_NS_PER_TREE_STEP_SSE2,
            SimdLevel::Portable => SIMD_NS_PER_TREE_STEP_PORTABLE,
        };
        let simd_ns = tree_steps * simd_step;
        let words = stats.qs_words() as f64;
        let quickscorer_ns = (stats.internal_nodes as f64 / 2.0) * words * QS_NS_PER_AND_WORD
            + stats.n_trees as f64 * words * QS_NS_PER_SCAN_WORD
            + QS_NS_PER_RECORD;
        // Batches shorter than one lane group never reach the vector loop
        // — the SIMD path would just run the blocked kernel's scalar tail.
        let kernel = if records < LANES {
            if quickscorer_ns < blocked_ns {
                Kernel::Quickscorer
            } else {
                Kernel::Blocked
            }
        } else {
            let mut best = (blocked_ns, Kernel::Blocked);
            if simd_ns < best.0 {
                best = (simd_ns, Kernel::Simd);
            }
            if quickscorer_ns < best.0 {
                best = (quickscorer_ns, Kernel::Quickscorer);
            }
            best.1
        };
        Self {
            kernel,
            level,
            blocked_ns,
            simd_ns,
            quickscorer_ns,
        }
    }

    /// Convenience: rank from backend-level model stats at the detected
    /// SIMD tier (what `ScoringBackend::kernel_choice` reports).
    pub fn from_model_stats(stats: &ModelStats, records: usize) -> Self {
        Self::choose(
            &ImageStats::from_model_stats(stats),
            records,
            SimdLevel::detect(),
        )
    }
}

/// Scores a frame with whichever kernel the cost model picks for this
/// image and batch size, returning the verdict alongside the predictions.
///
/// All three kernels are bit-exact with each other, so the pick affects
/// throughput only.
///
/// # Panics
///
/// Panics if the frame's feature count differs from the model's.
pub fn score_auto_batch(
    image: &FlatImage,
    frame: &TabularFrame,
    pool: &ExecPool,
    cfg: &RunConfig,
) -> (Predictions, RunReport, KernelChoice) {
    let choice = KernelChoice::choose(image.stats(), frame.n_rows(), SimdLevel::detect());
    let (preds, report) = match choice.kernel {
        Kernel::Blocked => kernel::score_image_batch(image, frame, pool, cfg),
        Kernel::Simd => score_simd_batch(image, frame, pool, cfg, choice.level),
        Kernel::Quickscorer => score_quickscorer_batch(image, frame, pool, cfg),
    };
    (preds, report, choice)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(n_trees: usize, steps: usize, nf: usize) -> ImageStats {
        // Full binary trees of the given depth.
        let leaves = 1usize << steps;
        ImageStats {
            n_trees,
            n_features: nf,
            steps,
            internal_nodes: n_trees * (leaves - 1),
            max_leaves: leaves,
        }
    }

    #[test]
    fn deep_full_forests_never_pick_quickscorer() {
        // 128 trees × depth 10: the paper's standard shape. 16 mask words
        // per AND make QuickScorer ~2 orders slower than the walkers.
        let c = KernelChoice::choose(&shape(128, 10, 28), 100_000, SimdLevel::Avx2);
        assert_eq!(c.kernel, Kernel::Simd);
        assert!(c.quickscorer_ns > c.blocked_ns);
    }

    #[test]
    fn sparse_deep_forests_pick_quickscorer() {
        // Leaf-capped trained trees: 8 leaves (one bitvector word, 7
        // internal nodes) but encoded at depth 8. The walkers still pay
        // all 8 capacity steps per tree; QuickScorer pays ~3.5 mask ANDs.
        let sparse = ImageStats {
            n_trees: 128,
            n_features: 28,
            steps: 8,
            internal_nodes: 128 * 7,
            max_leaves: 8,
        };
        let c = KernelChoice::choose(&sparse, 100_000, SimdLevel::Avx2);
        assert_eq!(c.kernel, Kernel::Quickscorer);
        // Without SIMD hardware the crossover widens further.
        let c = KernelChoice::choose(&sparse, 100_000, SimdLevel::Portable);
        assert_eq!(c.kernel, Kernel::Quickscorer);
    }

    #[test]
    fn tiny_batches_avoid_the_simd_tail() {
        let c = KernelChoice::choose(&shape(128, 10, 28), LANES - 1, SimdLevel::Avx2);
        assert_eq!(c.kernel, Kernel::Blocked);
        let c = KernelChoice::choose(&shape(128, 10, 28), LANES, SimdLevel::Avx2);
        assert_eq!(c.kernel, Kernel::Simd);
    }

    #[test]
    fn kernel_names_round_trip() {
        for k in [Kernel::Blocked, Kernel::Simd, Kernel::Quickscorer] {
            assert_eq!(Kernel::parse(k.name()), Some(k));
        }
        assert_eq!(Kernel::parse("qs"), Some(Kernel::Quickscorer));
        assert_eq!(Kernel::parse("auto"), None);
    }
}
